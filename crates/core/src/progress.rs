//! Live progress estimation for package-space searches.
//!
//! The prefix-partitioned unit structure (see `enumerate`) gives the
//! estimator its backbone: the total number of search-tree nodes under
//! each unit is known in closed form (sums of binomial coefficients),
//! so a walk can report *exactly* what fraction of the bounded search
//! space it has visited or pruned away — a weighted within-unit
//! estimate in the spirit of Knuth's tree-size estimator, but exact
//! here because the tree shape is fixed by `(|Q(D)|, p(|D|))`.
//!
//! The estimate is shared across worker threads as a single atomic
//! parts-per-billion counter, so a CLI monitor thread can render a
//! throttled progress line with an ETA while the solve runs, and
//! anytime outcomes can report `progress_at_interrupt`.

use std::sync::atomic::{AtomicU64, Ordering};

/// Parts-per-billion denominator for the shared progress counter.
const PPB: u64 = 1_000_000_000;

/// A shared, monotone progress estimate for one search.
///
/// `done_ppb` accumulates credit in parts-per-billion of the total
/// search-tree size; visiting a node credits its share, pruning a
/// subtree credits the whole subtree at once. Credits only ever grow,
/// so [`Progress::fraction`] is monotone nondecreasing over a run, and
/// [`Progress::finish`] pins it to exactly `1.0` on exhaustive
/// completion (covering rounding slack from the fixed-point split).
#[derive(Debug, Default)]
pub struct Progress {
    done_ppb: AtomicU64,
    units_total: AtomicU64,
    units_done: AtomicU64,
}

impl Progress {
    /// A fresh estimator at zero.
    pub fn new() -> Progress {
        Progress::default()
    }

    /// Reset for a search over `units` work units.
    pub(crate) fn begin(&self, units: usize) {
        self.done_ppb.store(0, Ordering::Relaxed);
        self.units_done.store(0, Ordering::Relaxed);
        self.units_total.store(units as u64, Ordering::Relaxed);
    }

    /// Credit `ppb` parts-per-billion of the search space.
    pub(crate) fn add_ppb(&self, ppb: u64) {
        if ppb > 0 {
            self.done_ppb.fetch_add(ppb, Ordering::Relaxed);
        }
    }

    /// Record one finished work unit.
    pub(crate) fn unit_done(&self) {
        self.units_done.fetch_add(1, Ordering::Relaxed);
    }

    /// Pin the estimate to 1.0 — called when a walk completes (either
    /// exhaustively or because a visitor stopped it, in which case the
    /// remaining space is decided and therefore "done").
    pub(crate) fn finish(&self) {
        self.done_ppb.fetch_max(PPB, Ordering::Relaxed);
        let total = self.units_total.load(Ordering::Relaxed);
        self.units_done.fetch_max(total, Ordering::Relaxed);
    }

    /// The current estimate in `[0.0, 1.0]`.
    pub fn fraction(&self) -> f64 {
        self.done_ppb.load(Ordering::Relaxed).min(PPB) as f64 / PPB as f64
    }

    /// `(units done, units total)` — the coarse units-completed view.
    pub fn units(&self) -> (u64, u64) {
        let total = self.units_total.load(Ordering::Relaxed);
        (self.units_done.load(Ordering::Relaxed).min(total), total)
    }
}

/// The number of search-tree nodes for packages drawn from `avail`
/// remaining items with at most `cap` more slots:
/// `Σ_{t=0}^{min(cap, avail)} C(avail, t)`, counting the current
/// (empty-extension) node as `t = 0`. Computed as a running product in
/// `f64`; saturates to `f64::INFINITY` for spaces too large to matter
/// (any share of them rounds to whole-unit granularity anyway).
pub(crate) fn count_nodes(avail: usize, cap: usize) -> f64 {
    let mut total = 1.0f64;
    let mut term = 1.0f64;
    for t in 1..=cap.min(avail) {
        term *= (avail - t + 1) as f64 / t as f64;
        total += term;
        if !total.is_finite() {
            return f64::INFINITY;
        }
    }
    total
}

/// A per-thread accumulator that batches node/prune credits into the
/// shared [`Progress`], flushing every [`ProgressSink::FLUSH_NODES`]
/// nodes to keep the hot loop free of atomics.
pub(crate) struct ProgressSink<'a> {
    progress: &'a Progress,
    /// PPB value of a single node: `PPB / total_nodes` (0 when the
    /// space is infinite or empty — whole-unit granularity only).
    ppb_per_node: f64,
    pending: f64,
    since_flush: u32,
}

impl<'a> ProgressSink<'a> {
    const FLUSH_NODES: u32 = 4096;

    /// A sink for a search whose full tree has `total_nodes` nodes.
    pub(crate) fn new(progress: &'a Progress, total_nodes: f64) -> ProgressSink<'a> {
        let ppb_per_node = if total_nodes.is_finite() && total_nodes >= 1.0 {
            PPB as f64 / total_nodes
        } else {
            0.0
        };
        ProgressSink {
            progress,
            ppb_per_node,
            pending: 0.0,
            since_flush: 0,
        }
    }

    /// Credit one visited node.
    pub(crate) fn node(&mut self) {
        self.pending += self.ppb_per_node;
        self.since_flush += 1;
        if self.since_flush >= Self::FLUSH_NODES {
            self.flush();
        }
    }

    /// Credit `nodes` skipped nodes (a pruned subtree) at once.
    pub(crate) fn skip(&mut self, nodes: f64) {
        if nodes > 0.0 && nodes.is_finite() {
            self.pending += nodes * self.ppb_per_node;
        }
        if self.pending >= PPB as f64 / 1024.0 {
            self.flush();
        }
    }

    /// Push the pending credit to the shared counter.
    pub(crate) fn flush(&mut self) {
        if self.pending >= 1.0 {
            self.progress.add_ppb(self.pending as u64);
            self.pending = 0.0;
        }
        self.since_flush = 0;
    }

    /// Finish a unit: flush and bump the units-done count.
    pub(crate) fn unit_done(&mut self) {
        self.flush();
        self.progress.unit_done();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn count_nodes_matches_binomial_sums() {
        // avail=3, cap=3: 1 + 3 + 3 + 1 = 8 (the full power set).
        assert_eq!(count_nodes(3, 3), 8.0);
        // avail=4, cap=2: 1 + 4 + 6 = 11.
        assert_eq!(count_nodes(4, 2), 11.0);
        // cap=0 or avail=0: just the current node.
        assert_eq!(count_nodes(0, 5), 1.0);
        assert_eq!(count_nodes(5, 0), 1.0);
        // Huge spaces saturate instead of overflowing.
        assert_eq!(count_nodes(10_000, 10_000), f64::INFINITY);
    }

    #[test]
    fn fraction_is_monotone_and_finish_pins_to_one() {
        let p = Progress::new();
        p.begin(4);
        assert_eq!(p.fraction(), 0.0);
        p.add_ppb(250_000_000);
        let a = p.fraction();
        p.add_ppb(250_000_000);
        let b = p.fraction();
        assert!(a <= b);
        assert!((a - 0.25).abs() < 1e-9);
        p.finish();
        assert_eq!(p.fraction(), 1.0);
        assert_eq!(p.units(), (4, 4));
    }

    #[test]
    fn sink_batches_and_flushes_node_credit() {
        let p = Progress::new();
        p.begin(1);
        let mut sink = ProgressSink::new(&p, 8.0);
        for _ in 0..4 {
            sink.node();
        }
        sink.flush();
        assert!((p.fraction() - 0.5).abs() < 1e-6);
        sink.skip(4.0);
        sink.flush();
        assert!((p.fraction() - 1.0).abs() < 1e-6);
    }

    #[test]
    fn infinite_spaces_fall_back_to_unit_granularity() {
        let p = Progress::new();
        p.begin(2);
        let mut sink = ProgressSink::new(&p, f64::INFINITY);
        for _ in 0..100 {
            sink.node();
        }
        sink.unit_done();
        assert_eq!(p.fraction(), 0.0);
        assert_eq!(p.units(), (1, 2));
    }
}
