//! The paper's decision, function and counting problems.
//!
//! | Module | Problem | Paper section |
//! |---|---|---|
//! | [`compat`] | the compatibility problem (find a valid package rated above a bound) | Lemma 4.2 / 4.4 |
//! | [`rpp`] | RPP — is a set of packages a top-k selection? | Section 4 |
//! | [`frp`] | FRP — compute a top-k selection | Section 5 |
//! | [`mbp`] | MBP — is B the maximum rating bound? | Section 5 |
//! | [`cpp`] | CPP — count valid packages | Section 5 |
//! | [`items`] | item recommendations (top-k items under a utility) | Sections 2 & 6 |
//! | [`group`] | group recommendations (the Section 9 open issue) | conclusion / [Amer-Yahia et al.] |

pub mod compat;
pub mod cpp;
pub mod group;
pub mod frp;
pub mod items;
pub mod mbp;
pub mod rpp;
