//! RPP — *the recommendation problem (packages)*, Section 4:
//!
//! > Given `D`, `Q`, `Qc`, `cost()`, `val()`, `C`, `k` and a set
//! > `N = {N1, ..., Nk}`, is `N` a top-k package selection?
//!
//! The decision procedure mirrors the paper's upper-bound algorithm
//! (Theorem 4.1): (1) check `N` is a *valid* selection — every `Ni` is
//! drawn from `Q(D)`, compatible, within budget, within the size bound,
//! and the `Ni` are pairwise distinct; (2) search for a valid package
//! outside `N` rated strictly above some member of `N` — its existence
//! refutes top-k-ness.

use std::collections::BTreeSet;
use std::ops::ControlFlow;

use crate::enumerate::{reduce_valid_packages_in, SolveOptions, ValidPackageReducer};
use crate::instance::RecInstance;
use crate::package::Package;
use crate::rating::Ext;
use crate::Result;

/// Why a candidate selection is not a top-k selection.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RppRefutation {
    /// The candidate does not have exactly `k` packages.
    WrongCount {
        /// Expected `k`.
        expected: usize,
        /// Provided count.
        found: usize,
    },
    /// Two candidate packages are equal (condition (6)).
    NotDistinct,
    /// A candidate package violates conditions (1)–(4).
    InvalidPackage(Package),
    /// A valid package outside the candidate outranks a member
    /// (condition (5)).
    Dominated {
        /// The dominating package.
        better: Package,
        /// Its rating.
        val: Ext,
    },
}

/// Stop at the first (in canonical order) valid package outside the
/// selection rated strictly above `min_val`. The break depends only on
/// the visited package, so every engine finds the *same* dominator: the
/// canonically first one.
struct FirstDominator<'a> {
    selection: &'a [Package],
    min_val: Ext,
}

impl ValidPackageReducer for FirstDominator<'_> {
    type Acc = Option<RppRefutation>;

    fn new_acc(&self) -> Self::Acc {
        None
    }

    fn visit(&self, acc: &mut Self::Acc, pkg: &Package, val: Ext) -> ControlFlow<()> {
        if val > self.min_val && !self.selection.contains(pkg) {
            *acc = Some(RppRefutation::Dominated {
                better: pkg.clone(),
                val,
            });
            ControlFlow::Break(())
        } else {
            ControlFlow::Continue(())
        }
    }

    fn merge(&self, into: &mut Self::Acc, later: Self::Acc) {
        if into.is_none() {
            *into = later;
        }
    }
}

/// Decide RPP, explaining a "no" answer. Strict: the dominating-package
/// search must either find a refutation or exhaust the space, so a
/// budget cut-off with no refutation in hand is an error.
pub fn check_top_k(
    inst: &RecInstance,
    selection: &[Package],
    opts: &SolveOptions,
) -> Result<std::result::Result<(), RppRefutation>> {
    let _span = pkgrec_trace::span!("rpp.check_top_k");
    let ctx = inst.search_context()?;
    // Step 1: validity of the selection itself.
    if selection.len() != inst.k {
        return Ok(Err(RppRefutation::WrongCount {
            expected: inst.k,
            found: selection.len(),
        }));
    }
    let distinct: BTreeSet<&Package> = selection.iter().collect();
    if distinct.len() != selection.len() {
        return Ok(Err(RppRefutation::NotDistinct));
    }
    for pkg in selection {
        if !ctx.is_valid_package(pkg, None)? {
            return Ok(Err(RppRefutation::InvalidPackage(pkg.clone())));
        }
    }

    // Step 2: look for a dominating package. Condition (5) requires
    // every valid outside package to rate ≤ every member, i.e. ≤ the
    // minimum member rating.
    let min_val = selection
        .iter()
        .map(|p| inst.val.eval(p))
        .min()
        .expect("k ≥ 1");

    let reducer = FirstDominator { selection, min_val };
    let (refutation, stats) = reduce_valid_packages_in(&ctx, Some(min_val), opts, &reducer)?;
    Ok(match refutation {
        Some(r) => Err(r), // a found dominator refutes regardless of budget
        None => match stats.interrupted {
            Some(cut) => return Err(cut.into()),
            None => Ok(()),
        },
    })
}

/// Decide RPP: is `selection` a top-k package selection for the
/// instance?
pub fn is_top_k(inst: &RecInstance, selection: &[Package], opts: &SolveOptions) -> Result<bool> {
    Ok(check_top_k(inst, selection, opts)?.is_ok())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::functions::PackageFn;
    use pkgrec_data::{tuple, AttrType, Database, Relation, RelationSchema};
    use pkgrec_query::{ConjunctiveQuery, Query};

    /// Items {1, 2, 3}; val(N) = sum of items; cost = |N|; C = 2.
    fn inst() -> RecInstance {
        let mut db = Database::new();
        let r = RelationSchema::new("r", [("a", AttrType::Int)]).unwrap();
        db.add_relation(
            Relation::from_tuples(r, [tuple![1], tuple![2], tuple![3]]).unwrap(),
        )
        .unwrap();
        RecInstance::new(db, Query::Cq(ConjunctiveQuery::identity("r", 1)))
            .with_budget(2.0)
            .with_val(PackageFn::sum_col(0, true))
    }

    #[test]
    fn accepts_the_true_top_1() {
        // Best 2-item package: {2,3} with val 5.
        let i = inst();
        let sel = vec![Package::new([tuple![2], tuple![3]])];
        assert!(is_top_k(&i, &sel, &SolveOptions::default()).unwrap());
    }

    #[test]
    fn rejects_dominated_selection() {
        let i = inst();
        let sel = vec![Package::new([tuple![1], tuple![2]])];
        let r = check_top_k(&i, &sel, &SolveOptions::default())
            .unwrap()
            .unwrap_err();
        assert!(matches!(r, RppRefutation::Dominated { val, .. } if val > Ext::Finite(3.0)));
    }

    #[test]
    fn rejects_wrong_count_and_duplicates() {
        let i = inst().with_k(2);
        let one = vec![Package::new([tuple![2], tuple![3]])];
        assert!(matches!(
            check_top_k(&i, &one, &SolveOptions::default()).unwrap(),
            Err(RppRefutation::WrongCount { expected: 2, found: 1 })
        ));
        let dup = vec![
            Package::new([tuple![2], tuple![3]]),
            Package::new([tuple![2], tuple![3]]),
        ];
        assert!(matches!(
            check_top_k(&i, &dup, &SolveOptions::default()).unwrap(),
            Err(RppRefutation::NotDistinct)
        ));
    }

    #[test]
    fn rejects_invalid_member() {
        let i = inst();
        // Over budget (3 items) — invalid.
        let sel = vec![Package::new([tuple![1], tuple![2], tuple![3]])];
        assert!(matches!(
            check_top_k(&i, &sel, &SolveOptions::default()).unwrap(),
            Err(RppRefutation::InvalidPackage(_))
        ));
        // Item not in Q(D).
        let sel = vec![Package::new([tuple![9]])];
        assert!(matches!(
            check_top_k(&i, &sel, &SolveOptions::default()).unwrap(),
            Err(RppRefutation::InvalidPackage(_))
        ));
    }

    #[test]
    fn top_2_requires_both_best() {
        let i = inst().with_k(2);
        // Best two: {2,3}=5 and {1,3}=4.
        let good = vec![
            Package::new([tuple![2], tuple![3]]),
            Package::new([tuple![1], tuple![3]]),
        ];
        assert!(is_top_k(&i, &good, &SolveOptions::default()).unwrap());
        let bad = vec![
            Package::new([tuple![2], tuple![3]]),
            Package::new([tuple![1], tuple![2]]), // val 3 < {1,3}'s 4
        ];
        assert!(!is_top_k(&i, &bad, &SolveOptions::default()).unwrap());
    }

    #[test]
    fn ties_allow_either_winner() {
        // val constant: every single valid selection of the right size
        // is top-k.
        let i = inst().with_val(PackageFn::constant(Ext::Finite(1.0)));
        let sel = vec![Package::new([tuple![1]])];
        assert!(is_top_k(&i, &sel, &SolveOptions::default()).unwrap());
        let sel2 = vec![Package::new([tuple![3]])];
        assert!(is_top_k(&i, &sel2, &SolveOptions::default()).unwrap());
    }
}
