//! FRP — *the function recommendation problem (packages)*, Section 5:
//! compute a top-k package selection if one exists.
//!
//! Two solvers are provided and cross-tested:
//!
//! * [`top_k`] — a direct enumerator that streams all valid packages
//!   and keeps the k best (rating-descending, package-ascending
//!   tie-break). This is the Corollary 6.1 algorithm when the size
//!   bound is constant.
//! * [`top_k_via_oracle`] — the oracle-guided structure of the paper's
//!   FPΣp₂ algorithm (Theorem 5.1): repeatedly call the `EXISTPACK≥`
//!   oracle for the best valid package distinct from those already
//!   selected. Our oracle ([`exist_pack_ge`]) is the exhaustive-search
//!   stand-in for the Σp₂ oracle.

use std::collections::BTreeSet;
use std::ops::ControlFlow;

use crate::enumerate::{for_each_valid_package, SolveOptions};
use crate::instance::RecInstance;
use crate::package::Package;
use crate::rating::Ext;
use crate::Result;

/// Candidate ordering key: better = higher rating, then *smaller*
/// package in canonical order. Wrapping `Package` in `Reverse` makes a
/// max-comparison prefer the smaller package on rating ties.
type Key = (Ext, std::cmp::Reverse<Package>);

fn key(val: Ext, pkg: &Package) -> Key {
    (val, std::cmp::Reverse(pkg.clone()))
}

/// Compute a top-k package selection, or `None` if fewer than `k`
/// distinct valid packages exist. The result is sorted by descending
/// rating (ties: canonically smaller package first) and is
/// deterministic.
pub fn top_k(inst: &RecInstance, opts: SolveOptions) -> Result<Option<Vec<Package>>> {
    let k = inst.k;
    // Min-keyed working set of the current best k.
    let mut best: BTreeSet<Key> = BTreeSet::new();
    for_each_valid_package(inst, None, opts, |pkg, val| {
        let candidate = key(val, pkg);
        if best.len() < k {
            best.insert(candidate);
        } else {
            let weakest = best.first().expect("nonempty").clone();
            if candidate > weakest {
                best.remove(&weakest);
                best.insert(candidate);
            }
        }
        ControlFlow::Continue(())
    })?;
    if best.len() < k {
        return Ok(None);
    }
    let mut out: Vec<Package> = best
        .into_iter()
        .rev() // best first
        .map(|(_, std::cmp::Reverse(p))| p)
        .collect();
    out.truncate(k);
    Ok(Some(out))
}

/// The `EXISTPACK≥` oracle of Theorem 5.1: a valid package `N` with
/// `val(N) ≥ bound` that is not in `exclude`, if one exists. The
/// *best* such package (same order as [`top_k`]) is returned, making
/// the oracle deterministic.
pub fn exist_pack_ge(
    inst: &RecInstance,
    exclude: &[Package],
    bound: Ext,
    opts: SolveOptions,
) -> Result<Option<Package>> {
    let mut best: Option<Key> = None;
    for_each_valid_package(inst, Some(bound), opts, |pkg, val| {
        if !exclude.contains(pkg) {
            let candidate = key(val, pkg);
            if best.as_ref().is_none_or(|b| candidate > *b) {
                best = Some(candidate);
            }
        }
        ControlFlow::Continue(())
    })?;
    Ok(best.map(|(_, std::cmp::Reverse(p))| p))
}

/// Compute a top-k selection with the paper's oracle-call structure:
/// `k` rounds, each selecting the best valid package distinct from the
/// already-selected ones.
pub fn top_k_via_oracle(inst: &RecInstance, opts: SolveOptions) -> Result<Option<Vec<Package>>> {
    let mut selected: Vec<Package> = Vec::with_capacity(inst.k);
    for _ in 0..inst.k {
        match exist_pack_ge(inst, &selected, Ext::NegInf, opts)? {
            Some(p) => selected.push(p),
            None => return Ok(None),
        }
    }
    Ok(Some(selected))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::constraints::Constraint;
    use crate::functions::PackageFn;
    use pkgrec_data::{tuple, AttrType, Database, Relation, RelationSchema};
    use pkgrec_query::{ConjunctiveQuery, Query};

    fn inst() -> RecInstance {
        let mut db = Database::new();
        let r = RelationSchema::new("r", [("a", AttrType::Int)]).unwrap();
        db.add_relation(
            Relation::from_tuples(r, [tuple![1], tuple![2], tuple![3]]).unwrap(),
        )
        .unwrap();
        RecInstance::new(db, Query::Cq(ConjunctiveQuery::identity("r", 1)))
            .with_budget(2.0)
            .with_val(PackageFn::sum_col(0, true))
    }

    #[test]
    fn top_1_is_the_max_sum_pair() {
        let sel = top_k(&inst(), SolveOptions::default()).unwrap().unwrap();
        assert_eq!(sel, vec![Package::new([tuple![2], tuple![3]])]);
    }

    #[test]
    fn top_3_ordering() {
        let sel = top_k(&inst().with_k(3), SolveOptions::default())
            .unwrap()
            .unwrap();
        assert_eq!(
            sel,
            vec![
                Package::new([tuple![2], tuple![3]]), // 5
                Package::new([tuple![1], tuple![3]]), // 4
                Package::new([tuple![1], tuple![2]]), // 3 — beats {3} by tie? no: {3} has 3 too
            ]
        );
    }

    #[test]
    fn tie_break_prefers_smaller_package() {
        // val({1,2}) = 3 = val({3}); the canonical order on packages has
        // {(1),(2)} < {(3)} (first element (1) < (3)), so {1,2} wins.
        let sel = top_k(&inst().with_k(3), SolveOptions::default())
            .unwrap()
            .unwrap();
        assert_eq!(sel[2], Package::new([tuple![1], tuple![2]]));
    }

    #[test]
    fn none_when_not_enough_packages() {
        // Qc rejects everything.
        let i = inst().with_qc(Constraint::ptime("reject all", |_, _| false));
        assert!(top_k(&i, SolveOptions::default()).unwrap().is_none());
        // k larger than the number of valid packages (6 nonempty ≤2-item
        // subsets of 3 items).
        let i = inst().with_k(7);
        assert!(top_k(&i, SolveOptions::default()).unwrap().is_none());
        let i = inst().with_k(6);
        assert!(top_k(&i, SolveOptions::default()).unwrap().is_some());
    }

    #[test]
    fn oracle_and_enumerator_agree() {
        for k in 1..=6 {
            let i = inst().with_k(k);
            let a = top_k(&i, SolveOptions::default()).unwrap();
            let b = top_k_via_oracle(&i, SolveOptions::default()).unwrap();
            assert_eq!(a, b, "k = {k}");
        }
    }

    #[test]
    fn every_result_is_a_top_k_selection() {
        use crate::problems::rpp::is_top_k;
        for k in 1..=4 {
            let i = inst().with_k(k);
            let sel = top_k(&i, SolveOptions::default()).unwrap().unwrap();
            assert!(is_top_k(&i, &sel, SolveOptions::default()).unwrap(), "k = {k}");
        }
    }

    #[test]
    fn exist_pack_bound_filters() {
        let i = inst();
        let p = exist_pack_ge(&i, &[], Ext::Finite(5.0), SolveOptions::default())
            .unwrap()
            .unwrap();
        assert_eq!(p, Package::new([tuple![2], tuple![3]]));
        assert!(exist_pack_ge(&i, &[], Ext::Finite(6.0), SolveOptions::default())
            .unwrap()
            .is_none());
        // Excluding the best yields the runner-up.
        let second = exist_pack_ge(
            &i,
            &[Package::new([tuple![2], tuple![3]])],
            Ext::NegInf,
            SolveOptions::default(),
        )
        .unwrap()
        .unwrap();
        assert_eq!(second, Package::new([tuple![1], tuple![3]]));
    }
}
