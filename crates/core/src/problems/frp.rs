//! FRP — *the function recommendation problem (packages)*, Section 5:
//! compute a top-k package selection if one exists.
//!
//! Two solvers are provided and cross-tested:
//!
//! * [`top_k`] — a direct enumerator that streams all valid packages
//!   and keeps the k best (rating-descending, package-ascending
//!   tie-break). This is the Corollary 6.1 algorithm when the size
//!   bound is constant. It is *anytime*: under an exhausted
//!   [`SolveOptions`] budget it returns the best selection found so
//!   far, flagged non-exact, instead of failing.
//! * [`top_k_via_oracle`] — the oracle-guided structure of the paper's
//!   FPΣp₂ algorithm (Theorem 5.1): repeatedly call the `EXISTPACK≥`
//!   oracle for the best valid package distinct from those already
//!   selected. Our oracle ([`exist_pack_ge`]) is the exhaustive-search
//!   stand-in for the Σp₂ oracle; because each oracle answer must be
//!   certified by a complete search, this solver is strict and errors
//!   on budget exhaustion.

use std::collections::BTreeSet;
use std::ops::ControlFlow;

use pkgrec_guard::Outcome;

use crate::enumerate::{
    reduce_valid_packages, reduce_valid_packages_in, SearchStats, SolveOptions,
    ValidPackageReducer,
};
use crate::instance::{RecInstance, SearchContext};
use crate::package::Package;
use crate::rating::Ext;
use crate::Result;

/// Candidate ordering key: better = higher rating, then *smaller*
/// package in canonical order. Wrapping `Package` in `Reverse` makes a
/// max-comparison prefer the smaller package on rating ties.
type Key = (Ext, std::cmp::Reverse<Package>);

/// Whether `(val, pkg)` beats the current weakest kept candidate,
/// compared **by reference** — no package clone on the (overwhelmingly
/// common) rejection path.
fn beats(val: Ext, pkg: &Package, weakest: &Key) -> bool {
    match val.cmp(&weakest.0) {
        std::cmp::Ordering::Greater => true,
        std::cmp::Ordering::Less => false,
        // Equal rating: the canonically smaller package wins.
        std::cmp::Ordering::Equal => *pkg < weakest.1 .0,
    }
}

/// Insert a candidate into a size-capped min-keyed working set, cloning
/// the package only when it actually enters the set.
fn insert_capped(best: &mut BTreeSet<Key>, k: usize, pkg: &Package, val: Ext) {
    if best.len() == k {
        let weakest = best.first().expect("k ≥ 1 and the set is full");
        if !beats(val, pkg, weakest) {
            return;
        }
        best.pop_first();
    }
    pkgrec_trace::counter!("frp.candidate_inserts");
    best.insert((val, std::cmp::Reverse(pkg.clone())));
}

/// Merge-side variant of [`insert_capped`] for already-owned keys
/// (combining per-worker working sets; no counter — the insertions were
/// counted when the workers first saw the packages).
fn insert_capped_owned(best: &mut BTreeSet<Key>, k: usize, candidate: Key) {
    if best.len() == k {
        let weakest = best.first().expect("k ≥ 1 and the set is full");
        if !beats(candidate.0, &candidate.1 .0, weakest) {
            return;
        }
        best.pop_first();
    }
    best.insert(candidate);
}

/// Keep the `k` best `(rating, package)` candidates seen.
struct TopKSel {
    k: usize,
}

impl ValidPackageReducer for TopKSel {
    type Acc = BTreeSet<Key>;

    fn new_acc(&self) -> Self::Acc {
        BTreeSet::new()
    }

    fn visit(&self, acc: &mut Self::Acc, pkg: &Package, val: Ext) -> ControlFlow<()> {
        insert_capped(acc, self.k, pkg, val);
        ControlFlow::Continue(())
    }

    fn merge(&self, into: &mut Self::Acc, later: Self::Acc) {
        for candidate in later {
            insert_capped_owned(into, self.k, candidate);
        }
    }
}

/// Keep the single best candidate not in an exclusion list.
struct BestAbove<'a> {
    exclude: &'a [Package],
}

impl ValidPackageReducer for BestAbove<'_> {
    type Acc = Option<Key>;

    fn new_acc(&self) -> Self::Acc {
        None
    }

    fn visit(&self, acc: &mut Self::Acc, pkg: &Package, val: Ext) -> ControlFlow<()> {
        if !self.exclude.contains(pkg) {
            let better = match acc {
                None => true,
                Some(best) => beats(val, pkg, best),
            };
            if better {
                *acc = Some((val, std::cmp::Reverse(pkg.clone())));
            }
        }
        ControlFlow::Continue(())
    }

    fn merge(&self, into: &mut Self::Acc, later: Self::Acc) {
        if let Some(candidate) = later {
            let better = match into {
                None => true,
                Some(best) => beats(candidate.0, &candidate.1 .0, best),
            };
            if better {
                *into = Some(candidate);
            }
        }
    }
}

/// Compute a top-k package selection, sorted by descending rating
/// (ties: canonically smaller package first), deterministically.
///
/// The result is an [`Outcome`]:
///
/// * exact, `Some(sel)` — a certified top-k selection;
/// * exact, `None` — certified that fewer than `k` distinct valid
///   packages exist;
/// * non-exact (budget exhausted) — the best-so-far selection over the
///   visited prefix: `Some` of up to `k` packages, or `None` when the
///   cut-off happened before any valid package was seen. Nothing is
///   certified.
pub fn top_k(
    inst: &RecInstance,
    opts: &SolveOptions,
) -> Result<Outcome<Option<Vec<Package>>, SearchStats>> {
    let ctx = inst.search_context()?;
    top_k_in(&ctx, opts)
}

/// [`top_k`] on a prebuilt [`SearchContext`] — the entry point for
/// callers that amortize plan compilation across solves (e.g. a
/// resident server stamping contexts out of a
/// [`PreparedInstance`](crate::PreparedInstance)).
pub fn top_k_in(
    ctx: &SearchContext<'_>,
    opts: &SolveOptions,
) -> Result<Outcome<Option<Vec<Package>>, SearchStats>> {
    if let Some(params) = &opts.approx {
        return crate::sketch::top_k(ctx, opts, params);
    }
    let _span = pkgrec_trace::span!("frp.top_k");
    let k = ctx.instance().k;
    let (best, stats) = reduce_valid_packages_in(ctx, None, opts, &TopKSel { k })?;
    let found: Vec<Package> = best
        .into_iter()
        .rev() // best first
        .map(|(_, std::cmp::Reverse(p))| p)
        .collect();
    Ok(match stats.interrupted {
        None => {
            let value = if found.len() < k { None } else { Some(found) };
            Outcome::exact(value, stats)
        }
        Some(cut) => {
            let value = if found.is_empty() { None } else { Some(found) };
            Outcome::partial(value, cut, stats)
        }
    })
}

/// The `EXISTPACK≥` oracle of Theorem 5.1: a valid package `N` with
/// `val(N) ≥ bound` that is not in `exclude`, if one exists. The
/// *best* such package (same order as [`top_k`]) is returned, making
/// the oracle deterministic. Strict: a budget cut-off is an error,
/// since a partial search certifies neither the best package nor
/// nonexistence.
pub fn exist_pack_ge(
    inst: &RecInstance,
    exclude: &[Package],
    bound: Ext,
    opts: &SolveOptions,
) -> Result<Option<Package>> {
    let _span = pkgrec_trace::span!("frp.exist_pack_ge");
    let (best, stats) = reduce_valid_packages(inst, Some(bound), opts, &BestAbove { exclude })?;
    if let Some(cut) = stats.interrupted {
        return Err(cut.into());
    }
    Ok(best.map(|(_, std::cmp::Reverse(p))| p))
}

/// Compute a top-k selection with the paper's oracle-call structure:
/// `k` rounds, each selecting the best valid package distinct from the
/// already-selected ones. Strict (see [`exist_pack_ge`]); note the step
/// budget applies per oracle call.
pub fn top_k_via_oracle(inst: &RecInstance, opts: &SolveOptions) -> Result<Option<Vec<Package>>> {
    let mut selected: Vec<Package> = Vec::with_capacity(inst.k);
    for _ in 0..inst.k {
        match exist_pack_ge(inst, &selected, Ext::NegInf, opts)? {
            Some(p) => selected.push(p),
            None => return Ok(None),
        }
    }
    Ok(Some(selected))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::constraints::Constraint;
    use crate::functions::PackageFn;
    use crate::CoreError;
    use pkgrec_data::{tuple, AttrType, Database, Relation, RelationSchema};
    use pkgrec_query::{ConjunctiveQuery, Query};

    fn inst() -> RecInstance {
        let mut db = Database::new();
        let r = RelationSchema::new("r", [("a", AttrType::Int)]).unwrap();
        db.add_relation(
            Relation::from_tuples(r, [tuple![1], tuple![2], tuple![3]]).unwrap(),
        )
        .unwrap();
        RecInstance::new(db, Query::Cq(ConjunctiveQuery::identity("r", 1)))
            .with_budget(2.0)
            .with_val(PackageFn::sum_col(0, true))
    }

    /// Exact helper for tests: unwrap an exact outcome's value.
    fn top_k_exact(inst: &RecInstance, opts: &SolveOptions) -> Option<Vec<Package>> {
        let out = top_k(inst, opts).unwrap();
        assert!(out.exact, "expected an exact (uninterrupted) run");
        out.value
    }

    #[test]
    fn top_1_is_the_max_sum_pair() {
        let sel = top_k_exact(&inst(), &SolveOptions::default()).unwrap();
        assert_eq!(sel, vec![Package::new([tuple![2], tuple![3]])]);
    }

    #[test]
    fn top_3_ordering() {
        let sel = top_k_exact(&inst().with_k(3), &SolveOptions::default()).unwrap();
        assert_eq!(
            sel,
            vec![
                Package::new([tuple![2], tuple![3]]), // 5
                Package::new([tuple![1], tuple![3]]), // 4
                Package::new([tuple![1], tuple![2]]), // 3 — beats {3} by tie? no: {3} has 3 too
            ]
        );
    }

    #[test]
    fn tie_break_prefers_smaller_package() {
        // val({1,2}) = 3 = val({3}); the canonical order on packages has
        // {(1),(2)} < {(3)} (first element (1) < (3)), so {1,2} wins.
        let sel = top_k_exact(&inst().with_k(3), &SolveOptions::default()).unwrap();
        assert_eq!(sel[2], Package::new([tuple![1], tuple![2]]));
    }

    #[test]
    fn none_when_not_enough_packages() {
        // Qc rejects everything.
        let i = inst().with_qc(Constraint::ptime("reject all", |_, _| false));
        assert!(top_k_exact(&i, &SolveOptions::default()).is_none());
        // k larger than the number of valid packages (6 nonempty ≤2-item
        // subsets of 3 items).
        let i = inst().with_k(7);
        assert!(top_k_exact(&i, &SolveOptions::default()).is_none());
        let i = inst().with_k(6);
        assert!(top_k_exact(&i, &SolveOptions::default()).is_some());
    }

    #[test]
    fn oracle_and_enumerator_agree() {
        for k in 1..=6 {
            let i = inst().with_k(k);
            let a = top_k_exact(&i, &SolveOptions::default());
            let b = top_k_via_oracle(&i, &SolveOptions::default()).unwrap();
            assert_eq!(a, b, "k = {k}");
        }
    }

    #[test]
    fn every_result_is_a_top_k_selection() {
        use crate::problems::rpp::is_top_k;
        for k in 1..=4 {
            let i = inst().with_k(k);
            let sel = top_k_exact(&i, &SolveOptions::default()).unwrap();
            assert!(is_top_k(&i, &sel, &SolveOptions::default()).unwrap(), "k = {k}");
        }
    }

    #[test]
    fn exist_pack_bound_filters() {
        let i = inst();
        let p = exist_pack_ge(&i, &[], Ext::Finite(5.0), &SolveOptions::default())
            .unwrap()
            .unwrap();
        assert_eq!(p, Package::new([tuple![2], tuple![3]]));
        assert!(exist_pack_ge(&i, &[], Ext::Finite(6.0), &SolveOptions::default())
            .unwrap()
            .is_none());
        // Excluding the best yields the runner-up.
        let second = exist_pack_ge(
            &i,
            &[Package::new([tuple![2], tuple![3]])],
            Ext::NegInf,
            &SolveOptions::default(),
        )
        .unwrap()
        .unwrap();
        assert_eq!(second, Package::new([tuple![1], tuple![3]]));
    }

    #[test]
    fn working_set_clones_only_on_insertion() {
        // Regression: every visited valid package used to be cloned
        // into a candidate key (plus a `weakest.clone()` per visit).
        // Now a candidate enters the working set only when it beats the
        // weakest kept one, and the `frp.candidate_inserts` counter
        // pins the insertion count: with k = 1 the valid ratings arrive
        // as 1, 3, 4, 2, 5, 3 — exactly 4 improve on the incumbent.
        let _scope = pkgrec_trace::scoped();
        pkgrec_trace::reset();
        top_k(&inst(), &SolveOptions::default().with_jobs(1)).unwrap();
        let report = pkgrec_trace::take();
        assert_eq!(report.counters["enumerate.valid"], 6);
        assert_eq!(report.counters["frp.candidate_inserts"], 4);
    }

    #[test]
    fn exhausted_budget_yields_anytime_best() {
        // Canonical DFS order visits ∅, {1}, {1,2}, ... — a budget of 3
        // sees val 1 and 3 but never the true best ({2,3}, val 5).
        // Pinned to the sequential engine: which prefix a step budget
        // covers is engine-dependent.
        let out = top_k(&inst(), &SolveOptions::limited(3).with_jobs(1)).unwrap();
        assert!(!out.exact);
        let sel = out.value.expect("a valid package was seen before cut-off");
        assert!(!sel.is_empty());
        // The unbounded run strictly improves on the partial one.
        let full = top_k_exact(&inst(), &SolveOptions::default()).unwrap();
        assert!(inst().val.eval(&full[0]) > inst().val.eval(&sel[0]));
    }

    #[test]
    fn oracle_is_strict_under_budget() {
        let r = top_k_via_oracle(&inst(), &SolveOptions::limited(2));
        assert!(matches!(r, Err(CoreError::SearchLimitExceeded { .. })));
    }
}
