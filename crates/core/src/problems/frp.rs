//! FRP — *the function recommendation problem (packages)*, Section 5:
//! compute a top-k package selection if one exists.
//!
//! Two solvers are provided and cross-tested:
//!
//! * [`top_k`] — a direct enumerator that streams all valid packages
//!   and keeps the k best (rating-descending, package-ascending
//!   tie-break). This is the Corollary 6.1 algorithm when the size
//!   bound is constant. It is *anytime*: under an exhausted
//!   [`SolveOptions`] budget it returns the best selection found so
//!   far, flagged non-exact, instead of failing.
//! * [`top_k_via_oracle`] — the oracle-guided structure of the paper's
//!   FPΣp₂ algorithm (Theorem 5.1): repeatedly call the `EXISTPACK≥`
//!   oracle for the best valid package distinct from those already
//!   selected. Our oracle ([`exist_pack_ge`]) is the exhaustive-search
//!   stand-in for the Σp₂ oracle; because each oracle answer must be
//!   certified by a complete search, this solver is strict and errors
//!   on budget exhaustion.

use std::collections::BTreeSet;
use std::ops::ControlFlow;

use pkgrec_guard::Outcome;

use crate::enumerate::{for_each_valid_package, SearchStats, SolveOptions};
use crate::instance::RecInstance;
use crate::package::Package;
use crate::rating::Ext;
use crate::Result;

/// Candidate ordering key: better = higher rating, then *smaller*
/// package in canonical order. Wrapping `Package` in `Reverse` makes a
/// max-comparison prefer the smaller package on rating ties.
type Key = (Ext, std::cmp::Reverse<Package>);

fn key(val: Ext, pkg: &Package) -> Key {
    (val, std::cmp::Reverse(pkg.clone()))
}

/// Compute a top-k package selection, sorted by descending rating
/// (ties: canonically smaller package first), deterministically.
///
/// The result is an [`Outcome`]:
///
/// * exact, `Some(sel)` — a certified top-k selection;
/// * exact, `None` — certified that fewer than `k` distinct valid
///   packages exist;
/// * non-exact (budget exhausted) — the best-so-far selection over the
///   visited prefix: `Some` of up to `k` packages, or `None` when the
///   cut-off happened before any valid package was seen. Nothing is
///   certified.
pub fn top_k(
    inst: &RecInstance,
    opts: &SolveOptions,
) -> Result<Outcome<Option<Vec<Package>>, SearchStats>> {
    let _span = pkgrec_trace::span!("frp.top_k");
    let k = inst.k;
    // Min-keyed working set of the current best k.
    let mut best: BTreeSet<Key> = BTreeSet::new();
    let stats = for_each_valid_package(inst, None, opts, |pkg, val| {
        let candidate = key(val, pkg);
        if best.len() < k {
            best.insert(candidate);
        } else {
            let weakest = best.first().expect("nonempty").clone();
            if candidate > weakest {
                best.remove(&weakest);
                best.insert(candidate);
            }
        }
        ControlFlow::Continue(())
    })?;
    let mut found: Vec<Package> = best
        .into_iter()
        .rev() // best first
        .map(|(_, std::cmp::Reverse(p))| p)
        .collect();
    found.truncate(k);
    Ok(match stats.interrupted {
        None => {
            let value = if found.len() < k { None } else { Some(found) };
            Outcome::exact(value, stats)
        }
        Some(cut) => {
            let value = if found.is_empty() { None } else { Some(found) };
            Outcome::partial(value, cut, stats)
        }
    })
}

/// The `EXISTPACK≥` oracle of Theorem 5.1: a valid package `N` with
/// `val(N) ≥ bound` that is not in `exclude`, if one exists. The
/// *best* such package (same order as [`top_k`]) is returned, making
/// the oracle deterministic. Strict: a budget cut-off is an error,
/// since a partial search certifies neither the best package nor
/// nonexistence.
pub fn exist_pack_ge(
    inst: &RecInstance,
    exclude: &[Package],
    bound: Ext,
    opts: &SolveOptions,
) -> Result<Option<Package>> {
    let _span = pkgrec_trace::span!("frp.exist_pack_ge");
    let mut best: Option<Key> = None;
    let stats = for_each_valid_package(inst, Some(bound), opts, |pkg, val| {
        if !exclude.contains(pkg) {
            let candidate = key(val, pkg);
            if best.as_ref().is_none_or(|b| candidate > *b) {
                best = Some(candidate);
            }
        }
        ControlFlow::Continue(())
    })?;
    if let Some(cut) = stats.interrupted {
        return Err(cut.into());
    }
    Ok(best.map(|(_, std::cmp::Reverse(p))| p))
}

/// Compute a top-k selection with the paper's oracle-call structure:
/// `k` rounds, each selecting the best valid package distinct from the
/// already-selected ones. Strict (see [`exist_pack_ge`]); note the step
/// budget applies per oracle call.
pub fn top_k_via_oracle(inst: &RecInstance, opts: &SolveOptions) -> Result<Option<Vec<Package>>> {
    let mut selected: Vec<Package> = Vec::with_capacity(inst.k);
    for _ in 0..inst.k {
        match exist_pack_ge(inst, &selected, Ext::NegInf, opts)? {
            Some(p) => selected.push(p),
            None => return Ok(None),
        }
    }
    Ok(Some(selected))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::constraints::Constraint;
    use crate::functions::PackageFn;
    use crate::CoreError;
    use pkgrec_data::{tuple, AttrType, Database, Relation, RelationSchema};
    use pkgrec_query::{ConjunctiveQuery, Query};

    fn inst() -> RecInstance {
        let mut db = Database::new();
        let r = RelationSchema::new("r", [("a", AttrType::Int)]).unwrap();
        db.add_relation(
            Relation::from_tuples(r, [tuple![1], tuple![2], tuple![3]]).unwrap(),
        )
        .unwrap();
        RecInstance::new(db, Query::Cq(ConjunctiveQuery::identity("r", 1)))
            .with_budget(2.0)
            .with_val(PackageFn::sum_col(0, true))
    }

    /// Exact helper for tests: unwrap an exact outcome's value.
    fn top_k_exact(inst: &RecInstance, opts: &SolveOptions) -> Option<Vec<Package>> {
        let out = top_k(inst, opts).unwrap();
        assert!(out.exact, "expected an exact (uninterrupted) run");
        out.value
    }

    #[test]
    fn top_1_is_the_max_sum_pair() {
        let sel = top_k_exact(&inst(), &SolveOptions::default()).unwrap();
        assert_eq!(sel, vec![Package::new([tuple![2], tuple![3]])]);
    }

    #[test]
    fn top_3_ordering() {
        let sel = top_k_exact(&inst().with_k(3), &SolveOptions::default()).unwrap();
        assert_eq!(
            sel,
            vec![
                Package::new([tuple![2], tuple![3]]), // 5
                Package::new([tuple![1], tuple![3]]), // 4
                Package::new([tuple![1], tuple![2]]), // 3 — beats {3} by tie? no: {3} has 3 too
            ]
        );
    }

    #[test]
    fn tie_break_prefers_smaller_package() {
        // val({1,2}) = 3 = val({3}); the canonical order on packages has
        // {(1),(2)} < {(3)} (first element (1) < (3)), so {1,2} wins.
        let sel = top_k_exact(&inst().with_k(3), &SolveOptions::default()).unwrap();
        assert_eq!(sel[2], Package::new([tuple![1], tuple![2]]));
    }

    #[test]
    fn none_when_not_enough_packages() {
        // Qc rejects everything.
        let i = inst().with_qc(Constraint::ptime("reject all", |_, _| false));
        assert!(top_k_exact(&i, &SolveOptions::default()).is_none());
        // k larger than the number of valid packages (6 nonempty ≤2-item
        // subsets of 3 items).
        let i = inst().with_k(7);
        assert!(top_k_exact(&i, &SolveOptions::default()).is_none());
        let i = inst().with_k(6);
        assert!(top_k_exact(&i, &SolveOptions::default()).is_some());
    }

    #[test]
    fn oracle_and_enumerator_agree() {
        for k in 1..=6 {
            let i = inst().with_k(k);
            let a = top_k_exact(&i, &SolveOptions::default());
            let b = top_k_via_oracle(&i, &SolveOptions::default()).unwrap();
            assert_eq!(a, b, "k = {k}");
        }
    }

    #[test]
    fn every_result_is_a_top_k_selection() {
        use crate::problems::rpp::is_top_k;
        for k in 1..=4 {
            let i = inst().with_k(k);
            let sel = top_k_exact(&i, &SolveOptions::default()).unwrap();
            assert!(is_top_k(&i, &sel, &SolveOptions::default()).unwrap(), "k = {k}");
        }
    }

    #[test]
    fn exist_pack_bound_filters() {
        let i = inst();
        let p = exist_pack_ge(&i, &[], Ext::Finite(5.0), &SolveOptions::default())
            .unwrap()
            .unwrap();
        assert_eq!(p, Package::new([tuple![2], tuple![3]]));
        assert!(exist_pack_ge(&i, &[], Ext::Finite(6.0), &SolveOptions::default())
            .unwrap()
            .is_none());
        // Excluding the best yields the runner-up.
        let second = exist_pack_ge(
            &i,
            &[Package::new([tuple![2], tuple![3]])],
            Ext::NegInf,
            &SolveOptions::default(),
        )
        .unwrap()
        .unwrap();
        assert_eq!(second, Package::new([tuple![1], tuple![3]]));
    }

    #[test]
    fn exhausted_budget_yields_anytime_best() {
        // Canonical DFS order visits ∅, {1}, {1,2}, ... — a budget of 3
        // sees val 1 and 3 but never the true best ({2,3}, val 5).
        let out = top_k(&inst(), &SolveOptions::limited(3)).unwrap();
        assert!(!out.exact);
        let sel = out.value.expect("a valid package was seen before cut-off");
        assert!(!sel.is_empty());
        // The unbounded run strictly improves on the partial one.
        let full = top_k_exact(&inst(), &SolveOptions::default()).unwrap();
        assert!(inst().val.eval(&full[0]) > inst().val.eval(&sel[0]));
    }

    #[test]
    fn oracle_is_strict_under_budget() {
        let r = top_k_via_oracle(&inst(), &SolveOptions::limited(2));
        assert!(matches!(r, Err(CoreError::SearchLimitExceeded { .. })));
    }
}
