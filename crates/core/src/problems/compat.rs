//! The *compatibility problem* (introduced in the proof of Theorem 4.1,
//! Lemma 4.2): given `(Q, D, Qc, cost(), val(), C)` and a bound `B`,
//! does there exist a **nonempty** package `N ⊆ Q(D)` with
//! `cost(N) ≤ C`, `val(N) > B` (strict) and `Qc(N, D) = ∅`?
//!
//! Σp₂-complete in combined complexity for CQ, NP-complete in data
//! complexity (Lemmas 4.2 and 4.4); RPP reduces from its complement.

use std::ops::ControlFlow;

use crate::enumerate::{reduce_valid_packages, SolveOptions, ValidPackageReducer};
use crate::instance::RecInstance;
use crate::package::Package;
use crate::rating::Ext;
use crate::Result;

/// Stop at the first (in canonical order) nonempty package rated
/// strictly above the bound. Like RPP's dominator search, the break
/// depends only on the visited package, so every engine returns the
/// canonically first witness.
struct FirstWitness {
    rating_bound: Ext,
}

impl ValidPackageReducer for FirstWitness {
    type Acc = Option<Package>;

    fn new_acc(&self) -> Self::Acc {
        None
    }

    fn visit(&self, acc: &mut Self::Acc, pkg: &Package, val: Ext) -> ControlFlow<()> {
        if !pkg.is_empty() && val > self.rating_bound {
            *acc = Some(pkg.clone());
            ControlFlow::Break(())
        } else {
            ControlFlow::Continue(())
        }
    }

    fn merge(&self, into: &mut Self::Acc, later: Self::Acc) {
        if into.is_none() {
            *into = later;
        }
    }
}

/// Decide the compatibility problem, returning a witness package when
/// the answer is yes. A found witness is a certificate regardless of
/// the budget; a budget cut-off *without* a witness is an error, since
/// "no" needs the whole space.
pub fn compatibility_witness(
    inst: &RecInstance,
    rating_bound: Ext,
    opts: &SolveOptions,
) -> Result<Option<Package>> {
    let (witness, stats) =
        reduce_valid_packages(inst, None, opts, &FirstWitness { rating_bound })?;
    if witness.is_none() {
        if let Some(cut) = stats.interrupted {
            return Err(cut.into());
        }
    }
    Ok(witness)
}

/// Decide the compatibility problem.
pub fn compatibility(inst: &RecInstance, rating_bound: Ext, opts: &SolveOptions) -> Result<bool> {
    Ok(compatibility_witness(inst, rating_bound, opts)?.is_some())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::constraints::Constraint;
    use crate::functions::PackageFn;
    use pkgrec_data::{tuple, AttrType, Database, Relation, RelationSchema};
    use pkgrec_query::{ConjunctiveQuery, Query};

    fn inst() -> RecInstance {
        let mut db = Database::new();
        let r = RelationSchema::new("r", [("a", AttrType::Int)]).unwrap();
        db.add_relation(
            Relation::from_tuples(r, [tuple![1], tuple![2]]).unwrap(),
        )
        .unwrap();
        RecInstance::new(db, Query::Cq(ConjunctiveQuery::identity("r", 1)))
            .with_budget(10.0)
            .with_val(PackageFn::cardinality())
    }

    #[test]
    fn witness_found_when_exists() {
        // val = |N|; bound 1 ⇒ need |N| ≥ 2.
        let w = compatibility_witness(&inst(), Ext::Finite(1.0), &SolveOptions::default())
            .unwrap()
            .unwrap();
        assert_eq!(w.len(), 2);
    }

    #[test]
    fn no_witness_above_max() {
        assert!(!compatibility(&inst(), Ext::Finite(2.0), &SolveOptions::default()).unwrap());
    }

    #[test]
    fn empty_package_is_never_a_witness() {
        // With val(∅) huge but packages constrained away by Qc, no
        // nonempty witness exists.
        let i = inst()
            .with_val(PackageFn::cardinality().with_empty_value(Ext::Finite(100.0)))
            .with_qc(Constraint::ptime("reject all nonempty", |p, _| p.is_empty()));
        assert!(!compatibility(&i, Ext::Finite(0.0), &SolveOptions::default()).unwrap());
    }

    #[test]
    fn strictness_of_the_bound() {
        // Max val is 2; bound exactly 2 must fail (strict >), 1.5 passes.
        assert!(!compatibility(&inst(), Ext::Finite(2.0), &SolveOptions::default()).unwrap());
        assert!(compatibility(&inst(), Ext::Finite(1.5), &SolveOptions::default()).unwrap());
    }
}
