//! Item recommendations — the classical special case (Sections 2 and 6):
//! packages are singletons, compatibility constraints are absent, and a
//! utility function `f()` rates individual tuples.
//!
//! The module provides both the *fast* item algorithms (heap-based
//! top-k over `Q(D)` — the PTIME data-complexity algorithms of
//! Corollary 6.1 / Theorem 6.4) and the Section 2 embedding of an item
//! instance into a package instance (`Qc` empty, `cost = count`,
//! `C = 1`, `val({s}) = f(s)`), which the tests use to confirm both
//! views agree.

use std::sync::Arc;

use pkgrec_data::{Database, Tuple};
use pkgrec_query::Query;

use crate::functions::PackageFn;
use crate::instance::{RecInstance, SizeBound};
use crate::rating::Ext;
use crate::Result;

/// An item utility function `f()` (Section 2, "Item recommendations").
#[derive(Clone)]
pub struct ItemUtility {
    f: Arc<dyn Fn(&Tuple) -> f64 + Send + Sync>,
    description: Arc<str>,
}

impl ItemUtility {
    /// Wrap a utility function.
    pub fn new(
        description: impl AsRef<str>,
        f: impl Fn(&Tuple) -> f64 + Send + Sync + 'static,
    ) -> ItemUtility {
        ItemUtility {
            f: Arc::new(f),
            description: Arc::from(description.as_ref()),
        }
    }

    /// Rate an item.
    pub fn eval(&self, t: &Tuple) -> f64 {
        (self.f)(t)
    }

    /// Human-readable description.
    pub fn description(&self) -> &str {
        &self.description
    }
}

impl std::fmt::Debug for ItemUtility {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "ItemUtility({})", self.description)
    }
}

/// An item recommendation instance `(Q, D, f, k)`.
#[derive(Debug, Clone)]
pub struct ItemInstance {
    /// The item database.
    pub db: Database,
    /// The selection query.
    pub query: Query,
    /// The utility function.
    pub utility: ItemUtility,
    /// How many items to select.
    pub k: usize,
}

impl ItemInstance {
    /// Build an instance.
    pub fn new(db: Database, query: Query, utility: ItemUtility, k: usize) -> ItemInstance {
        assert!(k >= 1, "the paper requires k ≥ 1");
        ItemInstance {
            db,
            query,
            utility,
            k,
        }
    }

    /// The Section 2 embedding into a package instance: `Qc` the empty
    /// query, `cost(N) = |N|` with `cost(∅) = ∞`, budget `C = 1`
    /// (forcing singletons), `val(N) = Σ f` (which on singletons is
    /// `f(s)`), and a constant size bound of 1.
    pub fn as_package_instance(&self) -> RecInstance {
        let f = self.utility.clone();
        RecInstance::new(self.db.clone(), self.query.clone())
            .with_cost(PackageFn::count())
            .with_budget(1.0)
            .with_val(PackageFn::from_item_utility(
                format!("item utility: {}", f.description()),
                move |t| f.eval(t),
            ))
            .with_k(self.k)
            .with_size_bound(SizeBound::Constant(1))
    }

    /// Compute a top-k item selection directly (sort `Q(D)` by utility
    /// descending, tuple ascending) — `None` when `|Q(D)| < k`.
    pub fn top_k_items(&self) -> Result<Option<Vec<Tuple>>> {
        let mut items: Vec<(Ext, Tuple)> = self
            .query
            .eval(&self.db)?
            .into_iter()
            .map(|t| (Ext::Finite(self.utility.eval(&t)), t))
            .collect();
        if items.len() < self.k {
            return Ok(None);
        }
        // Utility descending; canonical tuple order ascending on ties.
        items.sort_by(|(va, ta), (vb, tb)| vb.cmp(va).then(ta.cmp(tb)));
        Ok(Some(items.into_iter().take(self.k).map(|(_, t)| t).collect()))
    }

    /// Decide RPP for items: is `selection` a top-k item selection?
    pub fn is_top_k_items(&self, selection: &[Tuple]) -> Result<bool> {
        if selection.len() != self.k {
            return Ok(false);
        }
        let mut distinct = std::collections::BTreeSet::new();
        for t in selection {
            if !distinct.insert(t.clone()) {
                return Ok(false);
            }
        }
        let answers = self.query.eval(&self.db)?;
        for t in selection {
            if !answers.contains(t) {
                return Ok(false);
            }
        }
        let min_val = selection
            .iter()
            .map(|t| self.utility.eval(t))
            .fold(f64::INFINITY, f64::min);
        Ok(answers
            .iter()
            .filter(|t| !selection.contains(t))
            .all(|t| self.utility.eval(t) <= min_val))
    }

    /// The maximum bound for items: the k-th highest utility in `Q(D)`.
    pub fn maximum_bound_items(&self) -> Result<Option<f64>> {
        Ok(self
            .top_k_items()?
            .map(|sel| self.utility.eval(sel.last().expect("k ≥ 1"))))
    }

    /// Count items with utility at least `bound`.
    pub fn count_items_ge(&self, bound: f64) -> Result<u128> {
        Ok(self
            .query
            .eval(&self.db)?
            .iter()
            .filter(|t| self.utility.eval(t) >= bound)
            .count() as u128)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::enumerate::SolveOptions;
    use crate::package::Package;
    use crate::problems::{frp, mbp, rpp};
    use pkgrec_data::{tuple, AttrType, Relation, RelationSchema};
    use pkgrec_query::ConjunctiveQuery;

    fn inst(k: usize) -> ItemInstance {
        let mut db = Database::new();
        let r = RelationSchema::new("r", [("a", AttrType::Int)]).unwrap();
        db.add_relation(
            Relation::from_tuples(r, [tuple![1], tuple![2], tuple![3], tuple![4]]).unwrap(),
        )
        .unwrap();
        ItemInstance::new(
            db,
            Query::Cq(ConjunctiveQuery::identity("r", 1)),
            ItemUtility::new("value", |t| t[0].as_numeric().unwrap() as f64),
            k,
        )
    }

    #[test]
    fn top_k_sorted_by_utility() {
        let sel = inst(2).top_k_items().unwrap().unwrap();
        assert_eq!(sel, vec![tuple![4], tuple![3]]);
    }

    #[test]
    fn none_when_too_few_items() {
        assert!(inst(5).top_k_items().unwrap().is_none());
    }

    #[test]
    fn is_top_k_items_checks() {
        let i = inst(2);
        assert!(i.is_top_k_items(&[tuple![4], tuple![3]]).unwrap());
        assert!(i.is_top_k_items(&[tuple![3], tuple![4]]).unwrap()); // order-free
        assert!(!i.is_top_k_items(&[tuple![4], tuple![2]]).unwrap());
        assert!(!i.is_top_k_items(&[tuple![4]]).unwrap());
        assert!(!i.is_top_k_items(&[tuple![4], tuple![4]]).unwrap());
        assert!(!i.is_top_k_items(&[tuple![4], tuple![9]]).unwrap());
    }

    #[test]
    fn embedding_agrees_with_fast_path() {
        for k in 1..=4 {
            let item_inst = inst(k);
            let fast = item_inst.top_k_items().unwrap().unwrap();
            let pkg_inst = item_inst.as_package_instance();
            let slow = frp::top_k(&pkg_inst, &SolveOptions::default())
                .unwrap()
                .value
                .unwrap();
            let slow_items: Vec<Tuple> = slow
                .iter()
                .map(|p| p.iter().next().expect("singleton").clone())
                .collect();
            assert_eq!(fast, slow_items, "k = {k}");
            // And the package-level RPP accepts the embedded selection.
            let as_packages: Vec<Package> =
                fast.iter().cloned().map(Package::singleton).collect();
            assert!(rpp::is_top_k(&pkg_inst, &as_packages, &SolveOptions::default()).unwrap());
        }
    }

    #[test]
    fn bounds_and_counts() {
        let i = inst(2);
        assert_eq!(i.maximum_bound_items().unwrap(), Some(3.0));
        assert_eq!(i.count_items_ge(3.0).unwrap(), 2);
        assert_eq!(i.count_items_ge(0.0).unwrap(), 4);
        // Embedded MBP agrees.
        let mb = mbp::maximum_bound(&i.as_package_instance(), &SolveOptions::default())
            .unwrap()
            .value
            .unwrap();
        assert_eq!(mb, Ext::Finite(3.0));
    }
}
