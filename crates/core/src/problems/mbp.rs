//! MBP — *the maximum bound problem (packages)*, Section 5:
//!
//! > Is `B` the maximum bound such that a top-k package selection
//! > exists with every member rated at least `B`?
//!
//! The decision follows the paper's `L1 ∩ L2` characterization
//! (Theorem 5.2 upper bound): `B` is a bound iff `k` distinct valid
//! packages rate `≥ B` (L1), and it is maximum iff additionally *no*
//! `k` distinct valid packages rate `> B` (L2). Both tests are
//! early-stopping enumerations.
//!
//! The decision procedures are strict — a budget cut-off before the
//! answer is certified is an error — while the function problem
//! [`maximum_bound`] is *anytime*: under an exhausted budget it returns
//! the k-th best rating over the visited prefix (a lower bound on the
//! true maximum bound), flagged non-exact.

use std::ops::ControlFlow;

use pkgrec_guard::Outcome;

use crate::enumerate::{
    reduce_valid_packages, reduce_valid_packages_in, SearchStats, SolveOptions,
    ValidPackageReducer,
};
use crate::instance::{RecInstance, SearchContext};
use crate::package::Package;
use crate::rating::Ext;
use crate::Result;

/// Count matching packages up to `k`, early-stopping at `k`. The break
/// is accumulator-dependent (a worker partition may not reach `k`
/// locally even when the global count does), but the *decision* — is
/// the merged count ≥ k? — is identical for every engine: either some
/// partition reaches `k` (merged count ≥ k) or none does and every
/// partition counts exhaustively (merged count is the true count).
struct CountUpTo {
    k: usize,
    /// When set, count only packages rated strictly above this.
    strictly_above: Option<Ext>,
}

impl ValidPackageReducer for CountUpTo {
    type Acc = usize;

    fn new_acc(&self) -> Self::Acc {
        0
    }

    fn visit(&self, acc: &mut Self::Acc, _pkg: &Package, val: Ext) -> ControlFlow<()> {
        if let Some(b) = self.strictly_above {
            if val <= b {
                return ControlFlow::Continue(());
            }
        }
        *acc += 1;
        if *acc >= self.k {
            ControlFlow::Break(())
        } else {
            ControlFlow::Continue(())
        }
    }

    fn merge(&self, into: &mut Self::Acc, later: Self::Acc) {
        *into += later;
    }
}

/// Keep the `k` largest ratings (multiset) seen.
struct KLargest {
    k: usize,
}

impl ValidPackageReducer for KLargest {
    type Acc = Vec<Ext>;

    fn new_acc(&self) -> Self::Acc {
        Vec::new()
    }

    fn visit(&self, acc: &mut Self::Acc, _pkg: &Package, val: Ext) -> ControlFlow<()> {
        let pos = acc.partition_point(|&v| v < val);
        acc.insert(pos, val);
        if acc.len() > self.k {
            acc.remove(0);
        }
        ControlFlow::Continue(())
    }

    fn merge(&self, into: &mut Self::Acc, later: Self::Acc) {
        for val in later {
            let pos = into.partition_point(|&v| v < val);
            into.insert(pos, val);
            if into.len() > self.k {
                into.remove(0);
            }
        }
    }
}

/// L1: do `k` distinct valid packages rate `≥ B`?
pub fn is_bound(inst: &RecInstance, bound: Ext, opts: &SolveOptions) -> Result<bool> {
    let _span = pkgrec_trace::span!("mbp.is_bound");
    let reducer = CountUpTo {
        k: inst.k,
        strictly_above: None,
    };
    let (found, stats) = reduce_valid_packages(inst, Some(bound), opts, &reducer)?;
    if found >= inst.k {
        return Ok(true); // certified yes, even if the budget then ran out
    }
    match stats.interrupted {
        Some(cut) => Err(cut.into()), // "no" would need the full space
        None => Ok(false),
    }
}

/// L2 (negated): do `k` distinct valid packages rate **strictly above**
/// `B`?
fn k_packages_above(inst: &RecInstance, bound: Ext, opts: &SolveOptions) -> Result<bool> {
    let reducer = CountUpTo {
        k: inst.k,
        strictly_above: Some(bound),
    };
    let (found, stats) = reduce_valid_packages(inst, Some(bound), opts, &reducer)?;
    if found >= inst.k {
        return Ok(true);
    }
    match stats.interrupted {
        Some(cut) => Err(cut.into()),
        None => Ok(false),
    }
}

/// Decide MBP: is `B` the maximum bound for
/// `(Q, D, Qc, cost(), val(), C, k)`?
pub fn is_maximum_bound(inst: &RecInstance, bound: Ext, opts: &SolveOptions) -> Result<bool> {
    Ok(is_bound(inst, bound, opts)? && !k_packages_above(inst, bound, opts)?)
}

/// Compute the maximum bound — the rating of the k-th best valid
/// package — or `None` when no top-k selection exists.
///
/// Anytime: when the budget runs out the outcome is non-exact and
/// carries the k-th best rating over the packages seen so far (a lower
/// bound on the true answer), or `None` if fewer than `k` were seen.
pub fn maximum_bound(
    inst: &RecInstance,
    opts: &SolveOptions,
) -> Result<Outcome<Option<Ext>, SearchStats>> {
    let ctx = inst.search_context()?;
    maximum_bound_in(&ctx, opts)
}

/// [`maximum_bound`] on a prebuilt [`SearchContext`] — for callers that
/// amortize plan compilation across solves.
pub fn maximum_bound_in(
    ctx: &SearchContext<'_>,
    opts: &SolveOptions,
) -> Result<Outcome<Option<Ext>, SearchStats>> {
    if let Some(params) = &opts.approx {
        return crate::sketch::maximum_bound(ctx, opts, params);
    }
    let _span = pkgrec_trace::span!("mbp.maximum_bound");
    let k = ctx.instance().k;
    // The k best ratings over distinct packages.
    let (best, stats) = reduce_valid_packages_in(ctx, None, opts, &KLargest { k })?;
    let value = if best.len() < k {
        None
    } else {
        Some(best[0])
    };
    Ok(match stats.interrupted {
        None => Outcome::exact(value, stats),
        Some(cut) => Outcome::partial(value, cut, stats),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::functions::PackageFn;
    use crate::CoreError;
    use pkgrec_data::{tuple, AttrType, Database, Relation, RelationSchema};
    use pkgrec_query::{ConjunctiveQuery, Query};

    fn inst() -> RecInstance {
        let mut db = Database::new();
        let r = RelationSchema::new("r", [("a", AttrType::Int)]).unwrap();
        db.add_relation(
            Relation::from_tuples(r, [tuple![1], tuple![2], tuple![3]]).unwrap(),
        )
        .unwrap();
        RecInstance::new(db, Query::Cq(ConjunctiveQuery::identity("r", 1)))
            .with_budget(2.0)
            .with_val(PackageFn::sum_col(0, true))
    }

    fn maximum_bound_exact(inst: &RecInstance) -> Option<Ext> {
        let out = maximum_bound(inst, &SolveOptions::default()).unwrap();
        assert!(out.exact);
        out.value
    }

    #[test]
    fn maximum_bound_is_kth_best_rating() {
        // Ratings of valid packages: {2,3}=5, {1,3}=4, {1,2}=3, {3}=3,
        // {2}=2, {1}=1.
        assert_eq!(maximum_bound_exact(&inst()), Some(Ext::Finite(5.0)));
        assert_eq!(maximum_bound_exact(&inst().with_k(3)), Some(Ext::Finite(3.0)));
        assert_eq!(maximum_bound_exact(&inst().with_k(6)), Some(Ext::Finite(1.0)));
        assert_eq!(maximum_bound_exact(&inst().with_k(7)), None);
    }

    #[test]
    fn decision_agrees_with_function() {
        for k in 1..=6 {
            let i = inst().with_k(k);
            let mb = maximum_bound_exact(&i).unwrap();
            assert!(is_maximum_bound(&i, mb, &SolveOptions::default()).unwrap());
            // A lower value is a bound but not maximum; a higher one is
            // not a bound at all.
            let lower = Ext::Finite(mb.as_finite().unwrap() - 0.5);
            assert!(is_bound(&i, lower, &SolveOptions::default()).unwrap());
            assert!(!is_maximum_bound(&i, lower, &SolveOptions::default()).unwrap());
            let higher = Ext::Finite(mb.as_finite().unwrap() + 0.5);
            assert!(!is_bound(&i, higher, &SolveOptions::default()).unwrap());
            assert!(!is_maximum_bound(&i, higher, &SolveOptions::default()).unwrap());
        }
    }

    #[test]
    fn duplicate_ratings_count_distinct_packages() {
        // Constant val: every nonempty ≤2-subset rates 1; k=6 bound is 1.
        let i = inst().with_val(PackageFn::constant(Ext::Finite(1.0))).with_k(6);
        assert_eq!(maximum_bound_exact(&i), Some(Ext::Finite(1.0)));
        assert!(is_maximum_bound(&i, Ext::Finite(1.0), &SolveOptions::default()).unwrap());
    }

    #[test]
    fn partial_bound_is_a_lower_bound() {
        // Budget 3 sees ∅, {1}, {1,2}: k=1 best-so-far is 3, below the
        // true maximum bound 5. Pinned to the sequential engine: which
        // prefix a step budget covers is engine-dependent.
        let out = maximum_bound(&inst(), &SolveOptions::limited(3).with_jobs(1)).unwrap();
        assert!(!out.exact);
        let partial = out.value.expect("a valid package was seen");
        let full = maximum_bound_exact(&inst()).unwrap();
        assert!(partial <= full);
    }

    #[test]
    fn strict_decision_errors_when_uncertifiable() {
        // "Is 100 a bound?" — no package rates ≥ 100, so certifying
        // "no" needs the whole space; a 2-step budget cannot.
        let r = is_bound(&inst(), Ext::Finite(100.0), &SolveOptions::limited(2));
        assert!(matches!(r, Err(CoreError::SearchLimitExceeded { .. })));
    }
}
