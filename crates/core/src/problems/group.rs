//! Group recommendations — the extension the paper's conclusion names
//! as an open issue ("group recommendations \[5\], to a group of users
//! instead of a single user", Section 9, citing Amer-Yahia et al.).
//!
//! A *group instance* equips one package instance with a rating
//! function per group member. The group's rating of a package
//! aggregates the members' ratings under a chosen semantics:
//!
//! * [`GroupSemantics::LeastMisery`] — the minimum member rating (no
//!   member is sacrificed);
//! * [`GroupSemantics::Utilitarian`] — the sum of member ratings;
//! * [`GroupSemantics::MostPleasure`] — the maximum member rating.
//!
//! Because each aggregate is itself a PTIME package function, a group
//! instance lowers to an ordinary [`RecInstance`] and inherits every
//! solver — and every complexity bound — from the single-user model.
//! The lowering is exact, not heuristic.

use crate::functions::PackageFn;
use crate::instance::RecInstance;
use crate::package::Package;
use crate::rating::Ext;
use crate::Result;

/// How member ratings combine into a group rating.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GroupSemantics {
    /// `min` over members: maximize the least-happy member.
    LeastMisery,
    /// `Σ` over members: maximize total happiness.
    Utilitarian,
    /// `max` over members: one delighted member suffices.
    MostPleasure,
}

impl GroupSemantics {
    fn fold(self, ratings: impl Iterator<Item = Ext>) -> Ext {
        let mut acc: Option<Ext> = None;
        let mut sum = Ext::Finite(0.0);
        let mut any = false;
        for r in ratings {
            any = true;
            sum = sum + r;
            acc = Some(match (self, acc) {
                (_, None) => r,
                (GroupSemantics::LeastMisery, Some(a)) => a.min(r),
                (GroupSemantics::MostPleasure, Some(a)) => a.max(r),
                (GroupSemantics::Utilitarian, Some(_)) => r, // tracked in `sum`
            });
        }
        if !any {
            return Ext::NegInf; // an empty group wants nothing
        }
        match self {
            GroupSemantics::Utilitarian => sum,
            _ => acc.expect("nonempty group"),
        }
    }
}

/// A group recommendation instance: a base instance (whose own `val` is
/// ignored) plus one rating function per member.
#[derive(Debug, Clone)]
pub struct GroupInstance {
    /// The shared `(Q, D, Qc, cost(), C, k)` part.
    pub base: RecInstance,
    /// One rating function per group member.
    pub members: Vec<PackageFn>,
    /// The aggregation semantics.
    pub semantics: GroupSemantics,
}

impl GroupInstance {
    /// Build a group instance; panics on an empty member list
    /// (construction bug — a group has at least one user).
    pub fn new(
        base: RecInstance,
        members: impl Into<Vec<PackageFn>>,
        semantics: GroupSemantics,
    ) -> GroupInstance {
        let members = members.into();
        assert!(!members.is_empty(), "a group needs at least one member");
        GroupInstance {
            base,
            members,
            semantics,
        }
    }

    /// The group rating of a package.
    pub fn group_val(&self, pkg: &Package) -> Ext {
        self.semantics
            .fold(self.members.iter().map(|m| m.eval(pkg)))
    }

    /// Lower to an ordinary package instance whose `val` is the group
    /// aggregate — every Section 3–5 solver then applies unchanged.
    pub fn lower(&self) -> RecInstance {
        let members = self.members.clone();
        let semantics = self.semantics;
        let desc = format!(
            "{:?} over {} members",
            semantics,
            members.len()
        );
        self.base.clone().with_val(PackageFn::custom(desc, false, move |p| {
            semantics.fold(members.iter().map(|m| m.eval(p)))
        }))
    }

    /// Top-k packages for the group. Anytime, like
    /// [`crate::problems::frp::top_k`].
    pub fn top_k(
        &self,
        opts: &crate::enumerate::SolveOptions,
    ) -> Result<pkgrec_guard::Outcome<Option<Vec<Package>>, crate::enumerate::SearchStats>> {
        crate::problems::frp::top_k(&self.lower(), opts)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::enumerate::SolveOptions;
    use pkgrec_data::{tuple, AttrType, Database, Relation, RelationSchema};
    use pkgrec_query::{ConjunctiveQuery, Query};

    /// Items (id, a_score, b_score): member A likes column 1, member B
    /// likes column 2.
    fn base() -> RecInstance {
        let schema = RelationSchema::new(
            "item",
            [
                ("id", AttrType::Int),
                ("a", AttrType::Int),
                ("b", AttrType::Int),
            ],
        )
        .unwrap();
        let rel = Relation::from_tuples(
            schema,
            [
                tuple![0, 9, 1], // great for A, poor for B
                tuple![1, 1, 9], // the reverse
                tuple![2, 5, 5], // balanced
            ],
        )
        .unwrap();
        let mut db = Database::new();
        db.add_relation(rel).unwrap();
        RecInstance::new(db, Query::Cq(ConjunctiveQuery::identity("item", 3)))
            .with_budget(1.0)
    }

    fn members() -> Vec<PackageFn> {
        vec![PackageFn::sum_col(1, true), PackageFn::sum_col(2, true)]
    }

    #[test]
    fn least_misery_prefers_the_balanced_item() {
        let g = GroupInstance::new(base(), members(), GroupSemantics::LeastMisery);
        let top = g.top_k(&SolveOptions::default()).unwrap().value.unwrap();
        assert_eq!(top[0], Package::new([tuple![2, 5, 5]]));
        assert_eq!(g.group_val(&top[0]), Ext::Finite(5.0));
    }

    #[test]
    fn most_pleasure_prefers_an_extreme_item() {
        let g = GroupInstance::new(base(), members(), GroupSemantics::MostPleasure);
        let top = g.top_k(&SolveOptions::default()).unwrap().value.unwrap();
        assert_eq!(g.group_val(&top[0]), Ext::Finite(9.0));
        assert_ne!(top[0], Package::new([tuple![2, 5, 5]]));
    }

    #[test]
    fn utilitarian_is_indifferent_between_equal_sums() {
        let g = GroupInstance::new(base(), members(), GroupSemantics::Utilitarian);
        let top = g.top_k(&SolveOptions::default()).unwrap().value.unwrap();
        // All three items sum to 10 — ties break canonically (smallest
        // package first), so item 0 wins.
        assert_eq!(g.group_val(&top[0]), Ext::Finite(10.0));
        assert_eq!(top[0], Package::new([tuple![0, 9, 1]]));
    }

    #[test]
    fn single_member_group_reduces_to_the_member() {
        let g = GroupInstance::new(
            base(),
            vec![PackageFn::sum_col(1, true)],
            GroupSemantics::LeastMisery,
        );
        let solo = base().with_val(PackageFn::sum_col(1, true));
        assert_eq!(
            g.top_k(&SolveOptions::default()).unwrap(),
            crate::problems::frp::top_k(&solo, &SolveOptions::default()).unwrap()
        );
    }

    #[test]
    fn group_selections_pass_rpp_on_the_lowered_instance() {
        for semantics in [
            GroupSemantics::LeastMisery,
            GroupSemantics::Utilitarian,
            GroupSemantics::MostPleasure,
        ] {
            let g = GroupInstance::new(base().with_k(2), members(), semantics);
            let sel = g.top_k(&SolveOptions::default()).unwrap().value.unwrap();
            assert!(crate::problems::rpp::is_top_k(
                &g.lower(),
                &sel,
                &SolveOptions::default()
            )
            .unwrap());
        }
    }
}
