//! CPP — *the counting problem (packages)*, Section 5: how many
//! packages are valid for `(Q, D, Qc, cost(), val(), C, B)`?
//!
//! Validity is Section 5's notion: `N ⊆ Q(D)`, `Qc(N, D) = ∅`,
//! `cost(N) ≤ C`, `val(N) ≥ B`, `|N| ≤ p(|D|)`. The count is exact and
//! includes the empty package whenever it qualifies (with the canonical
//! `cost(∅) = ∞` it never does).

use std::ops::ControlFlow;

use crate::enumerate::{for_each_valid_package, SolveOptions};
use crate::instance::RecInstance;
use crate::package::Package;
use crate::rating::Ext;
use crate::Result;

/// Count the valid packages rated at least `B`.
pub fn count_valid(inst: &RecInstance, rating_bound: Ext, opts: SolveOptions) -> Result<u128> {
    let mut count: u128 = 0;
    for_each_valid_package(inst, Some(rating_bound), opts, |_, _| {
        count += 1;
        ControlFlow::Continue(())
    })?;
    Ok(count)
}

/// Enumerate (rather than just count) the valid packages rated at least
/// `B` — useful for tests and for small exploratory workloads.
pub fn collect_valid(
    inst: &RecInstance,
    rating_bound: Ext,
    opts: SolveOptions,
) -> Result<Vec<Package>> {
    let mut out = Vec::new();
    for_each_valid_package(inst, Some(rating_bound), opts, |pkg, _| {
        out.push(pkg.clone());
        ControlFlow::Continue(())
    })?;
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::constraints::Constraint;
    use crate::functions::PackageFn;
    use pkgrec_data::{tuple, AttrType, Database, Relation, RelationSchema};
    use pkgrec_query::{ConjunctiveQuery, Query};

    fn inst() -> RecInstance {
        let mut db = Database::new();
        let r = RelationSchema::new("r", [("a", AttrType::Int)]).unwrap();
        db.add_relation(
            Relation::from_tuples(r, [tuple![1], tuple![2], tuple![3]]).unwrap(),
        )
        .unwrap();
        RecInstance::new(db, Query::Cq(ConjunctiveQuery::identity("r", 1)))
            .with_budget(10.0)
            .with_val(PackageFn::cardinality())
    }

    #[test]
    fn counts_all_nonempty_subsets() {
        // cost = count (∅ excluded); 2^3 − 1 = 7.
        assert_eq!(
            count_valid(&inst(), Ext::NegInf, SolveOptions::default()).unwrap(),
            7
        );
    }

    #[test]
    fn rating_bound_cuts() {
        assert_eq!(
            count_valid(&inst(), Ext::Finite(2.0), SolveOptions::default()).unwrap(),
            4 // 3 pairs + 1 triple
        );
        assert_eq!(
            count_valid(&inst(), Ext::Finite(4.0), SolveOptions::default()).unwrap(),
            0
        );
    }

    #[test]
    fn qc_reduces_count() {
        let i = inst().with_qc(Constraint::ptime("no item 2", |p, _| {
            !p.contains(&tuple![2])
        }));
        // Subsets of {1,3}: 3 nonempty.
        assert_eq!(
            count_valid(&i, Ext::NegInf, SolveOptions::default()).unwrap(),
            3
        );
    }

    #[test]
    fn collect_matches_count() {
        let i = inst();
        let c = count_valid(&i, Ext::Finite(2.0), SolveOptions::default()).unwrap();
        let v = collect_valid(&i, Ext::Finite(2.0), SolveOptions::default()).unwrap();
        assert_eq!(v.len() as u128, c);
    }

    #[test]
    fn size_bound_restricts() {
        use crate::instance::SizeBound;
        let i = inst().with_size_bound(SizeBound::Constant(1));
        assert_eq!(
            count_valid(&i, Ext::NegInf, SolveOptions::default()).unwrap(),
            3
        );
    }
}
