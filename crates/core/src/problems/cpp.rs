//! CPP — *the counting problem (packages)*, Section 5: how many
//! packages are valid for `(Q, D, Qc, cost(), val(), C, B)`?
//!
//! Validity is Section 5's notion: `N ⊆ Q(D)`, `Qc(N, D) = ∅`,
//! `cost(N) ≤ C`, `val(N) ≥ B`, `|N| ≤ p(|D|)`. The count is exact and
//! includes the empty package whenever it qualifies (with the canonical
//! `cost(∅) = ∞` it never does).
//!
//! Both entry points are *anytime*: a budget cut-off yields the count
//! (respectively collection) over the visited prefix — a certified
//! lower bound — flagged non-exact.

use std::ops::ControlFlow;

use pkgrec_guard::Outcome;

use crate::enumerate::{
    reduce_valid_packages, reduce_valid_packages_in, SearchStats, SolveOptions,
    ValidPackageReducer,
};
use crate::instance::{RecInstance, SearchContext};
use crate::package::Package;
use crate::rating::Ext;
use crate::Result;

/// Count every visited valid package.
struct Count;

impl ValidPackageReducer for Count {
    type Acc = u128;

    fn new_acc(&self) -> Self::Acc {
        0
    }

    fn visit(&self, acc: &mut Self::Acc, _pkg: &Package, _val: Ext) -> ControlFlow<()> {
        *acc += 1;
        ControlFlow::Continue(())
    }

    fn merge(&self, into: &mut Self::Acc, later: Self::Acc) {
        *into += later;
    }
}

/// Collect every visited valid package (canonical order is preserved:
/// workers collect per-partition runs, which the coordinator
/// concatenates in partition order).
struct Collect;

impl ValidPackageReducer for Collect {
    type Acc = Vec<Package>;

    fn new_acc(&self) -> Self::Acc {
        Vec::new()
    }

    fn visit(&self, acc: &mut Self::Acc, pkg: &Package, _val: Ext) -> ControlFlow<()> {
        acc.push(pkg.clone());
        ControlFlow::Continue(())
    }

    fn merge(&self, into: &mut Self::Acc, later: Self::Acc) {
        into.extend(later);
    }
}

/// Count the valid packages rated at least `B`. Non-exact outcomes
/// (budget ran out) carry a lower bound on the true count.
pub fn count_valid(
    inst: &RecInstance,
    rating_bound: Ext,
    opts: &SolveOptions,
) -> Result<Outcome<u128, SearchStats>> {
    let ctx = inst.search_context()?;
    count_valid_in(&ctx, rating_bound, opts)
}

/// [`count_valid`] on a prebuilt [`SearchContext`] — for callers that
/// amortize plan compilation across solves.
pub fn count_valid_in(
    ctx: &SearchContext<'_>,
    rating_bound: Ext,
    opts: &SolveOptions,
) -> Result<Outcome<u128, SearchStats>> {
    let _span = pkgrec_trace::span!("cpp.count_valid");
    let (count, stats) = reduce_valid_packages_in(ctx, Some(rating_bound), opts, &Count)?;
    Ok(match stats.interrupted {
        None => Outcome::exact(count, stats),
        Some(cut) => Outcome::partial(count, cut, stats),
    })
}

/// Enumerate (rather than just count) the valid packages rated at least
/// `B` — useful for tests and for small exploratory workloads.
/// Non-exact outcomes carry the packages found before the cut-off.
pub fn collect_valid(
    inst: &RecInstance,
    rating_bound: Ext,
    opts: &SolveOptions,
) -> Result<Outcome<Vec<Package>, SearchStats>> {
    let (out, stats) = reduce_valid_packages(inst, Some(rating_bound), opts, &Collect)?;
    Ok(match stats.interrupted {
        None => Outcome::exact(out, stats),
        Some(cut) => Outcome::partial(out, cut, stats),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::constraints::Constraint;
    use crate::functions::PackageFn;
    use pkgrec_data::{tuple, AttrType, Database, Relation, RelationSchema};
    use pkgrec_query::{ConjunctiveQuery, Query};

    fn inst() -> RecInstance {
        let mut db = Database::new();
        let r = RelationSchema::new("r", [("a", AttrType::Int)]).unwrap();
        db.add_relation(
            Relation::from_tuples(r, [tuple![1], tuple![2], tuple![3]]).unwrap(),
        )
        .unwrap();
        RecInstance::new(db, Query::Cq(ConjunctiveQuery::identity("r", 1)))
            .with_budget(10.0)
            .with_val(PackageFn::cardinality())
    }

    fn count_exact(inst: &RecInstance, bound: Ext) -> u128 {
        let out = count_valid(inst, bound, &SolveOptions::default()).unwrap();
        assert!(out.exact);
        out.value
    }

    #[test]
    fn counts_all_nonempty_subsets() {
        // cost = count (∅ excluded); 2^3 − 1 = 7.
        assert_eq!(count_exact(&inst(), Ext::NegInf), 7);
    }

    #[test]
    fn rating_bound_cuts() {
        assert_eq!(count_exact(&inst(), Ext::Finite(2.0)), 4); // 3 pairs + 1 triple
        assert_eq!(count_exact(&inst(), Ext::Finite(4.0)), 0);
    }

    #[test]
    fn qc_reduces_count() {
        let i = inst().with_qc(Constraint::ptime("no item 2", |p, _| {
            !p.contains(&tuple![2])
        }));
        // Subsets of {1,3}: 3 nonempty.
        assert_eq!(count_exact(&i, Ext::NegInf), 3);
    }

    #[test]
    fn collect_matches_count() {
        let i = inst();
        let c = count_exact(&i, Ext::Finite(2.0));
        let v = collect_valid(&i, Ext::Finite(2.0), &SolveOptions::default())
            .unwrap()
            .value;
        assert_eq!(v.len() as u128, c);
    }

    #[test]
    fn size_bound_restricts() {
        use crate::instance::SizeBound;
        let i = inst().with_size_bound(SizeBound::Constant(1));
        assert_eq!(count_exact(&i, Ext::NegInf), 3);
    }

    #[test]
    fn partial_count_is_a_lower_bound() {
        let out = count_valid(&inst(), Ext::NegInf, &SolveOptions::limited(4)).unwrap();
        assert!(!out.exact);
        assert!(out.interrupted.is_some());
        assert!(out.value < 7);
        assert!(out.value <= out.stats.packages_enumerated as u128);
    }
}
