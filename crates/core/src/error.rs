use std::fmt;

use pkgrec_data::DataError;
use pkgrec_guard::Interrupted;
use pkgrec_query::QueryError;

/// Why a [`CoreError::FunctionColumn`] check rejected a column.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ColumnIssue {
    /// The column index is out of range for the item schema.
    Missing {
        /// Arity of the items the function would be applied to.
        arity: usize,
    },
    /// The column exists but holds a non-numeric attribute type.
    NonNumeric,
}

/// Errors raised by the recommendation solvers.
#[derive(Debug, Clone)]
pub enum CoreError {
    /// A query-layer error.
    Query(QueryError),
    /// A data-layer error.
    Data(DataError),
    /// An ill-formed instance or candidate (e.g. arity mismatch between
    /// a package item and the answer schema).
    Invalid(String),
    /// The exact search exceeded its caller-supplied resource budget —
    /// step limit, wall-clock deadline, or cancellation — before it
    /// could certify an answer. (These problems are Σp₂-hard and worse;
    /// callers bound the search when instances may be large.) The
    /// payload records which resource ran out and how much work was
    /// spent; anytime solvers report the same event as a non-exact
    /// [`pkgrec_guard::Outcome`] instead of this error.
    SearchLimitExceeded {
        /// The budget violation that cut the search off.
        interrupted: Interrupted,
    },
    /// A search worker panicked while walking its unit of the package
    /// space. The panic is caught at the unit boundary
    /// (`std::panic::catch_unwind`) so one bad worker — or an injected
    /// `PKGREC_CHAOS` fault — surfaces as this typed error instead of
    /// aborting the whole process. The accumulated fold up to the
    /// panicking unit is discarded: a partially-applied visitor cannot
    /// be certified.
    WorkerPanic {
        /// Index of the search unit that panicked, when the panic
        /// happened inside a unit walk (`None`: outside any unit, e.g.
        /// while a worker was reporting its results).
        unit: Option<usize>,
        /// The panic payload, when it was a string.
        message: String,
    },
    /// A `cost`/`val` function reads a column the instance's items do
    /// not provide as a number. Detected once at search start, instead
    /// of silently scoring the column as 0 on every package.
    FunctionColumn {
        /// Which function declared the column: `"cost"` or `"val"`.
        role: &'static str,
        /// The function's description.
        function: String,
        /// The offending column index.
        column: usize,
        /// What is wrong with the column.
        issue: ColumnIssue,
    },
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreError::Query(e) => write!(f, "{e}"),
            CoreError::Data(e) => write!(f, "{e}"),
            CoreError::Invalid(m) => write!(f, "invalid instance: {m}"),
            CoreError::SearchLimitExceeded { interrupted } => {
                write!(f, "exact search stopped early: {interrupted}")
            }
            CoreError::WorkerPanic { unit, message } => match unit {
                Some(u) => write!(f, "search worker panicked in unit {u}: {message}"),
                None => write!(f, "search worker panicked: {message}"),
            },
            CoreError::FunctionColumn {
                role,
                function,
                column,
                issue,
            } => {
                write!(f, "{role} function `{function}` reads column {column}, ")?;
                match issue {
                    ColumnIssue::Missing { arity } => {
                        write!(f, "but the items have arity {arity}")
                    }
                    ColumnIssue::NonNumeric => write!(f, "which is not numeric"),
                }
            }
        }
    }
}

impl std::error::Error for CoreError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CoreError::Query(e) => Some(e),
            CoreError::Data(e) => Some(e),
            _ => None,
        }
    }
}

impl From<QueryError> for CoreError {
    fn from(e: QueryError) -> Self {
        match e {
            // A budgeted query evaluation that ran out of resources is
            // the same event as the package search running out: surface
            // one unified error so callers handle a single variant.
            QueryError::Interrupted(interrupted) => CoreError::SearchLimitExceeded { interrupted },
            other => CoreError::Query(other),
        }
    }
}

impl From<Interrupted> for CoreError {
    fn from(interrupted: Interrupted) -> Self {
        CoreError::SearchLimitExceeded { interrupted }
    }
}

impl From<DataError> for CoreError {
    fn from(e: DataError) -> Self {
        CoreError::Data(e)
    }
}
