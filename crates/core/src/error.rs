use std::fmt;

use pkgrec_data::DataError;
use pkgrec_query::QueryError;

/// Errors raised by the recommendation solvers.
#[derive(Debug, Clone)]
pub enum CoreError {
    /// A query-layer error.
    Query(QueryError),
    /// A data-layer error.
    Data(DataError),
    /// An ill-formed instance or candidate (e.g. arity mismatch between
    /// a package item and the answer schema).
    Invalid(String),
    /// The exact search exceeded the caller-supplied node budget.
    /// (These problems are Σp₂-hard and worse; callers bound the search
    /// when instances may be large.)
    SearchLimitExceeded {
        /// The configured limit.
        limit: u64,
    },
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreError::Query(e) => write!(f, "{e}"),
            CoreError::Data(e) => write!(f, "{e}"),
            CoreError::Invalid(m) => write!(f, "invalid instance: {m}"),
            CoreError::SearchLimitExceeded { limit } => {
                write!(f, "exact search exceeded the node limit of {limit}")
            }
        }
    }
}

impl std::error::Error for CoreError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CoreError::Query(e) => Some(e),
            CoreError::Data(e) => Some(e),
            _ => None,
        }
    }
}

impl From<QueryError> for CoreError {
    fn from(e: QueryError) -> Self {
        CoreError::Query(e)
    }
}

impl From<DataError> for CoreError {
    fn from(e: DataError) -> Self {
        CoreError::Data(e)
    }
}
