//! # pkgrec-core — the package recommendation model and exact solvers
//!
//! This crate implements the model of
//! *Deng, Fan & Geerts, "On the Complexity of Package Recommendation
//! Problems"* (PODS 2012 / SICOMP 2013), Sections 2–6:
//!
//! * [`Package`] — a set of items drawn from a query answer `Q(D)`;
//! * [`PackageFn`] — PTIME `cost()` / `val()` functions, with the
//!   paper's conventions (`cost(∅) = ∞`) via the extended value type
//!   [`Ext`];
//! * [`Constraint`] — compatibility constraints `Qc(N, D) = ∅` (query-
//!   based, PTIME-closure-based per Corollary 6.3, or absent);
//! * [`RecInstance`] / [`SizeBound`] — the problem input
//!   `(Q, D, Qc, cost(), val(), C, k)` with polynomial or constant
//!   package-size bounds;
//! * [`problems`] — exact solvers for RPP (decision), FRP (function),
//!   MBP (maximum bound), CPP (counting), the compatibility problem,
//!   and item recommendations;
//! * [`sketch`] — the SketchRefine approximate engine for item pools
//!   the exact search cannot touch, opted into per solve via
//!   [`SolveOptions::with_approx`]; its outcomes can never claim
//!   `exact: true`.
//!
//! The solvers implement the *upper-bound algorithms* of the paper
//! (validity check + dominating-package search for RPP; the
//! `EXISTPACK≥`-oracle loop for FRP; the `L1 ∩ L2` split for MBP), with
//! exhaustive package search standing in for the oracles. They are
//! exponential-time by necessity — the problems are Σp₂-hard and worse —
//! but exact, deterministic, and prune soundly using declared cost
//! monotonicity. When the size bound is a constant `Bp`, the same code
//! *is* the PTIME algorithm of Corollary 6.1.

mod constraints;
mod enumerate;
mod error;
mod functions;
mod instance;
mod package;
pub mod problems;
mod progress;
mod rating;
pub mod sketch;

pub use constraints::{Constraint, ANSWER_RELATION};
pub use enumerate::{
    for_each_package, for_each_valid_package, reduce_valid_packages,
    reduce_valid_packages_in, Completion, SearchStats, SolveOptions, UnitSkew,
    ValidPackageReducer, WorkerStat,
};
pub use error::{ColumnIssue, CoreError};

// Re-export the budget vocabulary so downstream crates can configure
// and inspect bounded searches without a direct pkgrec-guard
// dependency.
pub use pkgrec_guard::{Budget, CancelFlag, Interrupted, Meter, Method, Outcome, Resource};
pub use functions::PackageFn;
pub use instance::{PreparedInstance, RecInstance, SearchContext, SizeBound};
pub use sketch::SketchParams;
pub use package::Package;
pub use progress::Progress;
pub use problems::group::{GroupInstance, GroupSemantics};
pub use problems::items::{ItemInstance, ItemUtility};
pub use rating::Ext;

/// Crate-wide result alias.
pub type Result<T> = std::result::Result<T, CoreError>;
