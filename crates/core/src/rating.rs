use std::fmt;
use std::ops::Add;

/// An extended rating/cost value: a real number, `+∞`, or `−∞`.
///
/// The paper's conventions require genuine infinities: `cost(∅) = ∞`
/// excludes the empty package from recommendation under any finite
/// budget (Section 2), and several reductions set `val(N) = −∞` to bar
/// packages (Theorem 7.2). `Ext` is totally ordered (via IEEE
/// `total_cmp` on the finite part) and `Eq`/`Ord` so it can key maps and
/// drive deterministic top-k selection.
#[derive(Debug, Clone, Copy)]
pub enum Ext {
    /// Negative infinity.
    NegInf,
    /// A finite value.
    Finite(f64),
    /// Positive infinity.
    PosInf,
}

impl Ext {
    /// Shorthand for a finite value.
    pub fn finite(v: f64) -> Ext {
        debug_assert!(v.is_finite(), "use Ext::PosInf / Ext::NegInf explicitly");
        Ext::Finite(v)
    }

    /// The finite content, if any.
    pub fn as_finite(self) -> Option<f64> {
        match self {
            Ext::Finite(v) => Some(v),
            _ => None,
        }
    }

    /// Whether the value is finite.
    pub fn is_finite(self) -> bool {
        matches!(self, Ext::Finite(_))
    }

    fn rank(self) -> i8 {
        match self {
            Ext::NegInf => -1,
            Ext::Finite(_) => 0,
            Ext::PosInf => 1,
        }
    }
}

impl PartialEq for Ext {
    fn eq(&self, other: &Self) -> bool {
        self.cmp(other) == std::cmp::Ordering::Equal
    }
}

impl Eq for Ext {}

impl PartialOrd for Ext {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Ext {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        match (self, other) {
            (Ext::Finite(a), Ext::Finite(b)) => a.total_cmp(b),
            _ => self.rank().cmp(&other.rank()),
        }
    }
}

impl Add for Ext {
    type Output = Ext;
    /// Extended addition; `+∞ + −∞` is undefined and panics (it never
    /// arises from the paper's aggregate functions).
    fn add(self, other: Ext) -> Ext {
        match (self, other) {
            (Ext::Finite(a), Ext::Finite(b)) => Ext::Finite(a + b),
            (Ext::PosInf, Ext::NegInf) | (Ext::NegInf, Ext::PosInf) => {
                panic!("indeterminate sum +∞ + −∞")
            }
            (Ext::PosInf, _) | (_, Ext::PosInf) => Ext::PosInf,
            (Ext::NegInf, _) | (_, Ext::NegInf) => Ext::NegInf,
        }
    }
}

impl From<f64> for Ext {
    fn from(v: f64) -> Ext {
        Ext::Finite(v)
    }
}

impl From<i64> for Ext {
    fn from(v: i64) -> Ext {
        Ext::Finite(v as f64)
    }
}

impl fmt::Display for Ext {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Ext::NegInf => write!(f, "-inf"),
            Ext::Finite(v) => write!(f, "{v}"),
            Ext::PosInf => write!(f, "+inf"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ordering() {
        assert!(Ext::NegInf < Ext::Finite(f64::MIN));
        assert!(Ext::Finite(f64::MAX) < Ext::PosInf);
        assert!(Ext::Finite(1.0) < Ext::Finite(2.0));
        assert_eq!(Ext::Finite(1.0), Ext::Finite(1.0));
        assert_eq!(Ext::PosInf, Ext::PosInf);
    }

    #[test]
    fn negative_zero_is_below_positive_zero_but_consistent() {
        // total_cmp: -0.0 < 0.0; what matters is consistency of Eq/Ord.
        let a = Ext::Finite(-0.0);
        let b = Ext::Finite(0.0);
        assert!(a < b);
        assert_ne!(a, b);
    }

    #[test]
    fn addition() {
        assert_eq!(Ext::Finite(1.0) + Ext::Finite(2.0), Ext::Finite(3.0));
        assert_eq!(Ext::PosInf + Ext::Finite(5.0), Ext::PosInf);
        assert_eq!(Ext::NegInf + Ext::Finite(5.0), Ext::NegInf);
    }

    #[test]
    #[should_panic(expected = "indeterminate")]
    fn indeterminate_sum_panics() {
        let _ = Ext::PosInf + Ext::NegInf;
    }

    #[test]
    fn accessors() {
        assert_eq!(Ext::finite(2.0).as_finite(), Some(2.0));
        assert_eq!(Ext::PosInf.as_finite(), None);
        assert!(Ext::finite(0.0).is_finite());
        assert!(!Ext::NegInf.is_finite());
    }
}
