//! SketchRefine — the approximate engine for large item pools.
//!
//! The exact solvers enumerate the package space `N ⊆ Q(D)` and are
//! exponential by necessity (the problems are Σp₂-hard and worse, see
//! Sections 4–6 of the paper). That is fine for the paper-scale
//! instances the rest of this crate targets, but useless at a million
//! items. This module trades the exactness certificate for scale with
//! the SketchRefine strategy of Brucato et al. (*Package queries*,
//! VLDB 2016 / VLDB J. 2018):
//!
//! 1. **Partition** (offline): cluster `Q(D)` hierarchically over the
//!    numeric columns the `cost()`/`val()` functions declare
//!    ([`pkgrec_data::partition`]), electing one real member tuple per
//!    partition as its *representative*.
//! 2. **Sketch**: run the *exact* solver over the tiny pool of
//!    top-level representatives, reusing the compiled-plan machinery
//!    unchanged — a representative is a real tuple of `Q(D)`, so every
//!    validity probe keeps its meaning.
//! 3. **Refine**: repeatedly pick a chosen representative, swap it for
//!    its partition's contents (children representatives, or the actual
//!    items at a leaf), and re-solve over `selection ∪ expansion`. Each
//!    refinement strictly descends the partition tree, so the loop
//!    terminates.
//!
//! The contract is explicit: results are labeled
//! [`Method::Sketch`](pkgrec_guard::Method) and can **never** claim
//! `exact: true` ([`Outcome::approximate`] hard-codes that). What *is*
//! guaranteed is soundness — every returned package is re-checked
//! against the full compiled plans ([`SearchContext::is_valid_package`])
//! before it leaves this module, so constraints, budget, and
//! `Q(D)`-membership genuinely hold; only optimality is approximate.
//!
//! Observability mirrors the exact engines: a `sketch.top_k` /
//! `sketch.maximum_bound` span wraps the run, `sketch.partition_builds`
//! / `sketch.sub_solves` / `sketch.refines` count the moving parts, and
//! the inner exact sub-solves emit their usual `enumerate.*` counters
//! and flight events. Refinement rounds additionally split by outcome
//! (`sketch.refines.improved` / `sketch.refines.no_gain`), skipped
//! partitions count under `sketch.partitions_pruned`, and — when the
//! profile timeline is enabled — the sketch solve, each refine
//! re-solve, and the final soundness gate stamp `sketch` / `refine` /
//! `verify` phases so a trace viewer shows where the wall time went.
//!
//! **Pruning.** Refinement skips a partition outright when the
//! per-node column aggregates the offline index carries
//! ([`PartitionNode::mins`]/[`PartitionNode::sums`]) prove expanding
//! it cannot change the answer: its cheapest item already busts the
//! budget (so no item under it fits in *any* valid package), or — once
//! a full selection is held — even claiming its entire value mass
//! cannot beat the incumbent's weakest package. Both bounds are gated
//! on [`PackageFn::is_column_additive`] plus declared monotonicity;
//! opaque functions disable pruning rather than risk soundness.

use std::collections::{BTreeMap, BTreeSet};
use std::sync::Arc;
use std::time::Instant;

use pkgrec_data::{PartitionIndex, PartitionNode, PartitionParams, Tuple};
use pkgrec_guard::{Budget, Interrupted, Outcome, Resource};

use crate::enumerate::{SearchStats, SolveOptions};
use crate::instance::SearchContext;
use crate::package::Package;
use crate::problems::frp;
use crate::rating::Ext;
use crate::Result;

/// Tuning knobs for the SketchRefine engine. The defaults keep every
/// exact sub-solve over a pool of a few dozen tuples, which is what
/// makes million-item instances tractable: solve cost is governed by
/// pool size, never by `|Q(D)|`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SketchParams {
    /// Cluster fanout of the partition tree (children per internal
    /// node).
    pub fanout: usize,
    /// Maximum items per leaf partition.
    pub leaf_cap: usize,
    /// Seed for the deterministic clustering.
    pub seed: u64,
    /// Maximum number of refinement rounds before the engine settles
    /// for the best selection found so far.
    pub refine_cap: usize,
    /// Step allowance per exact sub-solve. A sub-solve that exhausts it
    /// contributes its anytime best and the refinement continues; this
    /// bounds the damage when a sub-pool is adversarially dense.
    pub sub_steps: u64,
    /// Skip partitions whose aggregate bounds prove expanding them
    /// cannot change the answer (see the module docs). On by default;
    /// the off switch exists for A/B benchmarks and the equivalence
    /// property test, not for correctness — pruning never changes the
    /// returned package set.
    pub prune: bool,
}

impl Default for SketchParams {
    fn default() -> SketchParams {
        SketchParams {
            fanout: 16,
            leaf_cap: 16,
            seed: 0x5EED_C0DE,
            refine_cap: 64,
            sub_steps: 200_000,
            prune: true,
        }
    }
}

impl SketchParams {
    /// Largest pool the engine solves directly (one exact sub-solve,
    /// still labeled approximate) instead of partitioning.
    fn direct_threshold(&self) -> usize {
        self.fanout.max(self.leaf_cap)
    }
}

/// The caller's budget with its relative `timeout` resolved to an
/// absolute deadline **once**, so every sub-solve shares the same
/// wall-clock cut-off instead of each restarting the clock.
fn shared_budget(budget: &Budget) -> Budget {
    let mut shared = budget.clone();
    if let Some(timeout) = shared.timeout.take() {
        let from_now = Instant::now() + timeout;
        shared.deadline = Some(match shared.deadline {
            Some(existing) => existing.min(from_now),
            None => from_now,
        });
    }
    shared
}

/// Selection quality, compared lexicographically: ratings in selection
/// order (best first), so a higher leading rating dominates and, on
/// equal prefixes, the longer (more complete) selection wins.
fn quality(ctx: &SearchContext<'_>, sel: &[Package]) -> Vec<Ext> {
    sel.iter().map(|p| ctx.instance().val.eval(p)).collect()
}

/// The union of numeric columns the cost and value functions declare —
/// the feature space the partitioner clusters over. Empty (positional
/// chunking) when both functions are opaque closures.
fn partition_columns(ctx: &SearchContext<'_>) -> Vec<usize> {
    let inst = ctx.instance();
    let mut cols: Vec<usize> = inst
        .cost
        .numeric_columns()
        .iter()
        .chain(inst.val.numeric_columns())
        .copied()
        .collect();
    cols.sort_unstable();
    cols.dedup();
    cols
}

/// Sum of `vals` (a per-node aggregate vector parallel to the sorted
/// partition-column union `pcols`) over the positions of a function's
/// declared columns. `None` when some declared column was not
/// clustered on — bounds are then unavailable and the caller must not
/// prune. (Cannot happen for an index built via [`partition_columns`],
/// which is exactly this union; the `None` arm is defense, not a
/// reachable path.)
fn mapped_sum(pcols: &[usize], fcols: &[usize], vals: &[f64]) -> Option<f64> {
    let mut acc = 0.0;
    for &c in fcols {
        acc += vals[pcols.binary_search(&c).ok()?];
    }
    Some(acc)
}

/// Whether expanding `node` provably cannot change the run's answer,
/// so refinement may skip it without spending a round. Two bounds,
/// both requiring the declared additive-aggregate shape
/// ([`PackageFn::is_column_additive`]) plus monotonicity — opaque
/// functions never prune:
///
/// * **Cost infeasibility.** The cheapest conceivable item under the
///   node costs `Σ_c min_c` (per-column minima, summed over the cost's
///   columns). If even that exceeds the budget then — cost being
///   additive over nonnegative columns — every package containing
///   *any* item under the node is over budget, so the node's items can
///   never appear in a valid package.
/// * **Value ceiling.** Once a full `k`-selection is held, a refine
///   re-solve over `selection ∪ expansion` is adopted only when it
///   *strictly* beats the incumbent (see the adoption rule in
///   [`top_k`]). With an additive, nonnegative `val`, no package drawn
///   from that pool can rate above `val(selection tuples) + Σ_c sum_c`
///   (the node's entire value mass, which over-counts any actual
///   expansion). If that ceiling does not exceed the incumbent's
///   weakest rating, no component of the lexicographic quality can
///   strictly improve, so adoption is impossible.
fn prunable(
    ctx: &SearchContext<'_>,
    pcols: &[usize],
    node: &PartitionNode,
    best: Option<&Vec<Package>>,
    k: usize,
) -> bool {
    let inst = ctx.instance();
    if inst.cost.is_column_additive() && inst.cost.is_monotone_nonempty() {
        if let Some(lb) = mapped_sum(pcols, inst.cost.numeric_columns(), &node.mins) {
            if Ext::Finite(lb) > inst.budget {
                return true;
            }
        }
    }
    if let Some(sel) = best {
        if sel.len() >= k
            && inst.val.is_column_additive()
            && inst.val.is_monotone_nonempty()
        {
            if let Some(mass) = mapped_sum(pcols, inst.val.numeric_columns(), &node.sums) {
                // Per-tuple value under an additive val: the sum of its
                // declared columns (missing/non-numeric ↦ 0, the same
                // convention the aggregates use). Tuples shared between
                // packages count once per appearance, which only
                // inflates the ceiling — conservative, never unsound.
                let retained: f64 = sel
                    .iter()
                    .flat_map(Package::iter)
                    .flat_map(|t| {
                        inst.val.numeric_columns().iter().map(move |&c| {
                            t.get(c).and_then(|v| v.as_numeric()).unwrap_or(0) as f64
                        })
                    })
                    .sum();
                let weakest = quality(ctx, sel)
                    .into_iter()
                    .min()
                    .unwrap_or(Ext::NegInf);
                if Ext::Finite(retained + mass) <= weakest {
                    return true;
                }
            }
        }
    }
    false
}

/// Mutable state of one sketch/refine run.
struct Run<'a, 'b> {
    ctx: &'b SearchContext<'a>,
    opts: &'b SolveOptions,
    params: &'b SketchParams,
    shared: Budget,
    /// Aggregated stats across every exact sub-solve.
    stats: SearchStats,
    /// Set when the *caller's* budget (not a per-sub-solve allowance)
    /// ran out; ends the refinement loop.
    cut: Option<Interrupted>,
}

impl<'a> Run<'a, '_> {
    /// One exact sub-solve over `pool` (already in canonical order —
    /// `BTreeSet<Tuple>` iterates in `Tuple`'s total order, which is
    /// the canonical item order the engines require). `refining` only
    /// labels the timeline phase: the first solve is the sketch, every
    /// later one a refine re-solve.
    fn solve_pool(
        &mut self,
        pool: &BTreeSet<Tuple>,
        refining: bool,
    ) -> Result<Outcome<Option<Vec<Package>>, SearchStats>> {
        pkgrec_trace::counter!("sketch.sub_solves");
        let _phase =
            pkgrec_trace::timeline::phase(if refining { "refine" } else { "sketch" });
        let items: Arc<[Tuple]> = pool.iter().cloned().collect();
        let sub_ctx = self.ctx.with_items(items);
        // Per-sub-solve step allowance: the engine knob, shrunk to
        // whatever remains of the caller's global step budget.
        let global_left = self
            .opts
            .budget
            .steps
            .map(|limit| limit.saturating_sub(self.stats.packages_enumerated));
        let mut budget = self.shared.clone();
        budget.steps = Some(match global_left {
            Some(left) => self.params.sub_steps.min(left),
            None => self.params.sub_steps,
        });
        let sub_opts = SolveOptions {
            budget,
            jobs: self.opts.jobs,
            progress: None,
            approx: None, // the sub-solves are the exact engine
        };
        let out = frp::top_k_in(&sub_ctx, &sub_opts)?;
        self.stats.packages_enumerated += out.stats.packages_enumerated;
        self.stats.valid_packages += out.stats.valid_packages;
        // A deadline or cancellation applies to the whole run; a spent
        // step allowance is either the local knob (keep refining) or
        // the caller's global limit (checked at the loop head).
        if let Some(cut) = out.interrupted {
            if !matches!(cut.resource, Resource::Steps { .. }) {
                self.cut = Some(cut);
            }
        }
        Ok(out)
    }

    /// Whether the caller's global step budget is spent.
    fn global_steps_spent(&mut self) -> bool {
        match self.opts.budget.steps {
            Some(limit) if self.stats.packages_enumerated >= limit => {
                self.cut = Some(Interrupted::new(
                    Resource::Steps { limit },
                    self.stats.packages_enumerated,
                ));
                true
            }
            _ => false,
        }
    }
}

/// The node the next refinement should expand, as `(rep tuple, node)`:
/// the first still-mapped tuple of the current selection in selection
/// order, or — when the selection is incomplete and none of its tuples
/// is mapped — the largest mapped node (more real items behind it),
/// tie-broken by its representative's canonical order. `None` means the
/// run is done: a full selection entirely over refined tuples, or
/// nothing left to expand.
fn refine_target(
    best: Option<&Vec<Package>>,
    mapping: &BTreeMap<Tuple, usize>,
    index: &PartitionIndex,
    k: usize,
) -> Option<(Tuple, usize)> {
    if let Some(sel) = best {
        for pkg in sel {
            for t in pkg.iter() {
                if let Some(&node) = mapping.get(t) {
                    return Some((t.clone(), node));
                }
            }
        }
        if sel.len() >= k {
            return None; // full selection, fully refined
        }
    }
    // No (or incomplete) selection: expose more real items, biggest
    // partition first.
    mapping
        .iter()
        .max_by(|(ta, &na), (tb, &nb)| {
            index
                .node(na)
                .size
                .cmp(&index.node(nb).size)
                .then_with(|| tb.cmp(ta)) // tie: canonically smaller tuple
        })
        .map(|(t, &n)| (t.clone(), n))
}

/// Expand `node` in `pool`/`mapping`: children representatives for an
/// internal node (each becoming mapped), the actual items for a leaf
/// (unmapped — fully refined). The expanded node's own representative
/// tuple is removed from the mapping first; for an internal node it
/// reappears mapped to the child it represents (the partitioner
/// guarantees an internal representative *is* one child's
/// representative), which is the strict descent that makes refinement
/// terminate.
fn expand(
    pool: &mut BTreeSet<Tuple>,
    mapping: &mut BTreeMap<Tuple, usize>,
    index: &PartitionIndex,
    items: &[Tuple],
    rep: &Tuple,
    node: usize,
) {
    mapping.remove(rep);
    let n = index.node(node);
    if n.is_leaf() {
        for &i in &n.items {
            pool.insert(items[i].clone());
        }
    } else {
        for &child in &n.children {
            let child_rep = items[index.node(child).rep].clone();
            pool.insert(child_rep.clone());
            mapping.insert(child_rep, child);
        }
    }
}

/// FRP top-k with the SketchRefine engine. Same shape as
/// [`frp::top_k_in`], but the outcome is always approximate
/// ([`Outcome::approximate`]): `Some` of up to `k` packages — each
/// re-verified valid against the full instance — or `None` when no
/// valid package was found. Nothing is certified about optimality or
/// nonexistence.
pub fn top_k(
    ctx: &SearchContext<'_>,
    opts: &SolveOptions,
    params: &SketchParams,
) -> Result<Outcome<Option<Vec<Package>>, SearchStats>> {
    let _span = pkgrec_trace::span!("sketch.top_k");
    let items = ctx.items();
    let k = ctx.instance().k;
    let mut run = Run {
        ctx,
        opts,
        params,
        shared: shared_budget(&opts.budget),
        stats: SearchStats::default(),
        cut: None,
    };

    let pcols = partition_columns(ctx);
    let mut pool: BTreeSet<Tuple> = BTreeSet::new();
    let mut mapping: BTreeMap<Tuple, usize> = BTreeMap::new();
    let index = if items.len() <= params.direct_threshold() {
        // Small pool: a single exact sub-solve already covers it; no
        // partition tree to refine.
        pool.extend(items.iter().cloned());
        None
    } else {
        pkgrec_trace::counter!("sketch.partition_builds");
        let pparams = PartitionParams {
            fanout: params.fanout,
            leaf_cap: params.leaf_cap,
            seed: params.seed,
            columns: pcols.clone(),
        };
        let built = PartitionIndex::build(items, &pparams);
        let root = built.root();
        if built.node(root).is_leaf() {
            for &i in &built.node(root).items {
                pool.insert(items[i].clone());
            }
        } else {
            for &child in built.node(root).children.iter() {
                let rep = items[built.node(child).rep].clone();
                pool.insert(rep.clone());
                mapping.insert(rep, child);
            }
        }
        Some(built)
    };

    let mut best: Option<Vec<Package>> = None;
    let mut refines = 0usize;
    loop {
        if run.global_steps_spent() {
            break;
        }
        let refining = refines > 0;
        let out = run.solve_pool(&pool, refining)?;
        if let Some(sel) = out.value {
            // Keep the *strictly* better of old and new. The new pool
            // contains the old selection, so an exhaustive sub-solve
            // only improves — but an interrupted one may regress, and
            // ties must keep the incumbent: the value-ceiling prune
            // assumes a tie-quality re-solve is never adopted, which
            // is what makes pruning invisible in the returned set.
            let adopt = match &best {
                None => true,
                Some(old) => quality(ctx, &sel) > quality(ctx, old),
            };
            if refining {
                if adopt {
                    pkgrec_trace::counter!("sketch.refines.improved");
                } else {
                    pkgrec_trace::counter!("sketch.refines.no_gain");
                }
            }
            if adopt {
                best = Some(sel);
            }
        } else if refining {
            pkgrec_trace::counter!("sketch.refines.no_gain");
        }
        if run.cut.is_some() {
            break;
        }
        let Some(ref idx) = index else { break };
        // Skip (and keep skipping) targets whose aggregate bounds
        // prove expansion pointless — each costs a mapping removal,
        // never a refinement round or a sub-solve.
        let mut target = refine_target(best.as_ref(), &mapping, idx, k);
        while let Some((rep, node)) = &target {
            if !(params.prune && prunable(ctx, &pcols, idx.node(*node), best.as_ref(), k)) {
                break;
            }
            pkgrec_trace::counter!("sketch.partitions_pruned");
            mapping.remove(rep);
            target = refine_target(best.as_ref(), &mapping, idx, k);
        }
        let Some((rep, node)) = target else { break };
        if refines >= params.refine_cap {
            break;
        }
        refines += 1;
        pkgrec_trace::counter!("sketch.refines");
        if let Some(sel) = &best {
            // Commit to the current selection: the next pool is its
            // tuples plus the chosen partition's contents.
            pool = sel.iter().flat_map(|p| p.iter().cloned()).collect();
        }
        expand(&mut pool, &mut mapping, idx, items, &rep, node);
    }

    // Soundness gate: nothing leaves the approximate engine without
    // passing the same compiled-plan validity probes the exact engine
    // uses. (The sub-solves only ever saw genuine `Q(D)` tuples, so
    // this should never filter — it is the contract, not a patch.)
    let _verify = pkgrec_trace::timeline::phase("verify");
    let mut verified: Vec<Package> = Vec::new();
    if let Some(sel) = best {
        for pkg in sel {
            if ctx.is_valid_package(&pkg, None)? {
                verified.push(pkg);
            }
        }
    }
    verified.truncate(k);
    let value = if verified.is_empty() {
        None
    } else {
        Some(verified)
    };
    run.stats.interrupted = run.cut;
    Ok(match run.cut {
        None => Outcome::approximate(value, run.stats),
        Some(cut) => Outcome::approximate_interrupted(value, cut, run.stats),
    })
}

/// MBP maximum bound with the SketchRefine engine: the rating of the
/// k-th package of an approximate top-k selection — a *lower bound* on
/// the true maximum bound (every selected package is verified valid, so
/// its rating is achieved by k distinct valid packages) — or `None`
/// when fewer than `k` packages were found. Always approximate.
pub fn maximum_bound(
    ctx: &SearchContext<'_>,
    opts: &SolveOptions,
    params: &SketchParams,
) -> Result<Outcome<Option<Ext>, SearchStats>> {
    let _span = pkgrec_trace::span!("sketch.maximum_bound");
    let k = ctx.instance().k;
    let out = top_k(ctx, opts, params)?;
    Ok(out.map(|sel| {
        sel.and_then(|sel| {
            if sel.len() == k {
                Some(ctx.instance().val.eval(&sel[k - 1]))
            } else {
                None
            }
        })
    }))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::functions::PackageFn;
    use crate::instance::RecInstance;
    use crate::problems::mbp;
    use pkgrec_data::{tuple, AttrType, Database, Relation, RelationSchema};
    use pkgrec_guard::Method;
    use pkgrec_query::{ConjunctiveQuery, Query};

    /// `n` items with value `i` in column 0, budget `budget`, val =
    /// sum of column 0.
    fn inst(n: i64, budget: f64) -> RecInstance {
        let mut db = Database::new();
        let r = RelationSchema::new("r", [("a", AttrType::Int)]).unwrap();
        db.add_relation(
            Relation::from_tuples(r, (1..=n).map(|i| tuple![i])).unwrap(),
        )
        .unwrap();
        RecInstance::new(db, Query::Cq(ConjunctiveQuery::identity("r", 1)))
            .with_budget(budget)
            .with_val(PackageFn::sum_col(0, true))
    }

    fn approx_opts() -> SolveOptions {
        SolveOptions::default().with_approx(SketchParams {
            fanout: 4,
            leaf_cap: 4,
            // Tight sub-solve caps keep these debug-profile tests
            // fast; the anytime sub-solves still fill every selection.
            sub_steps: 5_000,
            refine_cap: 16,
            ..SketchParams::default()
        })
    }

    #[test]
    fn sketch_results_are_valid_and_labeled_approximate() {
        let i = inst(40, 30.0).with_k(3);
        let out = frp::top_k(&i, &approx_opts()).unwrap();
        assert!(!out.exact, "the approximate engine must never claim exactness");
        assert_eq!(out.method, Method::Sketch);
        assert!(out.interrupted.is_none());
        let sel = out.value.expect("a feasible instance yields a selection");
        assert_eq!(sel.len(), 3);
        for pkg in &sel {
            assert!(i.is_valid_package(pkg, None).unwrap());
        }
    }

    #[test]
    fn sketch_matches_exact_on_an_easy_instance() {
        // Budget 9 with items 1..=20: the optimum spends the whole
        // budget (e.g. {9} or {4,5} rate 9). The sketch engine must
        // find *a* rating-9 package even if not the same one.
        let i = inst(20, 9.0);
        let exact = frp::top_k(&i, &SolveOptions::default()).unwrap();
        let approx = frp::top_k(&i, &approx_opts()).unwrap();
        let exact_val = i.val.eval(&exact.value.unwrap()[0]);
        let approx_val = i.val.eval(&approx.value.unwrap()[0]);
        assert_eq!(exact_val, approx_val);
    }

    #[test]
    fn small_pools_take_the_direct_path_and_stay_approximate() {
        // 3 items ≤ direct threshold: one exact sub-solve, no
        // partition build — but the label still says sketch.
        let _scope = pkgrec_trace::scoped();
        pkgrec_trace::reset();
        let i = inst(3, 5.0);
        let out = frp::top_k(&i, &approx_opts()).unwrap();
        assert!(!out.exact);
        assert_eq!(out.method, Method::Sketch);
        let report = pkgrec_trace::take();
        assert_eq!(report.counters.get("sketch.partition_builds"), None);
        assert_eq!(report.counters["sketch.sub_solves"], 1);
    }

    #[test]
    fn sketch_is_deterministic() {
        let i = inst(64, 40.0).with_k(2);
        let a = frp::top_k(&i, &approx_opts()).unwrap();
        let b = frp::top_k(&i, &approx_opts()).unwrap();
        assert_eq!(a.value, b.value);
    }

    #[test]
    fn sketch_counters_fire() {
        let _scope = pkgrec_trace::scoped();
        pkgrec_trace::reset();
        let i = inst(64, 40.0).with_k(2);
        frp::top_k(&i, &approx_opts()).unwrap();
        let report = pkgrec_trace::take();
        assert_eq!(report.counters["sketch.partition_builds"], 1);
        assert!(report.counters["sketch.sub_solves"] >= 1);
        assert!(report.counters["sketch.refines"] >= 1);
    }

    #[test]
    fn aggregate_bounds_prune_hopeless_partitions() {
        // Two affordable items and forty whose cheapest possible cost
        // already busts the budget. Exactly `k = 3` valid packages
        // exist ({1,2}, {2}, {1}) — but none are visible until the
        // cheap leaf is refined, so every sketch solve before that
        // certifies "fewer than k" and refinement walks the mapped
        // partitions biggest-first: straight into the expensive ones,
        // whose per-node cost minima prove them hopeless.
        let skewed = || {
            let mut db = Database::new();
            let r = RelationSchema::new("r", [("a", AttrType::Int)]).unwrap();
            db.add_relation(
                Relation::from_tuples(r, (1..=2).chain(1000..1040).map(|i| tuple![i]))
                    .unwrap(),
            )
            .unwrap();
            RecInstance::new(db, Query::Cq(ConjunctiveQuery::identity("r", 1)))
                .with_budget(10.0)
                .with_cost(PackageFn::sum_col(0, true))
                .with_val(PackageFn::sum_col(0, true))
                .with_k(3)
        };
        let opts = |prune| {
            SolveOptions::default().with_approx(SketchParams {
                fanout: 4,
                leaf_cap: 4,
                refine_cap: 256, // never the binding constraint here
                prune,
                ..SketchParams::default()
            })
        };
        let _scope = pkgrec_trace::scoped();
        pkgrec_trace::reset();
        let on = frp::top_k(&skewed(), &opts(true)).unwrap();
        let report = pkgrec_trace::take();
        assert!(
            report.counters["sketch.partitions_pruned"] >= 1,
            "the expensive partitions must be skipped by their cost bound"
        );
        let off = frp::top_k(&skewed(), &opts(false)).unwrap();
        assert_eq!(on.value, off.value, "pruning must not change the answer");
        let sel = on.value.expect("the affordable items form valid packages");
        assert_eq!(sel.len(), 3);
    }

    #[test]
    fn sketch_maximum_bound_is_a_lower_bound() {
        // Small enough for the exact reference: cost is count(), so
        // the exact engine enumerates all 2^12 subsets here.
        let i = inst(12, 5.0).with_k(4);
        let exact = mbp::maximum_bound(&i, &SolveOptions::default()).unwrap();
        let approx = mbp::maximum_bound(&i, &approx_opts()).unwrap();
        assert!(!approx.exact);
        assert_eq!(approx.method, Method::Sketch);
        let (e, a) = (exact.value.unwrap(), approx.value.unwrap());
        assert!(a <= e, "approximate bound {a:?} must not exceed exact {e:?}");
    }

    #[test]
    fn global_step_budget_cuts_the_run() {
        let i = inst(200, 50.0).with_k(2);
        let opts = SolveOptions::limited(5).with_approx(SketchParams::default());
        let out = frp::top_k(&i, &opts).unwrap();
        assert!(!out.exact);
        let cut = out.interrupted.expect("5 steps cannot finish refinement");
        assert!(matches!(cut.resource, Resource::Steps { limit: 5 }));
        // Whatever survived the cut is still genuinely valid.
        if let Some(sel) = out.value {
            for pkg in &sel {
                assert!(i.is_valid_package(pkg, None).unwrap());
            }
        }
    }

    #[test]
    fn cancellation_interrupts_immediately() {
        let flag = pkgrec_guard::CancelFlag::new();
        flag.cancel();
        let mut budget = Budget::unlimited();
        budget.cancel = Some(flag);
        let opts =
            SolveOptions::with_budget(budget).with_approx(SketchParams::default());
        let out = frp::top_k(&inst(100, 50.0), &opts).unwrap();
        assert!(!out.exact);
        assert!(matches!(
            out.interrupted.expect("cancelled").resource,
            Resource::Cancelled
        ));
    }
}
