//! A self-contained subset of the `rand` 0.8 API, vendored so the
//! workspace builds without network access. Only what the workspace
//! actually calls is implemented: `StdRng::seed_from_u64`,
//! `Rng::{gen, gen_range, gen_bool}` over integer ranges, and
//! `seq::SliceRandom::choose`.
//!
//! The generator is SplitMix64 — deterministic, fast, and good enough
//! for workload generation and seeded tests (no cryptographic claims).

/// Types that can be produced directly by [`Rng::gen`].
pub trait Standard: Sized {
    fn sample_from<R: Rng + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for bool {
    fn sample_from<R: Rng + ?Sized>(rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for u64 {
    fn sample_from<R: Rng + ?Sized>(rng: &mut R) -> u64 {
        rng.next_u64()
    }
}

impl Standard for i64 {
    fn sample_from<R: Rng + ?Sized>(rng: &mut R) -> i64 {
        rng.next_u64() as i64
    }
}

impl Standard for f64 {
    fn sample_from<R: Rng + ?Sized>(rng: &mut R) -> f64 {
        // 53 random mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Ranges that [`Rng::gen_range`] can sample from.
pub trait SampleRange<T> {
    fn sample_single<R: Rng + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for std::ops::Range<$t> {
            fn sample_single<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let off = (rng.next_u64() as u128) % span;
                (self.start as i128 + off as i128) as $t
            }
        }
        impl SampleRange<$t> for std::ops::RangeInclusive<$t> {
            fn sample_single<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range: empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let off = (rng.next_u64() as u128) % span;
                (lo as i128 + off as i128) as $t
            }
        }
    )*};
}

impl_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f64> for std::ops::Range<f64> {
    fn sample_single<R: Rng + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "gen_range: empty range");
        self.start + f64::sample_from(rng) * (self.end - self.start)
    }
}

/// The subset of `rand::Rng` the workspace uses.
pub trait Rng {
    /// The next raw 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// A uniformly random value of a [`Standard`]-samplable type.
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample_from(self)
    }

    /// A uniform sample from an integer (or `f64`) range.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T
    where
        Self: Sized,
    {
        range.sample_single(self)
    }

    /// `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p not a probability");
        f64::sample_from(self) < p
    }
}

impl<R: Rng + ?Sized> Rng for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Seedable construction, mirroring `rand::SeedableRng`.
pub trait SeedableRng: Sized {
    fn seed_from_u64(seed: u64) -> Self;
}

pub mod rngs {
    use super::{Rng, SeedableRng};

    /// Deterministic SplitMix64 generator standing in for `rand`'s
    /// `StdRng`.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> StdRng {
            StdRng { state: seed }
        }
    }

    impl Rng for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }
}

pub mod seq {
    use super::Rng;

    /// `rand::seq::SliceRandom`, reduced to `choose`.
    pub trait SliceRandom {
        type Item;
        fn choose<R: Rng>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;
        fn choose<R: Rng>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                let i = (rng.next_u64() % self.len() as u64) as usize;
                Some(&self[i])
            }
        }
    }
}

/// `rand::prelude`, for `use rand::prelude::*` call sites.
pub mod prelude {
    pub use crate::rngs::StdRng;
    pub use crate::seq::SliceRandom;
    pub use crate::{Rng, SeedableRng};
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..10 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(StdRng::seed_from_u64(7).next_u64(), c.next_u64());
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let x: i64 = rng.gen_range(50..200);
            assert!((50..200).contains(&x));
            let y: usize = rng.gen_range(1..=5);
            assert!((1..=5).contains(&y));
            let z: i64 = rng.gen_range(-3..=3);
            assert!((-3..=3).contains(&z));
        }
    }

    #[test]
    fn bool_and_prob() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut trues = 0;
        for _ in 0..1000 {
            if rng.gen::<bool>() {
                trues += 1;
            }
        }
        assert!((300..700).contains(&trues));
        assert!(!(0..1000).any(|_| rng.gen_bool(0.0)));
        assert!((0..1000).all(|_| rng.gen_bool(1.0)));
    }

    #[test]
    fn choose_covers_slice() {
        let mut rng = StdRng::seed_from_u64(3);
        let xs = [1, 2, 3];
        let mut seen = std::collections::BTreeSet::new();
        for _ in 0..100 {
            seen.insert(*xs.choose(&mut rng).unwrap());
        }
        assert_eq!(seen.len(), 3);
        let empty: [i32; 0] = [];
        assert!(empty.choose(&mut rng).is_none());
    }
}
