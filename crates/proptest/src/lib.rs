//! A self-contained subset of the `proptest` API, vendored so the
//! workspace builds and tests without network access.
//!
//! It keeps proptest's *generation* model — composable [`Strategy`]
//! values driven by a deterministic RNG, a [`proptest!`] macro that
//! runs each property over many generated cases, and the
//! `prop_assert*` macros that report failures with a case number — but
//! drops shrinking: a failing case panics with its seed and message
//! instead of minimizing. Every combinator the workspace's property
//! tests use is implemented (`prop_map`, `prop_flat_map`,
//! `prop_filter_map`, `boxed`, tuples, ranges, `any`, `Just`,
//! `prop_oneof!`, `prop::collection::{vec, btree_set}`, and regex-like
//! string strategies over a small pattern subset).

use std::collections::BTreeSet;
use std::fmt;

// ---------------------------------------------------------------- RNG

/// Deterministic SplitMix64 generator driving all strategies.
#[derive(Debug, Clone)]
pub struct Gen {
    state: u64,
}

impl Gen {
    pub fn new(seed: u64) -> Gen {
        Gen { state: seed }
    }

    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform in `[0, bound)`; `bound` must be positive.
    pub fn below(&mut self, bound: usize) -> usize {
        debug_assert!(bound > 0);
        (self.next_u64() % bound as u64) as usize
    }
}

// ----------------------------------------------------------- Strategy

/// A composable value generator (shrinking-free subset of
/// `proptest::strategy::Strategy`).
pub trait Strategy {
    type Value;

    fn generate(&self, g: &mut Gen) -> Self::Value;

    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    fn prop_flat_map<S2, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S2: Strategy,
        F: Fn(Self::Value) -> S2,
    {
        FlatMap { inner: self, f }
    }

    fn prop_filter<F>(self, whence: &'static str, f: F) -> Filter<Self, F>
    where
        Self: Sized,
        F: Fn(&Self::Value) -> bool,
    {
        Filter {
            inner: self,
            whence,
            f,
        }
    }

    fn prop_filter_map<O, F>(self, whence: &'static str, f: F) -> FilterMap<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> Option<O>,
    {
        FilterMap {
            inner: self,
            whence,
            f,
        }
    }

    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Box::new(self))
    }
}

/// A type-erased strategy (`Strategy::boxed`).
pub struct BoxedStrategy<V>(Box<dyn Strategy<Value = V>>);

impl<V> Strategy for BoxedStrategy<V> {
    type Value = V;
    fn generate(&self, g: &mut Gen) -> V {
        self.0.generate(g)
    }
}

pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn generate(&self, g: &mut Gen) -> O {
        (self.f)(self.inner.generate(g))
    }
}

pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F> {
    type Value = S2::Value;
    fn generate(&self, g: &mut Gen) -> S2::Value {
        (self.f)(self.inner.generate(g)).generate(g)
    }
}

/// How many times rejection-based combinators retry before giving up.
const MAX_REJECTS: usize = 10_000;

pub struct Filter<S, F> {
    inner: S,
    whence: &'static str,
    f: F,
}

impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
    type Value = S::Value;
    fn generate(&self, g: &mut Gen) -> S::Value {
        for _ in 0..MAX_REJECTS {
            let v = self.inner.generate(g);
            if (self.f)(&v) {
                return v;
            }
        }
        panic!("prop_filter retry limit exhausted: {}", self.whence);
    }
}

pub struct FilterMap<S, F> {
    inner: S,
    whence: &'static str,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> Option<O>> Strategy for FilterMap<S, F> {
    type Value = O;
    fn generate(&self, g: &mut Gen) -> O {
        for _ in 0..MAX_REJECTS {
            if let Some(o) = (self.f)(self.inner.generate(g)) {
                return o;
            }
        }
        panic!("prop_filter_map retry limit exhausted: {}", self.whence);
    }
}

/// Always yields a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _: &mut Gen) -> T {
        self.0.clone()
    }
}

/// Uniform choice among boxed alternatives (`prop_oneof!`).
pub struct Union<V>(Vec<BoxedStrategy<V>>);

impl<V> Union<V> {
    pub fn new(arms: Vec<BoxedStrategy<V>>) -> Union<V> {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        Union(arms)
    }
}

impl<V> Strategy for Union<V> {
    type Value = V;
    fn generate(&self, g: &mut Gen) -> V {
        let i = g.below(self.0.len());
        self.0[i].generate(g)
    }
}

// Integer range strategies.
macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, g: &mut Gen) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u128;
                let off = (g.next_u64() as u128) % span;
                (self.start as i128 + off as i128) as $t
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, g: &mut Gen) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let off = (g.next_u64() as u128) % span;
                (lo as i128 + off as i128) as $t
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

// Tuple strategies.
macro_rules! impl_tuple_strategy {
    ($($S:ident/$idx:tt),+) => {
        impl<$($S: Strategy),+> Strategy for ($($S,)+) {
            type Value = ($($S::Value,)+);
            fn generate(&self, g: &mut Gen) -> Self::Value {
                ($(self.$idx.generate(g),)+)
            }
        }
    };
}

impl_tuple_strategy!(S0/0);
impl_tuple_strategy!(S0/0, S1/1);
impl_tuple_strategy!(S0/0, S1/1, S2/2);
impl_tuple_strategy!(S0/0, S1/1, S2/2, S3/3);
impl_tuple_strategy!(S0/0, S1/1, S2/2, S3/3, S4/4);
impl_tuple_strategy!(S0/0, S1/1, S2/2, S3/3, S4/4, S5/5);

/// A `Vec` of strategies generates element-wise (used by
/// `prop_flat_map` pipelines that build per-column generators).
impl<S: Strategy> Strategy for Vec<S> {
    type Value = Vec<S::Value>;
    fn generate(&self, g: &mut Gen) -> Vec<S::Value> {
        self.iter().map(|s| s.generate(g)).collect()
    }
}

// ------------------------------------------------------ any / Arbitrary

/// Types with a canonical whole-domain strategy (`any::<T>()`).
pub trait Arbitrary: Sized {
    fn arbitrary(g: &mut Gen) -> Self;
}

impl Arbitrary for bool {
    fn arbitrary(g: &mut Gen) -> bool {
        g.next_u64() & 1 == 1
    }
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(g: &mut Gen) -> $t {
                // Mix extremes in so edge cases show up often.
                match g.below(8) {
                    0 => <$t>::MIN,
                    1 => <$t>::MAX,
                    2 => 0 as $t,
                    3 => 1 as $t,
                    _ => g.next_u64() as $t,
                }
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

pub struct Any<T>(std::marker::PhantomData<T>);

/// The whole-domain strategy for `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, g: &mut Gen) -> T {
        T::arbitrary(g)
    }
}

// ------------------------------------------------------ string patterns

/// String literals act as regex-subset strategies: literal characters,
/// `[...]` classes with ranges, and the quantifiers `?`, `*`, `+`,
/// `{n}`, `{m,n}`.
impl Strategy for &'static str {
    type Value = String;
    fn generate(&self, g: &mut Gen) -> String {
        generate_from_pattern(self, g)
    }
}

#[derive(Debug)]
enum PatElem {
    Lit(char),
    Class(Vec<(char, char)>),
}

fn parse_pattern(pat: &str) -> Vec<(PatElem, usize, usize)> {
    let chars: Vec<char> = pat.chars().collect();
    let mut elems = Vec::new();
    let mut i = 0;
    while i < chars.len() {
        let elem = match chars[i] {
            '[' => {
                let mut ranges = Vec::new();
                i += 1;
                while i < chars.len() && chars[i] != ']' {
                    let lo = chars[i];
                    if i + 2 < chars.len() && chars[i + 1] == '-' && chars[i + 2] != ']' {
                        ranges.push((lo, chars[i + 2]));
                        i += 3;
                    } else {
                        ranges.push((lo, lo));
                        i += 1;
                    }
                }
                assert!(i < chars.len(), "unterminated character class in {pat:?}");
                i += 1; // consume ']'
                PatElem::Class(ranges)
            }
            '\\' if i + 1 < chars.len() => {
                i += 2;
                PatElem::Lit(chars[i - 1])
            }
            c => {
                i += 1;
                PatElem::Lit(c)
            }
        };
        // Optional quantifier.
        let (lo, hi) = if i < chars.len() {
            match chars[i] {
                '?' => {
                    i += 1;
                    (0, 1)
                }
                '*' => {
                    i += 1;
                    (0, 8)
                }
                '+' => {
                    i += 1;
                    (1, 8)
                }
                '{' => {
                    let close = chars[i..]
                        .iter()
                        .position(|&c| c == '}')
                        .expect("unterminated quantifier")
                        + i;
                    let inner: String = chars[i + 1..close].iter().collect();
                    i = close + 1;
                    match inner.split_once(',') {
                        Some((m, n)) => (
                            m.trim().parse().expect("bad quantifier"),
                            n.trim().parse().expect("bad quantifier"),
                        ),
                        None => {
                            let n: usize = inner.trim().parse().expect("bad quantifier");
                            (n, n)
                        }
                    }
                }
                _ => (1, 1),
            }
        } else {
            (1, 1)
        };
        elems.push((elem, lo, hi));
    }
    elems
}

fn generate_from_pattern(pat: &str, g: &mut Gen) -> String {
    let mut out = String::new();
    for (elem, lo, hi) in parse_pattern(pat) {
        let reps = lo + g.below(hi - lo + 1);
        for _ in 0..reps {
            match &elem {
                PatElem::Lit(c) => out.push(*c),
                PatElem::Class(ranges) => {
                    let total: u32 = ranges
                        .iter()
                        .map(|&(a, b)| (b as u32).saturating_sub(a as u32) + 1)
                        .sum();
                    let mut pick = g.below(total as usize) as u32;
                    for &(a, b) in ranges {
                        let span = (b as u32) - (a as u32) + 1;
                        if pick < span {
                            out.push(char::from_u32(a as u32 + pick).expect("valid char"));
                            break;
                        }
                        pick -= span;
                    }
                }
            }
        }
    }
    out
}

// --------------------------------------------------------- collections

pub mod collection {
    use super::{BTreeSet, Gen, Strategy, MAX_REJECTS};

    /// Sizes accepted by `vec`/`btree_set`: exact or a range.
    pub trait IntoSize {
        fn pick(&self, g: &mut Gen) -> usize;
    }

    impl IntoSize for usize {
        fn pick(&self, _: &mut Gen) -> usize {
            *self
        }
    }

    impl IntoSize for std::ops::Range<usize> {
        fn pick(&self, g: &mut Gen) -> usize {
            assert!(self.start < self.end, "empty size range");
            self.start + g.below(self.end - self.start)
        }
    }

    impl IntoSize for std::ops::RangeInclusive<usize> {
        fn pick(&self, g: &mut Gen) -> usize {
            *self.start() + g.below(*self.end() - *self.start() + 1)
        }
    }

    pub struct VecStrategy<S, Z> {
        element: S,
        size: Z,
    }

    pub fn vec<S: Strategy, Z: IntoSize>(element: S, size: Z) -> VecStrategy<S, Z> {
        VecStrategy { element, size }
    }

    impl<S: Strategy, Z: IntoSize> Strategy for VecStrategy<S, Z> {
        type Value = Vec<S::Value>;
        fn generate(&self, g: &mut Gen) -> Vec<S::Value> {
            let n = self.size.pick(g);
            (0..n).map(|_| self.element.generate(g)).collect()
        }
    }

    pub struct BTreeSetStrategy<S, Z> {
        element: S,
        size: Z,
    }

    pub fn btree_set<S, Z>(element: S, size: Z) -> BTreeSetStrategy<S, Z>
    where
        S: Strategy,
        S::Value: Ord,
        Z: IntoSize,
    {
        BTreeSetStrategy { element, size }
    }

    impl<S, Z> Strategy for BTreeSetStrategy<S, Z>
    where
        S: Strategy,
        S::Value: Ord,
        Z: IntoSize,
    {
        type Value = BTreeSet<S::Value>;
        fn generate(&self, g: &mut Gen) -> BTreeSet<S::Value> {
            let n = self.size.pick(g);
            let mut out = BTreeSet::new();
            let mut attempts = 0;
            while out.len() < n && attempts < MAX_REJECTS {
                out.insert(self.element.generate(g));
                attempts += 1;
            }
            out
        }
    }
}

// -------------------------------------------------------- test runner

/// Configuration for [`proptest!`] blocks.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> ProptestConfig {
        ProptestConfig { cases: 256 }
    }
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> ProptestConfig {
        ProptestConfig { cases }
    }
}

/// A failed (or rejected) test case, carrying its message.
#[derive(Debug, Clone)]
pub struct TestCaseError(pub String);

impl TestCaseError {
    pub fn fail(msg: impl fmt::Display) -> TestCaseError {
        TestCaseError(msg.to_string())
    }

    pub fn reject(msg: impl fmt::Display) -> TestCaseError {
        TestCaseError(format!("rejected: {msg}"))
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for TestCaseError {}

#[doc(hidden)]
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// Drive one property over `cfg.cases` deterministic cases, panicking
/// with the case index on the first failure. Called by [`proptest!`].
#[doc(hidden)]
pub fn run_cases(
    name: &str,
    cfg: ProptestConfig,
    mut body: impl FnMut(&mut Gen) -> Result<(), TestCaseError>,
) {
    for case in 0..cfg.cases {
        let seed = fnv1a(name.as_bytes()) ^ (case as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
        let mut g = Gen::new(seed);
        if let Err(e) = body(&mut g) {
            panic!("property `{name}` failed at case {case} (seed {seed:#x}): {e}");
        }
    }
}

// ------------------------------------------------------------- macros

/// Run each contained `#[test] fn name(pat in strategy, ...) { ... }`
/// over many generated cases.
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($cfg:expr)]
        $(
            $(#[$attr:meta])*
            fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block
        )*
    ) => {
        $(
            $(#[$attr])*
            fn $name() {
                $crate::run_cases(stringify!($name), $cfg, |__proptest_gen| {
                    $(let $pat = $crate::Strategy::generate(&($strat), __proptest_gen);)+
                    $body
                    #[allow(unreachable_code)]
                    Ok(())
                });
            }
        )*
    };
    (
        $(
            $(#[$attr:meta])*
            fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block
        )*
    ) => {
        $crate::proptest! {
            #![proptest_config($crate::ProptestConfig::default())]
            $(
                $(#[$attr])*
                fn $name($($pat in $strat),+) $body
            )*
        }
    };
}

/// Uniform choice among strategies with a common value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::Union::new(vec![$($crate::Strategy::boxed($arm)),+])
    };
}

#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return Err($crate::TestCaseError::fail(format!($($fmt)*)));
        }
    };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr $(,)?) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(*a == *b, "assertion failed: {:?} == {:?}", a, b);
    }};
    ($a:expr, $b:expr, $($fmt:tt)*) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(
            *a == *b,
            "assertion failed: {:?} == {:?}: {}", a, b, format!($($fmt)*)
        );
    }};
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr $(,)?) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(*a != *b, "assertion failed: {:?} != {:?}", a, b);
    }};
    ($a:expr, $b:expr, $($fmt:tt)*) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(
            *a != *b,
            "assertion failed: {:?} != {:?}: {}", a, b, format!($($fmt)*)
        );
    }};
}

/// Reject the current case (regenerates under a different seed the
/// next case; no global retry bookkeeping in this subset).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return Ok(());
        }
    };
}

// ------------------------------------------------------------- prelude

pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
        Arbitrary, BoxedStrategy, Just, ProptestConfig, Strategy, TestCaseError, Union,
    };

    /// Mirror of `proptest::prelude::prop`.
    pub mod prop {
        pub use crate::collection;
    }
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn ranges_tuples_vecs_compose() {
        let mut g = crate::Gen::new(42);
        let s = (0usize..5, any::<bool>()).prop_map(|(n, b)| (n * 2, b));
        for _ in 0..100 {
            let (n, _) = s.generate(&mut g);
            assert!(n < 10 && n % 2 == 0);
        }
        let v = prop::collection::vec(1i64..4, 2..5).generate(&mut g);
        assert!((2..5).contains(&v.len()));
        assert!(v.iter().all(|x| (1..4).contains(x)));
        let fixed = prop::collection::vec(0i64..2, 3usize).generate(&mut g);
        assert_eq!(fixed.len(), 3);
    }

    #[test]
    fn oneof_and_boxed() {
        let mut g = crate::Gen::new(7);
        let s = prop_oneof![Just(1i32), Just(2i32), 5i32..7];
        let mut seen = std::collections::BTreeSet::new();
        for _ in 0..200 {
            seen.insert(s.generate(&mut g));
        }
        assert!(seen.contains(&1) && seen.contains(&2) && seen.contains(&5));
        assert!(seen.iter().all(|&x| x == 1 || x == 2 || x == 5 || x == 6));
    }

    #[test]
    fn string_pattern_strategy() {
        let mut g = crate::Gen::new(9);
        for _ in 0..200 {
            let s = "[a-z][a-z0-9_ ]{0,8}[a-z0-9_]?".generate(&mut g);
            assert!(!s.is_empty() && s.len() <= 10, "{s:?}");
            let first = s.chars().next().unwrap();
            assert!(first.is_ascii_lowercase(), "{s:?}");
        }
        let t = "ab?c{2}[x]".generate(&mut g);
        assert!(t == "accx" || t == "abccx", "{t:?}");
    }

    #[test]
    fn btree_set_respects_bounds() {
        let mut g = crate::Gen::new(11);
        for _ in 0..50 {
            let s = prop::collection::btree_set(0i64..100, 0..8).generate(&mut g);
            assert!(s.len() < 8);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn macro_roundtrip(xs in prop::collection::vec(0i64..10, 0..6), flag in any::<bool>()) {
            prop_assert!(xs.len() < 6);
            if flag {
                prop_assert_eq!(xs.len(), xs.iter().filter(|x| **x < 10).count());
            }
        }
    }

    proptest! {
        #[test]
        fn macro_without_config((a, b) in (0i64..5, 0i64..5)) {
            prop_assert!(a + b <= 8);
            prop_assert_ne!(a - 1, a);
        }
    }
}
