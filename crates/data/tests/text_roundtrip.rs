//! Property test: the text database format round-trips arbitrary
//! databases (over text-representable values — strings without commas
//! or leading/trailing whitespace).

use proptest::prelude::*;

use pkgrec_data::text::{parse_database, write_database};
use pkgrec_data::{AttrType, Database, Relation, RelationSchema, Tuple, Value};

fn value_strategy(ty: AttrType) -> BoxedStrategy<Value> {
    match ty {
        AttrType::Int => any::<i64>().prop_map(Value::Int).boxed(),
        AttrType::Bool => any::<bool>().prop_map(Value::Bool).boxed(),
        AttrType::Str => "[a-z][a-z0-9_ ]{0,8}[a-z0-9_]?"
            .prop_map(|s| Value::str(s.trim()))
            .boxed(),
    }
}

fn type_strategy() -> impl Strategy<Value = AttrType> {
    prop_oneof![
        Just(AttrType::Int),
        Just(AttrType::Bool),
        Just(AttrType::Str)
    ]
}

fn db_strategy() -> impl Strategy<Value = Database> {
    // 1–3 relations with distinct names, 1–4 typed columns, 0–6 rows.
    prop::collection::vec(
        (prop::collection::vec(type_strategy(), 1..5), 0usize..7),
        1..4,
    )
    .prop_flat_map(|shapes| {
        let strategies: Vec<_> = shapes
            .into_iter()
            .enumerate()
            .map(|(ri, (types, rows))| {
                let row_strategy: Vec<_> =
                    types.iter().map(|&t| value_strategy(t)).collect();
                prop::collection::vec(row_strategy, rows).prop_map(move |rows| {
                    let schema = RelationSchema::new(
                        format!("rel{ri}"),
                        types
                            .iter()
                            .enumerate()
                            .map(|(ci, &t)| (format!("c{ci}"), t)),
                    )
                    .expect("generated names are distinct");
                    Relation::from_tuples(schema, rows.into_iter().map(Tuple::new))
                        .expect("values match the generated types")
                })
            })
            .collect();
        strategies
    })
    .prop_map(|relations| {
        let mut db = Database::new();
        for r in relations {
            db.add_relation(r).expect("distinct names");
        }
        db
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn text_format_round_trips(db in db_strategy()) {
        let text = write_database(&db);
        let back = parse_database(&text)
            .map_err(|e| TestCaseError::fail(format!("{e}\n--- text ---\n{text}")))?;
        prop_assert_eq!(db, back);
    }
}
