//! Columnar (struct-of-arrays) relation storage and item bitsets.
//!
//! The row-oriented [`Relation`](crate::Relation) stores `Tuple`s —
//! every probe chases an `Arc` per value. For the hot probes of package
//! search (membership `t ∈ Q(D)` and antimonotone-`Qc` compat checks),
//! compiled plans instead want the layout scalable package-query
//! engines use: one dense-`u32` column vector per attribute over a
//! per-relation [`ValueInterner`], plus an inverted index mapping each
//! column value to the *set of rows* carrying it, represented as a
//! word-packed [`ItemBitset`]. A fully-bound atom probe then reduces to
//! intersecting one bitset per column — branch-free `u64` AND loops the
//! compiler auto-vectorizes — instead of scanning an index bucket row
//! by row.
//!
//! A [`ColumnarRelation`] is built lazily from the canonical
//! (`BTreeSet`-ordered) tuple layout and cached on the owning
//! `Relation` exactly like the row index cache: double-checked under an
//! `RwLock`, invalidated on mutation, never cloned across relation
//! clones. Row numbers are therefore *canonical positions*, identical
//! to the row numbering compiled plans derive from `Relation::iter`.

use std::collections::HashMap;
use std::sync::Arc;

use crate::{Relation, ValueInterner};

/// A set of dense row/item ids packed into `u64` words.
///
/// No dependencies, no compression: the sets this represents (rows of
/// one relation) are bounded by the relation's cardinality, and the
/// word ops (`and`/`or`/`andnot`) are what the probe hot path needs —
/// plain slice loops over `u64`s that LLVM turns into SIMD.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ItemBitset {
    /// Packed words; bit `i` of word `w` is id `w * 64 + i`. Trailing
    /// words may be zero; `words.len()` is the capacity the set was
    /// built with, not its cardinality.
    words: Vec<u64>,
}

impl ItemBitset {
    /// An empty set able to hold ids `0..capacity` without resizing.
    pub fn with_capacity(capacity: usize) -> ItemBitset {
        ItemBitset {
            words: vec![0; capacity.div_ceil(64)],
        }
    }

    /// An empty set.
    pub fn new() -> ItemBitset {
        ItemBitset::default()
    }

    /// Number of backing words.
    pub fn word_len(&self) -> usize {
        self.words.len()
    }

    /// The backing word at `w`, or 0 past the end — so sets of
    /// different capacities compose in the word loops below.
    #[inline]
    pub fn word(&self, w: usize) -> u64 {
        self.words.get(w).copied().unwrap_or(0)
    }

    /// Insert an id, growing the word vector as needed. Returns whether
    /// the id was new.
    pub fn insert(&mut self, id: u32) -> bool {
        let (w, bit) = (id as usize / 64, 1u64 << (id % 64));
        if w >= self.words.len() {
            self.words.resize(w + 1, 0);
        }
        let new = self.words[w] & bit == 0;
        self.words[w] |= bit;
        new
    }

    /// Remove an id. Returns whether it was present.
    pub fn remove(&mut self, id: u32) -> bool {
        let (w, bit) = (id as usize / 64, 1u64 << (id % 64));
        match self.words.get_mut(w) {
            Some(word) if *word & bit != 0 => {
                *word &= !bit;
                true
            }
            _ => false,
        }
    }

    /// Membership test.
    pub fn contains(&self, id: u32) -> bool {
        self.word(id as usize / 64) & (1u64 << (id % 64)) != 0
    }

    /// Number of ids in the set.
    pub fn count_ones(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Whether the set is empty.
    pub fn is_empty(&self) -> bool {
        self.words.iter().all(|&w| w == 0)
    }

    /// `self &= other`.
    pub fn and_assign(&mut self, other: &ItemBitset) {
        for (w, word) in self.words.iter_mut().enumerate() {
            *word &= other.word(w);
        }
    }

    /// `self |= other`.
    pub fn or_assign(&mut self, other: &ItemBitset) {
        if other.words.len() > self.words.len() {
            self.words.resize(other.words.len(), 0);
        }
        for (w, word) in self.words.iter_mut().enumerate() {
            *word |= other.word(w);
        }
    }

    /// `self &= !other` (set difference).
    pub fn andnot_assign(&mut self, other: &ItemBitset) {
        for (w, word) in self.words.iter_mut().enumerate() {
            *word &= !other.word(w);
        }
    }

    /// `self & other` as a new set.
    pub fn and(&self, other: &ItemBitset) -> ItemBitset {
        let mut out = self.clone();
        out.and_assign(other);
        out
    }

    /// `self | other` as a new set.
    pub fn or(&self, other: &ItemBitset) -> ItemBitset {
        let mut out = self.clone();
        out.or_assign(other);
        out
    }

    /// `self & !other` as a new set.
    pub fn andnot(&self, other: &ItemBitset) -> ItemBitset {
        let mut out = self.clone();
        out.andnot_assign(other);
        out
    }

    /// Whether `self ∩ other` is nonempty, with early exit at the first
    /// overlapping word — the probe fast path never materializes the
    /// intersection.
    pub fn intersects(&self, other: &ItemBitset) -> bool {
        let n = self.words.len().min(other.words.len());
        (0..n).any(|w| self.words[w] & other.words[w] != 0)
    }

    /// Whether the intersection of all `sets` is nonempty, scanning
    /// word-parallel with early exit at the first surviving word.
    /// An empty slice is the universe (vacuously nonempty).
    pub fn intersection_nonempty(sets: &[&ItemBitset]) -> bool {
        let Some((first, rest)) = sets.split_first() else {
            return true;
        };
        'words: for (w, &word) in first.words.iter().enumerate() {
            let mut acc = word;
            if acc == 0 {
                continue;
            }
            for s in rest {
                acc &= s.word(w);
                if acc == 0 {
                    continue 'words;
                }
            }
            return true;
        }
        false
    }

    /// Iterate the ids in ascending order.
    pub fn iter_ones(&self) -> impl Iterator<Item = u32> + '_ {
        self.words.iter().enumerate().flat_map(|(w, &word)| {
            let mut rem = word;
            std::iter::from_fn(move || {
                if rem == 0 {
                    return None;
                }
                let bit = rem.trailing_zeros();
                rem &= rem - 1;
                Some(w as u32 * 64 + bit)
            })
        })
    }
}

impl FromIterator<u32> for ItemBitset {
    fn from_iter<I: IntoIterator<Item = u32>>(iter: I) -> ItemBitset {
        let mut s = ItemBitset::new();
        for id in iter {
            s.insert(id);
        }
        s
    }
}

/// A relation re-laid out column-major over dense interned ids, with a
/// per-column inverted index. See the module docs.
///
/// Row numbering is the relation's canonical (sorted) tuple order, so
/// row `r` here is the `r`-th tuple of `Relation::iter` — the same
/// numbering compiled plans use for their row-major cell arrays.
#[derive(Debug)]
pub struct ColumnarRelation {
    rows: usize,
    /// This relation's private interner: ids are dense in first-seen
    /// (row-major, canonical) order and meaningless outside this layout.
    interner: ValueInterner,
    /// One dense-id vector per attribute, each `rows` long.
    columns: Vec<Vec<u32>>,
    /// Per column: interned value id → the set of rows carrying it.
    /// Bitsets are `Arc`-shared so consumers (compiled plans) can hold
    /// them without copying words.
    index: Vec<HashMap<u32, Arc<ItemBitset>>>,
}

impl ColumnarRelation {
    /// Build the columnar layout of `rel` (canonical row order).
    pub fn build(rel: &Relation) -> ColumnarRelation {
        let arity = rel.schema().arity();
        let rows = rel.len();
        let mut interner = ValueInterner::new();
        let mut columns: Vec<Vec<u32>> =
            (0..arity).map(|_| Vec::with_capacity(rows)).collect();
        let mut building: Vec<HashMap<u32, ItemBitset>> = vec![HashMap::new(); arity];
        for (row, t) in rel.iter().enumerate() {
            for (col, v) in t.values().iter().enumerate() {
                let id = interner.intern(v);
                columns[col].push(id);
                building[col]
                    .entry(id)
                    .or_insert_with(|| ItemBitset::with_capacity(rows))
                    .insert(row as u32);
            }
        }
        let index = building
            .into_iter()
            .map(|m| m.into_iter().map(|(id, bs)| (id, Arc::new(bs))).collect())
            .collect();
        ColumnarRelation {
            rows,
            interner,
            columns,
            index,
        }
    }

    /// Number of rows (canonical positions).
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn arity(&self) -> usize {
        self.columns.len()
    }

    /// The relation-local interner mapping this layout's dense ids to
    /// values.
    pub fn interner(&self) -> &ValueInterner {
        &self.interner
    }

    /// Column `col` as a dense-id vector in canonical row order.
    pub fn column(&self, col: usize) -> &[u32] {
        &self.columns[col]
    }

    /// The rows whose column `col` holds the value with local id `id`,
    /// or `None` when no row does.
    pub fn rows_with(&self, col: usize, id: u32) -> Option<&Arc<ItemBitset>> {
        self.index[col].get(&id)
    }

    /// The full inverted index of column `col`.
    pub fn column_index(&self, col: usize) -> &HashMap<u32, Arc<ItemBitset>> {
        &self.index[col]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{tuple, AttrType, RelationSchema, Value};

    #[test]
    fn bitset_ops_roundtrip() {
        let mut a = ItemBitset::new();
        assert!(a.insert(3));
        assert!(a.insert(200));
        assert!(!a.insert(3));
        assert!(a.contains(3) && a.contains(200) && !a.contains(4));
        assert_eq!(a.count_ones(), 2);
        assert_eq!(a.iter_ones().collect::<Vec<_>>(), vec![3, 200]);
        assert!(a.remove(3));
        assert!(!a.remove(3));
        assert_eq!(a.count_ones(), 1);

        let b: ItemBitset = [200u32, 7].into_iter().collect();
        assert!(a.intersects(&b));
        assert_eq!(a.and(&b).iter_ones().collect::<Vec<_>>(), vec![200]);
        assert_eq!(b.or(&a).count_ones(), 2);
        assert_eq!(b.andnot(&a).iter_ones().collect::<Vec<_>>(), vec![7]);
        assert!(ItemBitset::intersection_nonempty(&[&a, &b]));
        let empty = ItemBitset::new();
        assert!(empty.is_empty());
        assert!(!ItemBitset::intersection_nonempty(&[&a, &empty]));
        assert!(ItemBitset::intersection_nonempty(&[]));
    }

    #[test]
    fn mixed_capacity_word_loops_compose() {
        let small: ItemBitset = [1u32].into_iter().collect();
        let big: ItemBitset = [1u32, 1000].into_iter().collect();
        assert!(small.intersects(&big));
        assert!(big.intersects(&small));
        let mut grown = small.clone();
        grown.or_assign(&big);
        assert_eq!(grown.count_ones(), 2);
        let mut shrunk = big.clone();
        shrunk.and_assign(&small);
        assert_eq!(shrunk.iter_ones().collect::<Vec<_>>(), vec![1]);
    }

    fn rel() -> Relation {
        let schema =
            RelationSchema::new("r", [("a", AttrType::Int), ("b", AttrType::Str)]).unwrap();
        Relation::from_tuples(
            schema,
            [tuple![1, "x"], tuple![2, "y"], tuple![1, "z"]],
        )
        .unwrap()
    }

    #[test]
    fn columnar_layout_matches_canonical_rows() {
        let r = rel();
        let c = ColumnarRelation::build(&r);
        assert_eq!(c.rows(), 3);
        assert_eq!(c.arity(), 2);
        for (row, t) in r.iter().enumerate() {
            for col in 0..2 {
                assert_eq!(c.interner().resolve(c.column(col)[row]), &t[col]);
            }
        }
        let one = c.interner().get(&Value::Int(1)).unwrap();
        let rows = c.rows_with(0, one).unwrap();
        // Canonical order sorts [1,"x"], [1,"z"], [2,"y"]: rows 0 and 1
        // hold a = 1.
        assert_eq!(rows.iter_ones().collect::<Vec<_>>(), vec![0, 1]);
        assert!(c.rows_with(0, 999).is_none());
    }

    #[test]
    fn relation_caches_and_invalidates_columnar() {
        let mut r = rel();
        let a = r.columnar();
        let b = r.columnar();
        assert!(Arc::ptr_eq(&a, &b), "cache hands out one build");
        r.insert(tuple![5, "w"]).unwrap();
        let c = r.columnar();
        assert!(!Arc::ptr_eq(&a, &c), "mutation invalidates the cache");
        assert_eq!(c.rows(), 4);
        r.remove(&tuple![5, "w"]);
        assert_eq!(r.columnar().rows(), 3);
        // Clones rebuild lazily rather than sharing the cache.
        let clone = r.clone();
        assert_eq!(clone.columnar().rows(), 3);
    }
}
