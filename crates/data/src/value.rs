use std::fmt;
use std::sync::Arc;


/// The type of an attribute in a relation schema.
///
/// The paper fixes, for each attribute `A` of a relation `R`, a domain
/// `dom(R.A)` (Section 2). We support three concrete domains; they are
/// sufficient for every construction in the paper (the Boolean gadgets of
/// Figure 4.1, integer-coded dates/prices, and string-valued names).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum AttrType {
    /// Boolean domain `{0, 1}`, used by all reduction gadgets.
    Bool,
    /// 64-bit integers (prices, dates, ids, distances).
    Int,
    /// Interned strings (names, cities, categories).
    Str,
}

impl fmt::Display for AttrType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AttrType::Bool => write!(f, "bool"),
            AttrType::Int => write!(f, "int"),
            AttrType::Str => write!(f, "str"),
        }
    }
}

/// An attribute value.
///
/// `Value` has a *total* order (`Bool < Int < Str`, then within each
/// variant the natural order) so that the built-in comparison predicates
/// of the paper's query languages are defined on every pair of values and
/// so relations can be kept in canonical sorted order. Strings are
/// reference-counted: tuples are cloned freely during join evaluation and
/// package enumeration.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Value {
    /// A Boolean; the gadget relations of Figure 4.1 are built from these.
    Bool(bool),
    /// An integer.
    Int(i64),
    /// An interned string.
    Str(Arc<str>),
}

impl Value {
    /// Construct a string value.
    pub fn str(s: impl AsRef<str>) -> Self {
        Value::Str(Arc::from(s.as_ref()))
    }

    /// The type of this value.
    pub fn attr_type(&self) -> AttrType {
        match self {
            Value::Bool(_) => AttrType::Bool,
            Value::Int(_) => AttrType::Int,
            Value::Str(_) => AttrType::Str,
        }
    }

    /// The integer content, if this is an `Int`.
    pub fn as_int(&self) -> Option<i64> {
        match self {
            Value::Int(i) => Some(*i),
            _ => None,
        }
    }

    /// The boolean content, if this is a `Bool`.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The string content, if this is a `Str`.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Boolean values as 0/1 integers; integers as themselves.
    ///
    /// The reductions use Boolean attributes and integer attributes
    /// interchangeably when computing ratings (e.g. `val({t})` in the
    /// Theorem 5.1 proof reads a tuple of bits as a binary number), so a
    /// uniform numeric view is convenient.
    pub fn as_numeric(&self) -> Option<i64> {
        match self {
            Value::Bool(b) => Some(i64::from(*b)),
            Value::Int(i) => Some(*i),
            Value::Str(_) => None,
        }
    }
}

impl From<bool> for Value {
    fn from(b: bool) -> Self {
        Value::Bool(b)
    }
}

impl From<i64> for Value {
    fn from(i: i64) -> Self {
        Value::Int(i)
    }
}

impl From<i32> for Value {
    fn from(i: i32) -> Self {
        Value::Int(i64::from(i))
    }
}

impl From<&str> for Value {
    fn from(s: &str) -> Self {
        Value::str(s)
    }
}

impl From<String> for Value {
    fn from(s: String) -> Self {
        Value::Str(Arc::from(s.as_str()))
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Bool(b) => write!(f, "{}", u8::from(*b)),
            Value::Int(i) => write!(f, "{i}"),
            Value::Str(s) => write!(f, "{s}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn value_total_order_across_variants() {
        assert!(Value::Bool(true) < Value::Int(0));
        assert!(Value::Int(i64::MAX) < Value::str(""));
        assert!(Value::Bool(false) < Value::Bool(true));
    }

    #[test]
    fn numeric_view_unifies_bool_and_int() {
        assert_eq!(Value::Bool(true).as_numeric(), Some(1));
        assert_eq!(Value::Bool(false).as_numeric(), Some(0));
        assert_eq!(Value::Int(7).as_numeric(), Some(7));
        assert_eq!(Value::str("x").as_numeric(), None);
    }

    #[test]
    fn accessors_match_variants() {
        assert_eq!(Value::Int(3).as_int(), Some(3));
        assert_eq!(Value::Int(3).as_bool(), None);
        assert_eq!(Value::str("a").as_str(), Some("a"));
        assert_eq!(Value::Bool(true).attr_type(), AttrType::Bool);
    }

    #[test]
    fn display_matches_gadget_notation() {
        // Figure 4.1 writes Booleans as 0/1.
        assert_eq!(Value::Bool(true).to_string(), "1");
        assert_eq!(Value::Bool(false).to_string(), "0");
        assert_eq!(Value::str("edi").to_string(), "edi");
    }

    #[test]
    fn conversions() {
        assert_eq!(Value::from(5i64), Value::Int(5));
        assert_eq!(Value::from(5i32), Value::Int(5));
        assert_eq!(Value::from("s"), Value::str("s"));
        assert_eq!(Value::from(String::from("s")), Value::str("s"));
        assert_eq!(Value::from(true), Value::Bool(true));
    }
}
