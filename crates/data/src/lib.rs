//! # pkgrec-data — relational substrate
//!
//! The paper models a recommendation system's item collection as a
//! relational database `D` over a schema `R = (R1, ..., Rn)` (Section 2).
//! This crate provides that substrate from scratch:
//!
//! * [`Value`] — the attribute value domain (booleans, integers, strings),
//!   with a total order so values can serve as join keys and be compared by
//!   the built-in predicates `=, ≠, <, ≤, >, ≥` the paper allows in every
//!   query language.
//! * [`Tuple`] — an immutable, cheaply clonable row.
//! * [`RelationSchema`] / [`Attribute`] — named, typed relation schemas.
//! * [`Relation`] — a set of tuples under a schema, deduplicated and kept
//!   in canonical (sorted) order so all downstream algorithms are
//!   deterministic.
//! * [`ColumnarRelation`] / [`ItemBitset`] — the struct-of-arrays
//!   mirror of a relation (dense-`u32` columns plus per-column
//!   value→row-bitset inverted indexes), built lazily and cached on the
//!   relation; compiled query plans turn fully-bound probes into bitset
//!   intersections over it.
//! * [`Database`] — a catalog of relations, plus the *active domain*
//!   computation used by FO evaluation and by query-relaxation search.
//! * [`partition`] — the offline, deterministic hierarchical clustering
//!   behind the SketchRefine approximate engine: per-partition
//!   representative tuples and size/aggregate metadata.
//!
//! Everything here is deliberately simple and exact: the paper's
//! complexity analyses concern the logical structure of queries and
//! packages, not storage engineering, so the substrate favours
//! determinism and clarity while still using indexes where joins need
//! them.

mod columnar;
mod database;
mod error;
mod interner;
pub mod partition;
mod relation;
mod schema;
pub mod text;
mod tuple;
mod value;

pub use columnar::{ColumnarRelation, ItemBitset};
pub use database::{ActiveDomain, Database};
pub use partition::{PartitionIndex, PartitionNode, PartitionParams};
pub use error::DataError;
pub use interner::ValueInterner;
pub use relation::Relation;
pub use schema::{Attribute, RelationSchema};
pub use tuple::Tuple;
pub use value::{AttrType, Value};

/// Crate-wide result alias.
pub type Result<T> = std::result::Result<T, DataError>;
