use std::fmt;

use crate::AttrType;

/// Errors raised by the relational substrate.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DataError {
    /// Two attributes of one relation share a name.
    DuplicateAttribute {
        /// The relation being defined.
        relation: String,
        /// The offending attribute name.
        attribute: String,
    },
    /// A tuple's arity does not match its relation schema.
    ArityMismatch {
        /// The relation the tuple was inserted into.
        relation: String,
        /// Schema arity.
        expected: usize,
        /// Tuple arity.
        found: usize,
    },
    /// A tuple value's type does not match the schema.
    TypeMismatch {
        /// The relation the tuple was inserted into.
        relation: String,
        /// The attribute at the mismatching position.
        attribute: String,
        /// Declared attribute type.
        expected: AttrType,
        /// Actual value type.
        found: AttrType,
    },
    /// A relation name was not found in the database.
    UnknownRelation(String),
    /// A relation with this name already exists in the database.
    DuplicateRelation(String),
}

impl fmt::Display for DataError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DataError::DuplicateAttribute {
                relation,
                attribute,
            } => write!(f, "duplicate attribute `{attribute}` in relation `{relation}`"),
            DataError::ArityMismatch {
                relation,
                expected,
                found,
            } => write!(
                f,
                "arity mismatch in `{relation}`: schema has {expected} attributes, tuple has {found}"
            ),
            DataError::TypeMismatch {
                relation,
                attribute,
                expected,
                found,
            } => write!(
                f,
                "type mismatch in `{relation}.{attribute}`: expected {expected}, found {found}"
            ),
            DataError::UnknownRelation(name) => write!(f, "unknown relation `{name}`"),
            DataError::DuplicateRelation(name) => {
                write!(f, "relation `{name}` already exists")
            }
        }
    }
}

impl std::error::Error for DataError {}
