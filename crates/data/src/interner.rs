use std::collections::HashMap;
use std::fmt;

use crate::Value;

/// Dense interning of [`Value`]s to `u32` symbol ids.
///
/// Compiled query plans intern every value a join can touch once at
/// compile time, so the inner join loops compare and copy 4-byte ids
/// instead of cloning `Value`s (which may carry an `Arc<str>`). Two ids
/// from the same interner are equal iff the values they denote are
/// equal; order is *not* preserved, so anything that needs the value's
/// ordering (comparison builtins, answer tuples) resolves the id back
/// first.
#[derive(Clone, Default)]
pub struct ValueInterner {
    ids: HashMap<Value, u32>,
    values: Vec<Value>,
}

impl ValueInterner {
    /// An empty interner.
    pub fn new() -> Self {
        Self::default()
    }

    /// Intern a value, returning its dense id (assigned in first-seen
    /// order).
    pub fn intern(&mut self, v: &Value) -> u32 {
        if let Some(&id) = self.ids.get(v) {
            return id;
        }
        let id = u32::try_from(self.values.len()).expect("fewer than 2^32 distinct values");
        self.ids.insert(v.clone(), id);
        self.values.push(v.clone());
        id
    }

    /// The id of an already-interned value, if any.
    pub fn get(&self, v: &Value) -> Option<u32> {
        self.ids.get(v).copied()
    }

    /// Resolve an id back to its value.
    ///
    /// # Panics
    /// If the id was not produced by this interner.
    pub fn resolve(&self, id: u32) -> &Value {
        &self.values[id as usize]
    }

    /// Number of distinct interned values.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// Whether nothing has been interned.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }
}

impl fmt::Debug for ValueInterner {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ValueInterner")
            .field("len", &self.values.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_are_dense_and_stable() {
        let mut i = ValueInterner::new();
        let a = i.intern(&Value::Int(7));
        let b = i.intern(&Value::from("x"));
        assert_eq!(a, 0);
        assert_eq!(b, 1);
        assert_eq!(i.intern(&Value::Int(7)), a);
        assert_eq!(i.len(), 2);
        assert_eq!(i.resolve(a), &Value::Int(7));
        assert_eq!(i.resolve(b), &Value::from("x"));
    }

    #[test]
    fn get_does_not_intern() {
        let mut i = ValueInterner::new();
        assert_eq!(i.get(&Value::Bool(true)), None);
        let id = i.intern(&Value::Bool(true));
        assert_eq!(i.get(&Value::Bool(true)), Some(id));
        assert!(!i.is_empty());
    }
}
