use std::collections::{BTreeMap, BTreeSet};
use std::fmt;


use crate::{DataError, Relation, RelationSchema, Result, Tuple, Value};

/// The *active domain* of a database (plus any constants supplied by a
/// query): all values occurring in it.
///
/// FO queries are evaluated under active-domain semantics (as usual in
/// finite model theory and as the paper's PSPACE upper bounds assume),
/// and the relaxation search of Theorem 7.2 enumerates distance bounds
/// realized by active-domain value pairs.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ActiveDomain {
    values: BTreeSet<Value>,
}

impl ActiveDomain {
    /// Empty domain.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add one value.
    pub fn add(&mut self, v: Value) {
        self.values.insert(v);
    }

    /// Add all values of a tuple.
    pub fn add_tuple(&mut self, t: &Tuple) {
        for v in t.values() {
            self.values.insert(v.clone());
        }
    }

    /// Iterate in canonical order.
    pub fn iter(&self) -> impl Iterator<Item = &Value> + '_ {
        self.values.iter()
    }

    /// Number of distinct values.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// Whether the domain is empty.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// Membership test.
    pub fn contains(&self, v: &Value) -> bool {
        self.values.contains(v)
    }

    /// Merge another domain into this one.
    pub fn extend(&mut self, other: &ActiveDomain) {
        self.values.extend(other.values.iter().cloned());
    }
}

impl FromIterator<Value> for ActiveDomain {
    fn from_iter<I: IntoIterator<Item = Value>>(iter: I) -> Self {
        ActiveDomain {
            values: iter.into_iter().collect(),
        }
    }
}

/// Process-global generation counter behind [`Database::epoch`].
/// Starts at 1 so epoch 0 never occurs and stays free as a sentinel.
static NEXT_EPOCH: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(1);

fn next_epoch() -> u64 {
    NEXT_EPOCH.fetch_add(1, std::sync::atomic::Ordering::Relaxed)
}

/// A database `D`: a catalog of relation instances, keyed by name.
///
/// This is the item collection of the paper's model (Section 2). The
/// catalog is a `BTreeMap` for deterministic iteration.
///
/// Every database carries an *epoch* — a process-globally unique
/// generation token, re-stamped on every mutation — so caches keyed on
/// database identity (e.g. a resident server's compiled-plan cache)
/// can tell two different contents registered under the same name
/// apart. The epoch is bookkeeping, not data: equality ignores it.
#[derive(Debug, Clone)]
pub struct Database {
    relations: BTreeMap<String, Relation>,
    /// Generation token; see the type docs.
    epoch: u64,
}

impl Default for Database {
    fn default() -> Self {
        Database {
            relations: BTreeMap::new(),
            epoch: next_epoch(),
        }
    }
}

impl PartialEq for Database {
    fn eq(&self, other: &Self) -> bool {
        // Structural equality only: the epoch is cache-invalidation
        // bookkeeping, and two builds of the same content must compare
        // equal.
        self.relations == other.relations
    }
}

impl Eq for Database {}

impl Database {
    /// An empty database.
    pub fn new() -> Self {
        Self::default()
    }

    /// The generation token: distinct whenever the contents could be.
    /// Any two databases that were ever observably different — or the
    /// same database before and after a mutation — carry different
    /// epochs, so `(name, epoch)` is a sound cache key where a name
    /// alone is not.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Stamp a fresh generation; called by every mutating method.
    fn touch(&mut self) {
        self.epoch = next_epoch();
    }

    /// Add a relation; errors if the name is taken.
    pub fn add_relation(&mut self, rel: Relation) -> Result<()> {
        let name = rel.schema().name().to_string();
        if self.relations.contains_key(&name) {
            return Err(DataError::DuplicateRelation(name));
        }
        self.relations.insert(name, rel);
        self.touch();
        Ok(())
    }

    /// Add or replace a relation.
    pub fn set_relation(&mut self, rel: Relation) {
        self.relations
            .insert(rel.schema().name().to_string(), rel);
        self.touch();
    }

    /// Create an empty relation under `schema` and add it.
    pub fn add_empty(&mut self, schema: RelationSchema) -> Result<()> {
        self.add_relation(Relation::empty(schema))
    }

    /// Look up a relation by name.
    pub fn relation(&self, name: &str) -> Option<&Relation> {
        self.relations.get(name)
    }

    /// Look up a relation by name, as an error-carrying result.
    pub fn relation_required(&self, name: &str) -> Result<&Relation> {
        self.relations
            .get(name)
            .ok_or_else(|| DataError::UnknownRelation(name.to_string()))
    }

    /// Mutable lookup. Conservatively stamps a fresh epoch: handing out
    /// `&mut` means the contents may change.
    pub fn relation_mut(&mut self, name: &str) -> Option<&mut Relation> {
        if self.relations.contains_key(name) {
            self.touch();
        }
        self.relations.get_mut(name)
    }

    /// Remove a relation, returning it if present.
    pub fn remove_relation(&mut self, name: &str) -> Option<Relation> {
        let removed = self.relations.remove(name);
        if removed.is_some() {
            self.touch();
        }
        removed
    }

    /// Iterate over relations in name order.
    pub fn relations(&self) -> impl Iterator<Item = &Relation> + '_ {
        self.relations.values()
    }

    /// Names of all relations, in order.
    pub fn relation_names(&self) -> Vec<&str> {
        self.relations.keys().map(String::as_str).collect()
    }

    /// Total number of tuples across all relations — the `|D|` that the
    /// paper's polynomial package-size bound `p(|D|)` is measured in.
    pub fn size(&self) -> usize {
        self.relations.values().map(Relation::len).sum()
    }

    /// Insert a tuple into a named relation.
    pub fn insert(&mut self, rel: &str, t: Tuple) -> Result<bool> {
        let inserted = self
            .relations
            .get_mut(rel)
            .ok_or_else(|| DataError::UnknownRelation(rel.to_string()))?
            .insert(t)?;
        if inserted {
            self.touch();
        }
        Ok(inserted)
    }

    /// Remove a tuple from a named relation; `Ok(false)` if absent.
    pub fn delete(&mut self, rel: &str, t: &Tuple) -> Result<bool> {
        let removed = self
            .relations
            .get_mut(rel)
            .ok_or_else(|| DataError::UnknownRelation(rel.to_string()))?
            .remove(t);
        if removed {
            self.touch();
        }
        Ok(removed)
    }

    /// The active domain `adom(D)`: every value in every relation.
    pub fn active_domain(&self) -> ActiveDomain {
        self.relations
            .values()
            .flat_map(|r| r.iter().flat_map(|t| t.values().iter().cloned()))
            .collect()
    }

    /// A copy of this database with one extra relation bound — used to
    /// evaluate compatibility constraints `Qc(N, D)`, where the package
    /// `N` is exposed as the answer relation `R_Q`.
    pub fn with_relation(&self, rel: Relation) -> Database {
        let mut db = self.clone();
        db.set_relation(rel);
        db
    }
}

impl fmt::Display for Database {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for r in self.relations.values() {
            write!(f, "{r}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{tuple, AttrType};

    fn db() -> Database {
        let mut db = Database::new();
        let r = RelationSchema::new("r", [("a", AttrType::Int)]).unwrap();
        let s = RelationSchema::new("s", [("b", AttrType::Str)]).unwrap();
        db.add_relation(Relation::from_tuples(r, [tuple![1], tuple![2]]).unwrap())
            .unwrap();
        db.add_relation(Relation::from_tuples(s, [tuple!["x"]]).unwrap())
            .unwrap();
        db
    }

    #[test]
    fn size_counts_all_tuples() {
        assert_eq!(db().size(), 3);
    }

    #[test]
    fn duplicate_relation_rejected() {
        let mut d = db();
        let r = RelationSchema::new("r", [("a", AttrType::Int)]).unwrap();
        assert!(d.add_empty(r).is_err());
    }

    #[test]
    fn insert_and_delete() {
        let mut d = db();
        assert!(d.insert("r", tuple![3]).unwrap());
        assert_eq!(d.size(), 4);
        assert!(d.delete("r", &tuple![3]).unwrap());
        assert!(!d.delete("r", &tuple![3]).unwrap());
        assert!(d.insert("nope", tuple![3]).is_err());
    }

    #[test]
    fn active_domain_collects_all_values() {
        let dom = db().active_domain();
        assert_eq!(dom.len(), 3);
        assert!(dom.contains(&Value::Int(1)));
        assert!(dom.contains(&Value::str("x")));
    }

    #[test]
    fn with_relation_overlays_without_mutating() {
        let d = db();
        let extra = RelationSchema::new("rq", [("a", AttrType::Int)]).unwrap();
        let overlay = d.with_relation(Relation::from_tuples(extra, [tuple![9]]).unwrap());
        assert!(overlay.relation("rq").is_some());
        assert!(d.relation("rq").is_none());
    }

    #[test]
    fn required_lookup_errors() {
        assert!(matches!(
            db().relation_required("zzz"),
            Err(DataError::UnknownRelation(_))
        ));
    }

    #[test]
    fn epochs_are_unique_and_bump_on_mutation() {
        let a = Database::new();
        let b = Database::new();
        assert_ne!(a.epoch(), b.epoch(), "fresh databases get distinct epochs");

        let mut d = db();
        let e0 = d.epoch();
        assert!(d.insert("r", tuple![9]).unwrap());
        let e1 = d.epoch();
        assert_ne!(e0, e1, "insert must re-stamp the epoch");
        // A no-op insert (duplicate) leaves the epoch alone.
        assert!(!d.insert("r", tuple![9]).unwrap());
        assert_eq!(d.epoch(), e1);
        assert!(d.delete("r", &tuple![9]).unwrap());
        assert_ne!(d.epoch(), e1);
        let e2 = d.epoch();
        assert!(!d.delete("r", &tuple![9]).unwrap());
        assert_eq!(d.epoch(), e2, "deleting an absent tuple is a no-op");
        d.remove_relation("s").unwrap();
        assert_ne!(d.epoch(), e2);
        let e3 = d.epoch();
        assert!(d.remove_relation("s").is_none());
        assert_eq!(d.epoch(), e3);
        d.relation_mut("r").unwrap();
        assert_ne!(d.epoch(), e3, "handing out &mut re-stamps conservatively");
    }

    #[test]
    fn equality_ignores_the_epoch() {
        // Two independent builds of the same content have different
        // epochs but must still compare equal — the epoch is cache
        // bookkeeping, not data.
        let a = db();
        let b = db();
        assert_ne!(a.epoch(), b.epoch());
        assert_eq!(a, b);
    }
}
