//! Offline partition index for the SketchRefine approximate engine.
//!
//! "Scalable Package Queries in Relational Database Systems" (Brucato
//! et al.) makes million-tuple package queries tractable by splitting
//! the item pool into partitions, solving a *sketch* over one
//! representative tuple per partition, then *refining* partition by
//! partition. This module is the offline half of that strategy: a
//! deterministic, hierarchical clustering of an item slice over its
//! numeric columns, with one representative per node and per-partition
//! size/aggregate metadata.
//!
//! The index is a tree rather than a flat partitioning because the
//! online half solves each sketch with the exact (exponential) package
//! enumerator: every pool it is handed must stay small, so a
//! million-item pool needs `log_fanout` levels of representatives, not
//! one level of a thousand.
//!
//! Two invariants the online engine relies on:
//!
//! * **Representatives are real items.** Every `rep` is an index into
//!   the clustered slice, so any package assembled from representatives
//!   is a genuine candidate package — its cost, rating and
//!   compatibility can be checked for real, never estimated.
//! * **An internal node's representative is one of its children's
//!   representatives.** Refining a node therefore *keeps* the chosen
//!   tuple available (now standing for the child) while exposing the
//!   sibling representatives — each refinement step strictly descends
//!   the tree, so refinement terminates.
//!
//! Construction is deterministic: the same items, columns and seed
//! produce the identical tree (pinned by tests), which keeps the
//! benchmark reports reproducible.

use crate::Tuple;

/// Tuning knobs for [`PartitionIndex::build`].
#[derive(Debug, Clone, PartialEq)]
pub struct PartitionParams {
    /// Maximum children per internal node — and therefore the largest
    /// representative pool the sketch solve sees at once.
    pub fanout: usize,
    /// Maximum items in a leaf partition: the pool size of a per-leaf
    /// refine solve.
    pub leaf_cap: usize,
    /// Seed for the k-means center jitter.
    pub seed: u64,
    /// Columns clustered on (the cost/val numeric columns). Empty means
    /// no numeric structure: items are split into contiguous chunks.
    pub columns: Vec<usize>,
}

impl Default for PartitionParams {
    fn default() -> Self {
        PartitionParams {
            fanout: 16,
            leaf_cap: 16,
            seed: 0x5EED_C0DE,
            columns: Vec::new(),
        }
    }
}

/// One partition: a tree node over a contiguous set of item indices.
#[derive(Debug, Clone, PartialEq)]
pub struct PartitionNode {
    /// Index (into the clustered slice) of this partition's
    /// representative item. Always a member of the partition; for
    /// internal nodes, always the representative of one of `children`.
    pub rep: usize,
    /// Child node ids; empty for leaves.
    pub children: Vec<usize>,
    /// Item indices of a leaf partition (empty for internal nodes —
    /// their items are the union of their descendants').
    pub items: Vec<usize>,
    /// Number of items under this node.
    pub size: usize,
    /// Per-column minimum over the partition's items (parallel to
    /// `PartitionParams::columns`).
    pub mins: Vec<f64>,
    /// Per-column maximum.
    pub maxs: Vec<f64>,
    /// Per-column sum.
    pub sums: Vec<f64>,
}

impl PartitionNode {
    /// Whether this node is a leaf partition.
    pub fn is_leaf(&self) -> bool {
        self.children.is_empty()
    }
}

/// A hierarchical partitioning of an item slice; see the module docs.
#[derive(Debug, Clone, PartialEq)]
pub struct PartitionIndex {
    params: PartitionParams,
    nodes: Vec<PartitionNode>,
    root: usize,
    items_len: usize,
}

/// The split-mix pseudo-random step used for center jitter — tiny,
/// seedable and stable across platforms.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Squared Euclidean distance between feature points.
fn dist2(a: &[f64], b: &[f64]) -> f64 {
    a.iter().zip(b).map(|(x, y)| (x - y) * (x - y)).sum()
}

/// Past this depth the clustering falls back to chunked splits, which
/// divide by `fanout` unconditionally — a backstop against adversarial
/// value distributions where k-means keeps shaving off single points.
const MAX_CLUSTER_DEPTH: usize = 32;

/// Lloyd iterations per clustering round (on the center sample).
const LLOYD_ITERATIONS: usize = 4;

/// Cap on the sample Lloyd's iteration runs over; assignment of the
/// full set is always a single exact pass afterwards.
const CENTER_SAMPLE: usize = 2048;

struct Builder<'a> {
    items: &'a [Tuple],
    params: &'a PartitionParams,
    /// Per-item feature points, normalized per column to [0, 1] over
    /// the whole slice (so no column dominates the distances).
    features: Vec<Vec<f64>>,
    nodes: Vec<PartitionNode>,
    rng: u64,
}

impl Builder<'_> {
    /// Numeric value of an item column (`0` for missing/non-numeric —
    /// the same convention the aggregate `PackageFn`s use).
    fn raw(&self, item: usize, col: usize) -> f64 {
        self.items[item]
            .get(col)
            .and_then(|v| v.as_numeric())
            .unwrap_or(0) as f64
    }

    /// Aggregate metadata for a set of items.
    fn aggregates(&self, set: &[usize]) -> (Vec<f64>, Vec<f64>, Vec<f64>) {
        let cols = &self.params.columns;
        let mut mins = vec![f64::INFINITY; cols.len()];
        let mut maxs = vec![f64::NEG_INFINITY; cols.len()];
        let mut sums = vec![0.0; cols.len()];
        for &i in set {
            for (c, &col) in cols.iter().enumerate() {
                let v = self.raw(i, col);
                mins[c] = mins[c].min(v);
                maxs[c] = maxs[c].max(v);
                sums[c] += v;
            }
        }
        (mins, maxs, sums)
    }

    /// The member of `set` whose feature point is closest to `center`
    /// (ties: the smallest item index, which comes first in `set`).
    fn closest(&self, set: &[usize], center: &[f64]) -> usize {
        let mut best = set[0];
        let mut best_d = f64::INFINITY;
        for &i in set {
            let d = dist2(&self.features[i], center);
            if d < best_d {
                best_d = d;
                best = i;
            }
        }
        best
    }

    /// Mean feature point of a set.
    fn centroid(&self, set: &[usize]) -> Vec<f64> {
        let dims = self.features.first().map_or(0, Vec::len);
        let mut c = vec![0.0; dims];
        for &i in set {
            for (acc, v) in c.iter_mut().zip(&self.features[i]) {
                *acc += v;
            }
        }
        for acc in &mut c {
            *acc /= set.len() as f64;
        }
        c
    }

    /// Split `set` into at most `fanout` contiguous chunks — the
    /// structure-free fallback (no numeric columns, degenerate
    /// clusters, or the depth backstop).
    fn chunk_split(&self, set: &[usize]) -> Vec<Vec<usize>> {
        let k = self.params.fanout.max(2).min(set.len());
        let per = set.len().div_ceil(k);
        set.chunks(per).map(<[usize]>::to_vec).collect()
    }

    /// One k-means-style round: jittered initial centers, a few Lloyd
    /// iterations over a bounded sample, then one exact assignment pass
    /// over the full set. Falls back to [`chunk_split`] when the values
    /// carry no usable structure.
    fn cluster(&mut self, set: &[usize], depth: usize) -> Vec<Vec<usize>> {
        let n = set.len();
        let k = self.params.fanout.max(2).min(n);
        if self.params.columns.is_empty() || depth >= MAX_CLUSTER_DEPTH {
            return self.chunk_split(set);
        }

        // Initial centers: one per stride, jittered by the seed so the
        // seed genuinely changes the tree.
        let stride = n / k;
        let mut centers: Vec<Vec<f64>> = (0..k)
            .map(|j| {
                let lo = j * stride;
                let jitter = (splitmix64(&mut self.rng) as usize) % stride.max(1);
                self.features[set[(lo + jitter).min(n - 1)]].clone()
            })
            .collect();

        // Lloyd's iteration over a bounded, evenly spaced sample.
        let sample: Vec<usize> = if n <= CENTER_SAMPLE {
            set.to_vec()
        } else {
            (0..CENTER_SAMPLE).map(|i| set[i * n / CENTER_SAMPLE]).collect()
        };
        for _ in 0..LLOYD_ITERATIONS {
            let mut acc = vec![vec![0.0; centers[0].len()]; k];
            let mut cnt = vec![0usize; k];
            for &i in &sample {
                let j = self.nearest_center(&centers, &self.features[i]);
                for (a, v) in acc[j].iter_mut().zip(&self.features[i]) {
                    *a += v;
                }
                cnt[j] += 1;
            }
            for j in 0..k {
                if cnt[j] > 0 {
                    for a in &mut acc[j] {
                        *a /= cnt[j] as f64;
                    }
                    centers[j] = std::mem::take(&mut acc[j]);
                }
            }
        }

        // Exact assignment of the full set.
        let mut clusters: Vec<Vec<usize>> = vec![Vec::new(); k];
        for &i in set {
            let j = self.nearest_center(&centers, &self.features[i]);
            clusters[j].push(i);
        }
        clusters.retain(|c| !c.is_empty());
        // Degenerate (all points identical / one attractor): no
        // progress is possible by value, so split positionally.
        if clusters.len() < 2 {
            return self.chunk_split(set);
        }
        clusters
    }

    /// Index of the nearest center (ties: the lowest center id).
    fn nearest_center(&self, centers: &[Vec<f64>], point: &[f64]) -> usize {
        let mut best = 0;
        let mut best_d = f64::INFINITY;
        for (j, c) in centers.iter().enumerate() {
            let d = dist2(c, point);
            if d < best_d {
                best_d = d;
                best = j;
            }
        }
        best
    }

    /// Build the subtree over `set`; returns the node id.
    fn build_node(&mut self, set: Vec<usize>, depth: usize) -> usize {
        let (mins, maxs, sums) = self.aggregates(&set);
        if set.len() <= self.params.leaf_cap {
            let center = self.centroid(&set);
            let rep = self.closest(&set, &center);
            self.nodes.push(PartitionNode {
                rep,
                children: Vec::new(),
                size: set.len(),
                items: set,
                mins,
                maxs,
                sums,
            });
            return self.nodes.len() - 1;
        }
        let clusters = self.cluster(&set, depth);
        let children: Vec<usize> = clusters
            .into_iter()
            .map(|c| self.build_node(c, depth + 1))
            .collect();
        // The representative is the rep of the child closest to this
        // node's centroid — a member of the partition *and* of the
        // child pool the refine step will expose.
        let center = self.centroid(&set);
        let child_reps: Vec<usize> = children.iter().map(|&c| self.nodes[c].rep).collect();
        let rep = self.closest(&child_reps, &center);
        self.nodes.push(PartitionNode {
            rep,
            children,
            items: Vec::new(),
            size: set.len(),
            mins,
            maxs,
            sums,
        });
        self.nodes.len() - 1
    }
}

impl PartitionIndex {
    /// Cluster `items` under `params`. Deterministic: the same inputs
    /// produce the identical index. An empty slice yields an index with
    /// one empty leaf, so callers need no special case.
    pub fn build(items: &[Tuple], params: &PartitionParams) -> PartitionIndex {
        if items.is_empty() {
            return PartitionIndex {
                params: params.clone(),
                nodes: vec![PartitionNode {
                    rep: 0,
                    children: Vec::new(),
                    items: Vec::new(),
                    size: 0,
                    mins: vec![f64::INFINITY; params.columns.len()],
                    maxs: vec![f64::NEG_INFINITY; params.columns.len()],
                    sums: vec![0.0; params.columns.len()],
                }],
                root: 0,
                items_len: 0,
            };
        }
        // Normalize each clustered column to [0, 1] over the whole
        // slice so distance is scale-free.
        let mut b = Builder {
            items,
            params,
            features: Vec::new(),
            nodes: Vec::new(),
            rng: params.seed,
        };
        let cols = &params.columns;
        let (mins, maxs, _) = b.aggregates(&(0..items.len()).collect::<Vec<_>>());
        b.features = (0..items.len())
            .map(|i| {
                cols.iter()
                    .enumerate()
                    .map(|(c, &col)| {
                        let span = maxs[c] - mins[c];
                        if span > 0.0 {
                            (b.raw(i, col) - mins[c]) / span
                        } else {
                            0.0
                        }
                    })
                    .collect()
            })
            .collect();
        let root = b.build_node((0..items.len()).collect(), 0);
        PartitionIndex {
            params: params.clone(),
            nodes: b.nodes,
            root,
            items_len: items.len(),
        }
    }

    /// The parameters the index was built with.
    pub fn params(&self) -> &PartitionParams {
        &self.params
    }

    /// The root node id.
    pub fn root(&self) -> usize {
        self.root
    }

    /// A node by id.
    pub fn node(&self, id: usize) -> &PartitionNode {
        &self.nodes[id]
    }

    /// All nodes, in construction (post-)order.
    pub fn nodes(&self) -> &[PartitionNode] {
        &self.nodes
    }

    /// Number of nodes in the tree.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Whether the index covers no items.
    pub fn is_empty(&self) -> bool {
        self.items_len == 0
    }

    /// Number of items the index was built over.
    pub fn items_len(&self) -> usize {
        self.items_len
    }

    /// Number of leaf partitions.
    pub fn leaves(&self) -> usize {
        self.nodes.iter().filter(|n| n.is_leaf()).count()
    }

    /// Tree depth (a single-leaf index has depth 1).
    pub fn depth(&self) -> usize {
        fn depth_of(idx: &PartitionIndex, id: usize) -> usize {
            1 + idx
                .node(id)
                .children
                .iter()
                .map(|&c| depth_of(idx, c))
                .max()
                .unwrap_or(0)
        }
        depth_of(self, self.root)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tuple;

    fn items(n: usize) -> Vec<Tuple> {
        // Two numeric columns with different scales plus a string.
        (0..n)
            .map(|i| tuple![(i % 97) as i64, (i * 13 % 1009) as i64, "x"])
            .collect()
    }

    fn params() -> PartitionParams {
        PartitionParams {
            fanout: 4,
            leaf_cap: 8,
            seed: 7,
            columns: vec![0, 1],
        }
    }

    /// Collect all item indices under a node.
    fn items_under(idx: &PartitionIndex, id: usize, out: &mut Vec<usize>) {
        let n = idx.node(id);
        if n.is_leaf() {
            out.extend_from_slice(&n.items);
        } else {
            for &c in &n.children {
                items_under(idx, c, out);
            }
        }
    }

    #[test]
    fn partitions_cover_all_items_exactly_once() {
        let its = items(300);
        let idx = PartitionIndex::build(&its, &params());
        let mut covered = Vec::new();
        items_under(&idx, idx.root(), &mut covered);
        covered.sort_unstable();
        assert_eq!(covered, (0..300).collect::<Vec<_>>());
        assert_eq!(idx.node(idx.root()).size, 300);
        assert!(idx.depth() >= 2);
    }

    #[test]
    fn node_invariants_hold_everywhere() {
        let its = items(300);
        let p = params();
        let idx = PartitionIndex::build(&its, &p);
        for (id, node) in idx.nodes().iter().enumerate() {
            let mut under = Vec::new();
            items_under(&idx, id, &mut under);
            assert_eq!(node.size, under.len());
            // The representative is a real member of the partition.
            assert!(under.contains(&node.rep), "rep must live in its partition");
            if node.is_leaf() {
                assert!(node.items.len() <= p.leaf_cap);
            } else {
                assert!(node.children.len() <= p.fanout);
                // … and for internal nodes, one of the children's reps.
                assert!(
                    node.children.iter().any(|&c| idx.node(c).rep == node.rep),
                    "internal rep must be a child rep (refinement descends)"
                );
            }
            // Aggregates are over the real column values.
            for (c, &col) in p.columns.iter().enumerate() {
                let vals: Vec<f64> = under
                    .iter()
                    .map(|&i| its[i].get(col).unwrap().as_numeric().unwrap() as f64)
                    .collect();
                let min = vals.iter().cloned().fold(f64::INFINITY, f64::min);
                let max = vals.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
                let sum: f64 = vals.iter().sum();
                assert_eq!(node.mins[c], min);
                assert_eq!(node.maxs[c], max);
                assert!((node.sums[c] - sum).abs() < 1e-9);
            }
        }
    }

    #[test]
    fn same_seed_same_tree_different_seed_may_differ() {
        let its = items(200);
        let p = params();
        let a = PartitionIndex::build(&its, &p);
        let b = PartitionIndex::build(&its, &p);
        assert_eq!(a, b, "identical inputs must give the identical index");
        let other = PartitionIndex::build(&its, &PartitionParams { seed: 8, ..p });
        // Not asserting inequality (a tiny instance may cluster the
        // same way), only that the build is well-formed.
        assert_eq!(other.node(other.root()).size, 200);
    }

    #[test]
    fn no_columns_chunks_positionally() {
        let its = items(100);
        let p = PartitionParams {
            columns: vec![],
            fanout: 4,
            leaf_cap: 10,
            seed: 1,
        };
        let idx = PartitionIndex::build(&its, &p);
        let mut covered = Vec::new();
        items_under(&idx, idx.root(), &mut covered);
        covered.sort_unstable();
        assert_eq!(covered.len(), 100);
        assert!(idx.leaves() >= 10);
    }

    #[test]
    fn identical_values_still_terminate() {
        // All-equal features defeat k-means; the chunk fallback must
        // still split the set down to leaves.
        let its: Vec<Tuple> = (0..100).map(|_| tuple![5, 5]).collect();
        let idx = PartitionIndex::build(&its, &params());
        assert!(idx.leaves() > 1);
        let mut covered = Vec::new();
        items_under(&idx, idx.root(), &mut covered);
        assert_eq!(covered.len(), 100);
    }

    #[test]
    fn small_and_empty_inputs() {
        let idx = PartitionIndex::build(&[], &params());
        assert!(idx.is_empty());
        assert_eq!(idx.len(), 1);
        assert!(idx.node(idx.root()).is_leaf());

        let one = [tuple![1, 2]];
        let idx = PartitionIndex::build(&one, &params());
        assert_eq!(idx.len(), 1);
        assert_eq!(idx.node(idx.root()).rep, 0);
        assert_eq!(idx.items_len(), 1);
    }
}
