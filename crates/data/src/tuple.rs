use std::fmt;
use std::sync::Arc;


use crate::Value;

/// An immutable database row.
///
/// Tuples are the items of the paper's model: a package is a set of
/// tuples drawn from a query answer `Q(D)` (Section 2). They are shared
/// via `Arc` because package enumeration clones tuples heavily — a clone
/// is a pointer copy.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Tuple(Arc<[Value]>);

impl Tuple {
    /// Build a tuple from values.
    pub fn new(values: impl Into<Vec<Value>>) -> Self {
        Tuple(Arc::from(values.into()))
    }

    /// Number of attributes (the tuple's arity).
    pub fn arity(&self) -> usize {
        self.0.len()
    }

    /// The values of this tuple.
    pub fn values(&self) -> &[Value] {
        &self.0
    }

    /// The value in position `i`, if in range.
    pub fn get(&self, i: usize) -> Option<&Value> {
        self.0.get(i)
    }

    /// Concatenate two tuples (used for Cartesian products in evaluation).
    pub fn concat(&self, other: &Tuple) -> Tuple {
        let mut v = Vec::with_capacity(self.arity() + other.arity());
        v.extend_from_slice(&self.0);
        v.extend_from_slice(&other.0);
        Tuple::new(v)
    }

    /// Project onto the given positions. Positions out of range are an
    /// internal logic error and panic.
    pub fn project(&self, positions: &[usize]) -> Tuple {
        Tuple::new(
            positions
                .iter()
                .map(|&i| self.0[i].clone())
                .collect::<Vec<_>>(),
        )
    }
}

impl std::ops::Index<usize> for Tuple {
    type Output = Value;
    fn index(&self, i: usize) -> &Value {
        &self.0[i]
    }
}

impl FromIterator<Value> for Tuple {
    fn from_iter<I: IntoIterator<Item = Value>>(iter: I) -> Self {
        Tuple(iter.into_iter().collect::<Vec<_>>().into())
    }
}

impl fmt::Display for Tuple {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "(")?;
        for (i, v) in self.0.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{v}")?;
        }
        write!(f, ")")
    }
}

/// Convenience macro for building tuples from heterogeneous literals.
///
/// ```
/// use pkgrec_data::{tuple, Value};
/// let t = tuple![1, "edi", true];
/// assert_eq!(t[1], Value::str("edi"));
/// ```
#[macro_export]
macro_rules! tuple {
    ($($v:expr),* $(,)?) => {
        $crate::Tuple::new(vec![$($crate::Value::from($v)),*])
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_access() {
        let t = tuple![1, "a", false];
        assert_eq!(t.arity(), 3);
        assert_eq!(t[0], Value::Int(1));
        assert_eq!(t.get(2), Some(&Value::Bool(false)));
        assert_eq!(t.get(3), None);
    }

    #[test]
    fn concat_preserves_order() {
        let t = tuple![1, 2].concat(&tuple![3]);
        assert_eq!(t, tuple![1, 2, 3]);
    }

    #[test]
    fn project_reorders_and_duplicates() {
        let t = tuple![10, 20, 30];
        assert_eq!(t.project(&[2, 0, 0]), tuple![30, 10, 10]);
    }

    #[test]
    fn display_is_parenthesized() {
        assert_eq!(tuple![1, "x"].to_string(), "(1, x)");
    }

    #[test]
    fn clone_is_shallow() {
        let t = tuple![1, 2, 3];
        let u = t.clone();
        assert_eq!(t, u);
        // Same allocation: Arc pointer equality.
        assert!(std::ptr::eq(t.values().as_ptr(), u.values().as_ptr()));
    }
}
