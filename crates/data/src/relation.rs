use std::collections::{BTreeSet, HashMap};
use std::fmt;
use std::sync::Arc;

use crate::{ColumnarRelation, RelationSchema, Result, Tuple, Value};

/// A relation instance: a set of tuples under a [`RelationSchema`].
///
/// Tuples are stored in a `BTreeSet` so iteration order is canonical —
/// every solver, counter and bench in the workspace is deterministic as a
/// consequence. Hash indexes on single columns are built lazily by query
/// evaluation (see [`Relation::index`]) and invalidated on mutation. The
/// index cache sits behind an `RwLock` (not a `RefCell`) so a relation
/// can be probed concurrently by the parallel search workers; reads
/// share the lock and only the first probe of a column takes it
/// exclusively. Buckets are `Arc<[Tuple]>` so a probe hands out a
/// shared reference — no per-probe allocation or tuple cloning.
#[derive(Debug)]
pub struct Relation {
    schema: RelationSchema,
    tuples: BTreeSet<Tuple>,
    /// Lazily built per-column indexes: column position → value → tuples.
    indexes: std::sync::RwLock<IndexCache>,
    /// Lazily built columnar (struct-of-arrays) layout, cached with the
    /// same discipline as `indexes`: double-checked build, cleared on
    /// mutation, never copied by `Clone`. See [`ColumnarRelation`].
    columnar: std::sync::RwLock<Option<Arc<ColumnarRelation>>>,
}

/// Per-column hash indexes: column position → value → shared bucket.
type IndexCache = HashMap<usize, HashMap<Value, Arc<[Tuple]>>>;

impl Clone for Relation {
    fn clone(&self) -> Self {
        Relation {
            schema: self.schema.clone(),
            tuples: self.tuples.clone(),
            // The caches rebuild lazily; cloning them would just copy work.
            indexes: Default::default(),
            columnar: Default::default(),
        }
    }
}

impl PartialEq for Relation {
    fn eq(&self, other: &Self) -> bool {
        self.schema == other.schema && self.tuples == other.tuples
    }
}

impl Eq for Relation {}

impl Relation {
    /// An empty relation under the given schema.
    pub fn empty(schema: RelationSchema) -> Self {
        Relation {
            schema,
            tuples: BTreeSet::new(),
            indexes: Default::default(),
            columnar: Default::default(),
        }
    }

    /// A relation populated from an iterator of tuples, each checked
    /// against the schema.
    pub fn from_tuples(
        schema: RelationSchema,
        tuples: impl IntoIterator<Item = Tuple>,
    ) -> Result<Self> {
        let mut r = Relation::empty(schema);
        for t in tuples {
            r.insert(t)?;
        }
        Ok(r)
    }

    /// Like [`Relation::from_tuples`] but without type checking — for
    /// internal construction of query answers whose schema is untyped.
    pub fn from_tuples_unchecked(
        schema: RelationSchema,
        tuples: impl IntoIterator<Item = Tuple>,
    ) -> Self {
        Relation {
            schema,
            tuples: tuples.into_iter().collect(),
            indexes: Default::default(),
            columnar: Default::default(),
        }
    }

    /// The relation's schema.
    pub fn schema(&self) -> &RelationSchema {
        &self.schema
    }

    /// Number of tuples.
    pub fn len(&self) -> usize {
        self.tuples.len()
    }

    /// Whether the relation is empty.
    pub fn is_empty(&self) -> bool {
        self.tuples.is_empty()
    }

    /// Insert a tuple after schema-checking it. Returns whether the tuple
    /// was new.
    pub fn insert(&mut self, t: Tuple) -> Result<bool> {
        self.schema.check_tuple(&t)?;
        let new = self.tuples.insert(t);
        if new {
            self.invalidate_caches();
        }
        Ok(new)
    }

    /// Remove a tuple. Returns whether it was present.
    pub fn remove(&mut self, t: &Tuple) -> bool {
        let removed = self.tuples.remove(t);
        if removed {
            self.invalidate_caches();
        }
        removed
    }

    /// Drop every lazily built access structure after a mutation.
    fn invalidate_caches(&mut self) {
        self.indexes
            .get_mut()
            .unwrap_or_else(|e| e.into_inner())
            .clear();
        *self.columnar.get_mut().unwrap_or_else(|e| e.into_inner()) = None;
    }

    /// Membership test.
    pub fn contains(&self, t: &Tuple) -> bool {
        self.tuples.contains(t)
    }

    /// Iterate over tuples in canonical order.
    pub fn iter(&self) -> impl Iterator<Item = &Tuple> + '_ {
        self.tuples.iter()
    }

    /// All tuples, cloned, in canonical order.
    pub fn tuples(&self) -> Vec<Tuple> {
        self.tuples.iter().cloned().collect()
    }

    /// Tuples whose column `col` equals `v`, via a lazily built hash
    /// index: a shared bucket in canonical order, or `None` when no
    /// tuple matches. Cloning the returned `Arc` is a refcount bump, so
    /// repeated probes do no per-probe allocation.
    ///
    /// Poisoned locks are recovered rather than propagated: the `entry`
    /// API only inserts a finished index (the builder closure returns
    /// the complete map or unwinds before insertion), so the cache is
    /// never observable half-built and a panic elsewhere in the process
    /// must not wedge every future probe of this relation.
    pub fn lookup(&self, col: usize, v: &Value) -> Option<Arc<[Tuple]>> {
        if let Some(index) = self
            .indexes
            .read()
            .unwrap_or_else(|e| e.into_inner())
            .get(&col)
        {
            return index.get(v).cloned();
        }
        // Double-checked build: two probes can both miss the read lock
        // above; `entry` re-probes under the write lock so the second
        // thread reuses the first one's index instead of rebuilding it
        // (the `query.index_builds` counter pins at-most-once builds).
        let mut indexes = self.indexes.write().unwrap_or_else(|e| e.into_inner());
        let index = indexes.entry(col).or_insert_with(|| {
            pkgrec_trace::counter!("query.index_builds");
            let mut m: HashMap<Value, Vec<Tuple>> = HashMap::new();
            for t in &self.tuples {
                m.entry(t[col].clone()).or_default().push(t.clone());
            }
            m.into_iter().map(|(k, b)| (k, Arc::from(b))).collect()
        });
        index.get(v).cloned()
    }

    /// Hint used by `lookup` consumers: `index(col)` forces index
    /// construction, which amortizes repeated probes in joins.
    pub fn index(&self, col: usize) {
        let _ = self.lookup(col, &Value::Int(i64::MIN));
    }

    /// The columnar (struct-of-arrays + per-column bitset index) layout
    /// of this relation, built lazily on first use and cached until the
    /// next mutation — the same double-checked, poison-recovering
    /// discipline as [`Relation::lookup`]'s index cache. The handle is
    /// `Arc`-shared, so compiled plans can keep the layout alive past a
    /// mutation of the relation (they snapshot, exactly as they snapshot
    /// tuples).
    pub fn columnar(&self) -> Arc<ColumnarRelation> {
        if let Some(c) = self
            .columnar
            .read()
            .unwrap_or_else(|e| e.into_inner())
            .as_ref()
        {
            return Arc::clone(c);
        }
        let mut slot = self.columnar.write().unwrap_or_else(|e| e.into_inner());
        Arc::clone(slot.get_or_insert_with(|| {
            pkgrec_trace::counter!("query.index_builds");
            Arc::new(ColumnarRelation::build(self))
        }))
    }

    /// All distinct values appearing anywhere in the relation.
    pub fn value_set(&self) -> BTreeSet<Value> {
        self.tuples
            .iter()
            .flat_map(|t| t.values().iter().cloned())
            .collect()
    }

    /// Distinct values in one column.
    pub fn column_values(&self, col: usize) -> BTreeSet<Value> {
        self.tuples.iter().map(|t| t[col].clone()).collect()
    }
}

impl fmt::Display for Relation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "{}", self.schema)?;
        for t in &self.tuples {
            writeln!(f, "  {t}")?;
        }
        Ok(())
    }
}

impl<'a> IntoIterator for &'a Relation {
    type Item = &'a Tuple;
    type IntoIter = std::collections::btree_set::Iter<'a, Tuple>;
    fn into_iter(self) -> Self::IntoIter {
        self.tuples.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{tuple, AttrType};

    fn rel() -> Relation {
        let schema =
            RelationSchema::new("r", [("a", AttrType::Int), ("b", AttrType::Str)]).unwrap();
        Relation::from_tuples(
            schema,
            [tuple![1, "x"], tuple![2, "y"], tuple![1, "z"]],
        )
        .unwrap()
    }

    #[test]
    fn dedup_and_len() {
        let mut r = rel();
        assert_eq!(r.len(), 3);
        assert!(!r.insert(tuple![1, "x"]).unwrap());
        assert_eq!(r.len(), 3);
    }

    #[test]
    fn canonical_iteration_order() {
        let r = rel();
        let order: Vec<Tuple> = r.iter().cloned().collect();
        let mut sorted = order.clone();
        sorted.sort();
        assert_eq!(order, sorted);
    }

    #[test]
    fn lookup_uses_index() {
        let r = rel();
        let hits = r.lookup(0, &Value::Int(1)).expect("two matches");
        assert_eq!(hits.len(), 2);
        assert!(r.lookup(0, &Value::Int(9)).is_none());
    }

    #[test]
    fn lookup_buckets_are_shared_and_canonical() {
        let r = rel();
        let a = r.lookup(0, &Value::Int(1)).unwrap();
        let b = r.lookup(0, &Value::Int(1)).unwrap();
        // Same allocation handed out to every probe.
        assert!(Arc::ptr_eq(&a, &b));
        let mut sorted: Vec<Tuple> = a.to_vec();
        sorted.sort();
        assert_eq!(&*a, &sorted[..]);
    }

    #[test]
    fn mutation_invalidates_index() {
        let mut r = rel();
        assert_eq!(r.lookup(0, &Value::Int(1)).unwrap().len(), 2);
        r.insert(tuple![1, "w"]).unwrap();
        assert_eq!(r.lookup(0, &Value::Int(1)).unwrap().len(), 3);
        r.remove(&tuple![1, "w"]);
        assert_eq!(r.lookup(0, &Value::Int(1)).unwrap().len(), 2);
    }

    /// Satellite regression: concurrent first probes of the same column
    /// must build its index exactly once. Counters are thread-local, so
    /// each prober hands its report back for the main thread to absorb.
    #[test]
    fn concurrent_lookups_build_the_index_at_most_once() {
        let _scope = pkgrec_trace::scoped();
        let r = std::sync::Arc::new(rel());
        let barrier = std::sync::Arc::new(std::sync::Barrier::new(8));
        let mut total = pkgrec_trace::TraceReport::default();
        let handles: Vec<_> = (0..8)
            .map(|_| {
                let r = std::sync::Arc::clone(&r);
                let barrier = std::sync::Arc::clone(&barrier);
                std::thread::spawn(move || {
                    pkgrec_trace::reset();
                    barrier.wait();
                    for _ in 0..100 {
                        let _ = r.lookup(0, &Value::Int(1));
                    }
                    pkgrec_trace::take()
                })
            })
            .collect();
        for h in handles {
            total.merge(&h.join().expect("prober thread"));
        }
        assert_eq!(
            total.counters.get("query.index_builds").copied(),
            Some(1),
            "double-checked rebuild must dedupe concurrent index builds"
        );
    }

    /// Satellite regression: a panic while holding the index lock (as a
    /// crashed search worker would leave it) poisons the `RwLock`, but
    /// the cache must keep serving probes — the resident server reuses
    /// one `Relation` across requests, and a single fault must not
    /// wedge every later lookup.
    #[test]
    fn lookup_recovers_from_poisoned_index_lock() {
        let r = std::sync::Arc::new(rel());
        let r2 = std::sync::Arc::clone(&r);
        std::thread::spawn(move || {
            let _guard = r2.indexes.write().unwrap();
            panic!("poison the index lock");
        })
        .join()
        .expect_err("the poisoning thread panicked");
        assert!(r.indexes.is_poisoned());
        let hits = r.lookup(0, &Value::Int(1)).expect("two matches");
        assert_eq!(hits.len(), 2);
        assert!(r.lookup(0, &Value::Int(9)).is_none());
    }

    #[test]
    fn schema_violations_rejected() {
        let mut r = rel();
        assert!(r.insert(tuple![1]).is_err());
        assert!(r.insert(tuple!["no", "x"]).is_err());
    }

    #[test]
    fn value_sets() {
        let r = rel();
        assert_eq!(r.column_values(0).len(), 2);
        assert_eq!(r.value_set().len(), 5);
    }
}
