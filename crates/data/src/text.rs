//! A small text format for databases, so instances can be built and
//! shipped without writing Rust:
//!
//! ```text
//! # travel catalog
//! relation flight(fno: int, from: str, to: str, dd: int, price: int)
//! 1, edi, nyc, 1, 420
//! 2, edi, nyc, 1, 310
//!
//! relation poi(name: str, city: str, type: str, ticket: int, time: int)
//! met, nyc, museum, 25, 120
//! ```
//!
//! Rows are comma-separated and parsed under the declared column types
//! (`int`, `str`, `bool`); string values are taken verbatim (trimmed),
//! so they may not contain commas. `#`-lines and blank lines are
//! ignored. [`parse_database`] and [`write_database`] round-trip.

use std::fmt::Write as _;

use crate::{AttrType, Database, DataError, Relation, RelationSchema, Tuple, Value};

/// Errors specific to the text format.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TextError {
    /// Malformed syntax with a line number (1-based) and message.
    Syntax {
        /// 1-based line number.
        line: usize,
        /// What went wrong.
        message: String,
    },
    /// A data-layer error (duplicate relations, type mismatches, ...).
    Data(DataError),
}

impl std::fmt::Display for TextError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TextError::Syntax { line, message } => write!(f, "line {line}: {message}"),
            TextError::Data(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for TextError {}

impl From<DataError> for TextError {
    fn from(e: DataError) -> Self {
        TextError::Data(e)
    }
}

fn parse_type(s: &str, line: usize) -> Result<AttrType, TextError> {
    match s {
        "int" => Ok(AttrType::Int),
        "str" => Ok(AttrType::Str),
        "bool" => Ok(AttrType::Bool),
        other => Err(TextError::Syntax {
            line,
            message: format!("unknown type `{other}` (expected int, str or bool)"),
        }),
    }
}

fn parse_value(s: &str, ty: AttrType, line: usize) -> Result<Value, TextError> {
    let s = s.trim();
    match ty {
        AttrType::Int => s.parse::<i64>().map(Value::Int).map_err(|_| TextError::Syntax {
            line,
            message: format!("`{s}` is not an integer"),
        }),
        AttrType::Bool => match s {
            "true" | "1" => Ok(Value::Bool(true)),
            "false" | "0" => Ok(Value::Bool(false)),
            _ => Err(TextError::Syntax {
                line,
                message: format!("`{s}` is not a boolean (true/false/1/0)"),
            }),
        },
        AttrType::Str => Ok(Value::str(s)),
    }
}

/// Parse a database from the text format.
pub fn parse_database(src: &str) -> Result<Database, TextError> {
    let mut db = Database::new();
    let mut current: Option<Relation> = None;

    for (i, raw) in src.lines().enumerate() {
        let line_no = i + 1;
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        if let Some(decl) = line.strip_prefix("relation ") {
            // Flush the previous relation.
            if let Some(rel) = current.take() {
                db.add_relation(rel)?;
            }
            let open = decl.find('(').ok_or_else(|| TextError::Syntax {
                line: line_no,
                message: "expected `relation name(col: type, ...)`".into(),
            })?;
            let name = decl[..open].trim();
            let close = decl.rfind(')').ok_or_else(|| TextError::Syntax {
                line: line_no,
                message: "missing `)` in relation declaration".into(),
            })?;
            let cols = &decl[open + 1..close];
            let mut attrs: Vec<(String, AttrType)> = Vec::new();
            for col in cols.split(',') {
                let col = col.trim();
                if col.is_empty() {
                    continue;
                }
                let (cname, cty) = col.split_once(':').ok_or_else(|| TextError::Syntax {
                    line: line_no,
                    message: format!("column `{col}` must be `name: type`"),
                })?;
                attrs.push((cname.trim().to_string(), parse_type(cty.trim(), line_no)?));
            }
            let schema = RelationSchema::new(name, attrs)?;
            current = Some(Relation::empty(schema));
            continue;
        }
        let Some(rel) = current.as_mut() else {
            return Err(TextError::Syntax {
                line: line_no,
                message: "row before any `relation` declaration".into(),
            });
        };
        let schema = rel.schema().clone();
        let fields: Vec<&str> = line.split(',').collect();
        if fields.len() != schema.arity() {
            return Err(TextError::Syntax {
                line: line_no,
                message: format!(
                    "row has {} fields, relation `{}` has {} columns",
                    fields.len(),
                    schema.name(),
                    schema.arity()
                ),
            });
        }
        let values: Vec<Value> = fields
            .iter()
            .enumerate()
            .map(|(j, f)| {
                parse_value(f, schema.attr_type(j).expect("within arity"), line_no)
            })
            .collect::<Result<_, _>>()?;
        rel.insert(Tuple::new(values))?;
    }
    if let Some(rel) = current.take() {
        db.add_relation(rel)?;
    }
    Ok(db)
}

/// Serialize a database to the text format (canonical: relations and
/// tuples in their stored order).
pub fn write_database(db: &Database) -> String {
    let mut out = String::new();
    for rel in db.relations() {
        let schema = rel.schema();
        let _ = write!(out, "relation {}(", schema.name());
        for (i, a) in schema.attributes().iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            let _ = write!(out, "{}: {}", a.name, a.ty);
        }
        out.push_str(")\n");
        for t in rel.iter() {
            let row: Vec<String> = t.values().iter().map(|v| v.to_string()).collect();
            let _ = writeln!(out, "{}", row.join(", "));
        }
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tuple;

    const SAMPLE: &str = "\
# travel catalog
relation flight(fno: int, to: str, direct: bool)
1, nyc, true
2, bos, false

relation city(name: str)
nyc
bos
";

    #[test]
    fn parses_the_sample() {
        let db = parse_database(SAMPLE).unwrap();
        assert_eq!(db.relation_names(), vec!["city", "flight"]);
        let flight = db.relation("flight").unwrap();
        assert_eq!(flight.len(), 2);
        assert!(flight.contains(&tuple![1, "nyc", true]));
        assert_eq!(db.relation("city").unwrap().len(), 2);
    }

    #[test]
    fn round_trips() {
        let db = parse_database(SAMPLE).unwrap();
        let text = write_database(&db);
        let again = parse_database(&text).unwrap();
        assert_eq!(db, again);
    }

    #[test]
    fn error_positions() {
        let e = parse_database("relation r(a: int)\nxyz").unwrap_err();
        assert!(matches!(e, TextError::Syntax { line: 2, .. }), "{e}");

        let e = parse_database("1, 2").unwrap_err();
        assert!(matches!(e, TextError::Syntax { line: 1, .. }));

        let e = parse_database("relation r(a: float)\n").unwrap_err();
        assert!(matches!(e, TextError::Syntax { line: 1, .. }));

        let e = parse_database("relation r(a: int)\n1, 2").unwrap_err();
        assert!(matches!(e, TextError::Syntax { line: 2, .. }));
    }

    #[test]
    fn bool_spellings() {
        let db = parse_database("relation b(x: bool)\ntrue\n0\n").unwrap();
        let rel = db.relation("b").unwrap();
        assert!(rel.contains(&tuple![true]));
        assert!(rel.contains(&tuple![false]));
    }

    #[test]
    fn duplicate_relation_is_a_data_error() {
        let e = parse_database("relation r(a: int)\nrelation r(a: int)\n").unwrap_err();
        assert!(matches!(e, TextError::Data(DataError::DuplicateRelation(_))));
    }
}
