use std::fmt;
use std::sync::Arc;


use crate::{AttrType, DataError, Result, Tuple};

/// A named, typed attribute of a relation schema.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Attribute {
    /// Attribute name, unique within its schema.
    pub name: Arc<str>,
    /// The attribute's domain.
    pub ty: AttrType,
}

impl Attribute {
    /// Build an attribute.
    pub fn new(name: impl AsRef<str>, ty: AttrType) -> Self {
        Attribute {
            name: Arc::from(name.as_ref()),
            ty,
        }
    }
}

/// A relation schema `R(A1, ..., An)` as in Section 2 of the paper.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct RelationSchema {
    name: Arc<str>,
    attrs: Arc<[Attribute]>,
}

impl RelationSchema {
    /// Build a schema from `(attribute name, type)` pairs.
    ///
    /// Returns an error when two attributes share a name.
    pub fn new(
        name: impl AsRef<str>,
        attrs: impl IntoIterator<Item = (impl AsRef<str>, AttrType)>,
    ) -> Result<Self> {
        let attrs: Vec<Attribute> = attrs
            .into_iter()
            .map(|(n, t)| Attribute::new(n, t))
            .collect();
        for (i, a) in attrs.iter().enumerate() {
            if attrs[..i].iter().any(|b| b.name == a.name) {
                return Err(DataError::DuplicateAttribute {
                    relation: name.as_ref().to_string(),
                    attribute: a.name.to_string(),
                });
            }
        }
        Ok(RelationSchema {
            name: Arc::from(name.as_ref()),
            attrs: attrs.into(),
        })
    }

    /// Relation name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// All attributes, in declaration order.
    pub fn attributes(&self) -> &[Attribute] {
        &self.attrs
    }

    /// Number of attributes.
    pub fn arity(&self) -> usize {
        self.attrs.len()
    }

    /// Position of the attribute with the given name.
    pub fn position(&self, attr: &str) -> Option<usize> {
        self.attrs.iter().position(|a| &*a.name == attr)
    }

    /// Attribute type at the given position.
    pub fn attr_type(&self, i: usize) -> Option<AttrType> {
        self.attrs.get(i).map(|a| a.ty)
    }

    /// A copy of this schema under a different relation name (used to
    /// bind a package to the answer schema `R_Q`).
    pub fn renamed(&self, name: impl AsRef<str>) -> RelationSchema {
        RelationSchema {
            name: Arc::from(name.as_ref()),
            attrs: Arc::clone(&self.attrs),
        }
    }

    /// Check that a tuple conforms to this schema (arity and types).
    pub fn check_tuple(&self, t: &Tuple) -> Result<()> {
        if t.arity() != self.arity() {
            return Err(DataError::ArityMismatch {
                relation: self.name.to_string(),
                expected: self.arity(),
                found: t.arity(),
            });
        }
        for (i, v) in t.values().iter().enumerate() {
            if v.attr_type() != self.attrs[i].ty {
                return Err(DataError::TypeMismatch {
                    relation: self.name.to_string(),
                    attribute: self.attrs[i].name.to_string(),
                    expected: self.attrs[i].ty,
                    found: v.attr_type(),
                });
            }
        }
        Ok(())
    }
}

impl fmt::Display for RelationSchema {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}(", self.name)?;
        for (i, a) in self.attrs.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{}: {}", a.name, a.ty)?;
        }
        write!(f, ")")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tuple;

    fn schema() -> RelationSchema {
        RelationSchema::new(
            "flight",
            [
                ("fno", AttrType::Int),
                ("from", AttrType::Str),
                ("direct", AttrType::Bool),
            ],
        )
        .unwrap()
    }

    #[test]
    fn positions_and_types() {
        let s = schema();
        assert_eq!(s.arity(), 3);
        assert_eq!(s.position("from"), Some(1));
        assert_eq!(s.position("nope"), None);
        assert_eq!(s.attr_type(2), Some(AttrType::Bool));
    }

    #[test]
    fn duplicate_attribute_rejected() {
        let err = RelationSchema::new("r", [("a", AttrType::Int), ("a", AttrType::Str)]);
        assert!(matches!(err, Err(DataError::DuplicateAttribute { .. })));
    }

    #[test]
    fn tuple_checking() {
        let s = schema();
        assert!(s.check_tuple(&tuple![1, "edi", true]).is_ok());
        assert!(matches!(
            s.check_tuple(&tuple![1, "edi"]),
            Err(DataError::ArityMismatch { .. })
        ));
        assert!(matches!(
            s.check_tuple(&tuple![1, 2, true]),
            Err(DataError::TypeMismatch { .. })
        ));
    }

    #[test]
    fn renamed_keeps_attributes() {
        let s = schema().renamed("RQ");
        assert_eq!(s.name(), "RQ");
        assert_eq!(s.position("fno"), Some(0));
    }

    #[test]
    fn display() {
        assert_eq!(
            schema().to_string(),
            "flight(fno: int, from: str, direct: bool)"
        );
    }
}
