//! Scalable random instances for the benchmark sweeps: a fixed query
//! over a database whose size is the sweep parameter (Table 8.2's data
//! complexity), with switchable size-bound regimes (poly vs constant,
//! Corollary 6.1) and switchable `Qc` (present / PTIME / absent).

use rand::Rng;

use pkgrec_core::{Constraint, PackageFn, RecInstance, SizeBound, ANSWER_RELATION};
use pkgrec_data::{tuple, AttrType, Database, Relation, RelationSchema};
use pkgrec_query::{Builtin, CmpOp, ConjunctiveQuery, Query, RelAtom, Term};

/// Schema of the generic `item(id, grp, price, score)` relation.
pub fn item_schema() -> RelationSchema {
    RelationSchema::new(
        "item",
        [
            ("id", AttrType::Int),
            ("grp", AttrType::Int),
            ("price", AttrType::Int),
            ("score", AttrType::Int),
        ],
    )
    .expect("valid schema")
}

/// A random item table with `n` rows spread over `groups` groups.
pub fn item_db(rng: &mut impl Rng, n: usize, groups: i64) -> Database {
    let mut items = Relation::empty(item_schema());
    for i in 0..n {
        items
            .insert(tuple![
                i as i64,
                rng.gen_range(0..groups),
                rng.gen_range(1..100),
                rng.gen_range(1..100)
            ])
            .expect("schema-conformant");
    }
    let mut db = Database::new();
    db.add_relation(items).expect("fresh db");
    db
}

/// The fixed SP selection query of the data-complexity sweeps:
/// `Q(id, grp, price, score) :- item(id, grp, price, score), price < 80`.
pub fn fixed_sp_query() -> Query {
    let head: Vec<Term> = ["id", "grp", "price", "score"]
        .iter()
        .map(Term::v)
        .collect();
    Query::Cq(ConjunctiveQuery::new(
        head.clone(),
        vec![RelAtom::new("item", head)],
        vec![Builtin::cmp(Term::v("price"), CmpOp::Lt, Term::c(80))],
    ))
}

/// A fixed CQ *join* query (self-join on the group column):
/// `Q(i1, i2, g) :- item(i1, g, p1, s1), item(i2, g, p2, s2), i1 < i2`.
pub fn fixed_join_query() -> Query {
    Query::Cq(ConjunctiveQuery::new(
        vec![Term::v("i1"), Term::v("i2"), Term::v("g")],
        vec![
            RelAtom::new(
                "item",
                vec![Term::v("i1"), Term::v("g"), Term::v("p1"), Term::v("s1")],
            ),
            RelAtom::new(
                "item",
                vec![Term::v("i2"), Term::v("g"), Term::v("p2"), Term::v("s2")],
            ),
        ],
        vec![Builtin::cmp(Term::v("i1"), CmpOp::Lt, Term::v("i2"))],
    ))
}

/// A fixed CQ compatibility constraint: no two items of the same group
/// in one package.
pub fn distinct_groups_qc() -> Constraint {
    Constraint::Query(Query::Cq(ConjunctiveQuery::new(
        Vec::<Term>::new(),
        vec![
            RelAtom::new(
                ANSWER_RELATION,
                vec![Term::v("i1"), Term::v("g"), Term::v("p1"), Term::v("s1")],
            ),
            RelAtom::new(
                ANSWER_RELATION,
                vec![Term::v("i2"), Term::v("g"), Term::v("p2"), Term::v("s2")],
            ),
        ],
        vec![Builtin::cmp(Term::v("i1"), CmpOp::Neq, Term::v("i2"))],
    )))
}

/// The same constraint as a PTIME closure (Corollary 6.3's regime).
pub fn distinct_groups_ptime() -> Constraint {
    Constraint::ptime("distinct groups (PTIME)", |p, _| {
        let mut seen = std::collections::BTreeSet::new();
        p.iter().all(|t| seen.insert(t[1].clone()))
    })
}

/// A data-complexity sweep instance over `n` items: fixed SP query,
/// budget `b` items per package, `val` = total score.
pub fn sweep_instance(
    rng: &mut impl Rng,
    n: usize,
    budget: f64,
    bound: SizeBound,
    qc: Constraint,
) -> RecInstance {
    RecInstance::new(item_db(rng, n, 5), fixed_sp_query())
        .with_qc(qc)
        .with_cost(PackageFn::count())
        .with_budget(budget)
        .with_val(PackageFn::sum_col(3, true))
        .with_size_bound(bound)
}

#[cfg(test)]
mod tests {
    use super::*;
    use pkgrec_core::{problems::frp, Package, SolveOptions};
    use pkgrec_query::QueryLanguage;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn fixed_queries_classify_correctly() {
        assert_eq!(fixed_sp_query().language(), QueryLanguage::Sp);
        assert_eq!(fixed_join_query().language(), QueryLanguage::Cq);
    }

    #[test]
    fn qc_variants_agree() {
        let mut rng = StdRng::seed_from_u64(8);
        let db = item_db(&mut rng, 12, 3);
        let q = Constraint::Query(match distinct_groups_qc() {
            Constraint::Query(q) => q,
            _ => unreachable!(),
        });
        let p = distinct_groups_ptime();
        let items: Vec<_> = db.relation("item").unwrap().tuples();
        // Compare on a handful of random packages.
        for i in 0..items.len() {
            for j in i + 1..items.len() {
                let pkg = Package::new([items[i].clone(), items[j].clone()]);
                assert_eq!(
                    q.satisfied(&pkg, &db, 4, None).unwrap(),
                    p.satisfied(&pkg, &db, 4, None).unwrap(),
                );
            }
        }
    }

    #[test]
    fn sweep_instance_is_solvable() {
        let mut rng = StdRng::seed_from_u64(9);
        let inst = sweep_instance(
            &mut rng,
            8,
            2.0,
            SizeBound::Constant(2),
            distinct_groups_ptime(),
        );
        let sel = frp::top_k(&inst, &SolveOptions::default()).unwrap().value;
        assert!(sel.is_some());
    }
}
