//! The travel-planning workload of Example 1.1: `flight` and `POI`
//! relations, the package query pairing a direct flight with
//! points of interest, the "no more than 2 museums" compatibility
//! constraint, and time/price aggregate functions.

use rand::seq::SliceRandom;
use rand::Rng;

use pkgrec_core::{Constraint, Ext, PackageFn, RecInstance, ANSWER_RELATION};
use pkgrec_data::{tuple, AttrType, Database, Relation, RelationSchema};
use pkgrec_query::{Builtin, CmpOp, ConjunctiveQuery, Query, RelAtom, Term};

/// Schema of the `flight(fno, from, to, dd, price)` relation. The
/// paper's departure/arrival time columns are folded into a single
/// day-number column — they add nothing to the problem structure.
pub fn flight_schema() -> RelationSchema {
    RelationSchema::new(
        "flight",
        [
            ("fno", AttrType::Int),
            ("from", AttrType::Str),
            ("to", AttrType::Str),
            ("dd", AttrType::Int),
            ("price", AttrType::Int),
        ],
    )
    .expect("valid schema")
}

/// Schema of the `poi(name, city, type, ticket, time)` relation.
pub fn poi_schema() -> RelationSchema {
    RelationSchema::new(
        "poi",
        [
            ("name", AttrType::Str),
            ("city", AttrType::Str),
            ("type", AttrType::Str),
            ("ticket", AttrType::Int),
            ("time", AttrType::Int),
        ],
    )
    .expect("valid schema")
}

/// Parameters of the random travel database.
#[derive(Debug, Clone)]
pub struct TravelConfig {
    /// Number of cities.
    pub cities: usize,
    /// Number of flights.
    pub flights: usize,
    /// Number of POI per city (on average).
    pub pois_per_city: usize,
    /// Departure-day range (1..=days).
    pub days: i64,
}

impl Default for TravelConfig {
    fn default() -> Self {
        TravelConfig {
            cities: 6,
            flights: 30,
            pois_per_city: 5,
            days: 7,
        }
    }
}

/// POI categories used by the generator.
pub const POI_TYPES: [&str; 4] = ["museum", "theater", "park", "gallery"];

/// Generate a random travel database.
pub fn travel_db(rng: &mut impl Rng, cfg: &TravelConfig) -> Database {
    let cities: Vec<String> = (0..cfg.cities).map(|i| format!("city{i}")).collect();
    let mut flights = Relation::empty(flight_schema());
    for f in 0..cfg.flights {
        let from = cities.choose(rng).expect("nonempty").clone();
        let mut to = cities.choose(rng).expect("nonempty").clone();
        while to == from {
            to = cities.choose(rng).expect("nonempty").clone();
        }
        flights
            .insert(tuple![
                f as i64,
                from.as_str(),
                to.as_str(),
                rng.gen_range(1..=cfg.days),
                rng.gen_range(80..800)
            ])
            .expect("schema-conformant");
    }
    let mut pois = Relation::empty(poi_schema());
    for (c, city) in cities.iter().enumerate() {
        for p in 0..cfg.pois_per_city {
            pois.insert(tuple![
                format!("poi_{c}_{p}").as_str(),
                city.as_str(),
                *POI_TYPES.choose(rng).expect("nonempty"),
                rng.gen_range(0..60),
                rng.gen_range(30..240)
            ])
            .expect("schema-conformant");
        }
    }
    let mut db = Database::new();
    db.add_relation(flights).expect("fresh db");
    db.add_relation(pois).expect("fresh db");
    db
}

/// The Example 1.1 package query: items pair a direct flight
/// `from → to` departing on `day` with a POI of the destination city:
///
/// ```text
/// Q(fno, price, name, type, ticket, time) =
///   ∃ to ( flight(fno, from, to, day, price) ∧
///          poi(name, to, type, ticket, time) )
/// ```
pub fn travel_query(from: &str, to: &str, day: i64) -> Query {
    Query::Cq(ConjunctiveQuery::new(
        vec![
            Term::v("fno"),
            Term::v("price"),
            Term::v("name"),
            Term::v("type"),
            Term::v("ticket"),
            Term::v("time"),
        ],
        vec![
            RelAtom::new(
                "flight",
                vec![
                    Term::v("fno"),
                    Term::c(from),
                    Term::v("xTo"),
                    Term::c(day),
                    Term::v("price"),
                ],
            ),
            RelAtom::new(
                "poi",
                vec![
                    Term::v("name"),
                    Term::v("xTo"),
                    Term::v("type"),
                    Term::v("ticket"),
                    Term::v("time"),
                ],
            ),
        ],
        vec![Builtin::eq(Term::v("xTo"), Term::c(to))],
    ))
}

/// The "no more than 2 museums" compatibility constraint of
/// Example 1.1 / [Xie et al.]: `Qc` selects 3 distinct museums from the
/// package (answer columns: fno, price, name, type, ticket, time).
pub fn max_two_museums() -> Constraint {
    let row = |i: usize| {
        RelAtom::new(
            ANSWER_RELATION,
            vec![
                Term::v("f"),
                Term::v("p"),
                Term::v(format!("n{i}")),
                Term::c("museum"),
                Term::v(format!("tk{i}")),
                Term::v(format!("tm{i}")),
            ],
        )
    };
    Constraint::Query(Query::Cq(ConjunctiveQuery::new(
        Vec::<Term>::new(),
        vec![row(1), row(2), row(3)],
        vec![
            Builtin::cmp(Term::v("n1"), CmpOp::Neq, Term::v("n2")),
            Builtin::cmp(Term::v("n1"), CmpOp::Neq, Term::v("n3")),
            Builtin::cmp(Term::v("n2"), CmpOp::Neq, Term::v("n3")),
        ],
    )))
}

/// The "one flight per package" constraint implicit in Example 1.1 (all
/// items share the `fno` column).
pub fn single_flight() -> Constraint {
    Constraint::ptime("all items share one flight", |p, _| {
        let mut fnos = p.iter().map(|t| t[0].clone());
        match fnos.next() {
            None => true,
            Some(first) => fnos.all(|f| f == first),
        }
    })
}

/// Both travel constraints combined.
pub fn travel_constraints() -> Constraint {
    let museums = max_two_museums();
    let flight = single_flight();
    Constraint::ptime("single flight & ≤2 museums", move |p, db| {
        let flight_ok = match &flight {
            Constraint::PTime { f, .. } => f(p, db),
            _ => unreachable!("single_flight is a PTime constraint"),
        };
        flight_ok
            && museums
                .satisfied(p, db, 6, None)
                .unwrap_or(false)
    })
}

/// `cost(N)` = total visit time (the 5-day sightseeing budget of the
/// example); `cost(∅) = ∞`.
pub fn visit_time_cost() -> PackageFn {
    PackageFn::custom("total visit time (∅ ↦ ∞)", true, |p| {
        if p.is_empty() {
            return Ext::PosInf;
        }
        Ext::Finite(
            p.iter()
                .map(|t| t[5].as_numeric().unwrap_or(0) as f64)
                .sum(),
        )
    })
}

/// `val(N)`: the more POI and the cheaper the total price, the better
/// (airfare counted once since all items share a flight).
pub fn travel_rating() -> PackageFn {
    PackageFn::custom("10·|N| − (airfare + tickets)/100", false, |p| {
        if p.is_empty() {
            return Ext::NegInf;
        }
        let airfare = p
            .iter()
            .next()
            .map(|t| t[1].as_numeric().unwrap_or(0))
            .unwrap_or(0) as f64;
        let tickets: f64 = p
            .iter()
            .map(|t| t[4].as_numeric().unwrap_or(0) as f64)
            .sum();
        Ext::Finite(10.0 * p.len() as f64 - (airfare + tickets) / 100.0)
    })
}

/// A complete Example 1.1 instance: top-`k` travel packages within a
/// total visit-time budget.
pub fn travel_instance(
    db: Database,
    from: &str,
    to: &str,
    day: i64,
    time_budget: f64,
    k: usize,
) -> RecInstance {
    RecInstance::new(db, travel_query(from, to, day))
        .with_qc(travel_constraints())
        .with_cost(visit_time_cost())
        .with_budget(time_budget)
        .with_val(travel_rating())
        .with_k(k)
}

#[cfg(test)]
mod tests {
    use super::*;
    use pkgrec_core::{problems::frp, Package, SolveOptions};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn tiny_db() -> Database {
        let mut db = Database::new();
        let mut flights = Relation::empty(flight_schema());
        flights.insert(tuple![1, "edi", "nyc", 1, 400]).unwrap();
        flights.insert(tuple![2, "edi", "nyc", 1, 300]).unwrap();
        flights.insert(tuple![3, "edi", "bos", 1, 200]).unwrap();
        let mut pois = Relation::empty(poi_schema());
        pois.insert(tuple!["met", "nyc", "museum", 25, 120]).unwrap();
        pois.insert(tuple!["moma", "nyc", "museum", 25, 90]).unwrap();
        pois.insert(tuple!["guggenheim", "nyc", "museum", 25, 60]).unwrap();
        pois.insert(tuple!["broadway", "nyc", "theater", 80, 150]).unwrap();
        pois.insert(tuple!["fenway", "bos", "park", 0, 60]).unwrap();
        db.add_relation(flights).unwrap();
        db.add_relation(pois).unwrap();
        db
    }

    #[test]
    fn query_pairs_flights_with_destination_pois() {
        let q = travel_query("edi", "nyc", 1);
        let ans = q.eval(&tiny_db()).unwrap();
        // 2 nyc flights × 4 nyc POI.
        assert_eq!(ans.len(), 8);
    }

    #[test]
    fn museum_constraint_rejects_three_museums() {
        let db = tiny_db();
        let qc = max_two_museums();
        let three = Package::new([
            tuple![2, 300, "met", "museum", 25, 120],
            tuple![2, 300, "moma", "museum", 25, 90],
            tuple![2, 300, "guggenheim", "museum", 25, 60],
        ]);
        assert!(!qc.satisfied(&three, &db, 6, None).unwrap());
        let two = Package::new([
            tuple![2, 300, "met", "museum", 25, 120],
            tuple![2, 300, "moma", "museum", 25, 90],
        ]);
        assert!(qc.satisfied(&two, &db, 6, None).unwrap());
    }

    #[test]
    fn single_flight_constraint() {
        let db = tiny_db();
        let qc = single_flight();
        let mixed = Package::new([
            tuple![1, 400, "met", "museum", 25, 120],
            tuple![2, 300, "moma", "museum", 25, 90],
        ]);
        assert!(!qc.satisfied(&mixed, &db, 6, None).unwrap());
    }

    #[test]
    fn top_package_prefers_cheap_flight_and_many_pois() {
        let inst = travel_instance(tiny_db(), "edi", "nyc", 1, 300.0, 1);
        let sel = frp::top_k(&inst, &SolveOptions::default()).unwrap().value.unwrap();
        let pkg = &sel[0];
        // All items share the cheap flight 2.
        assert!(pkg.iter().all(|t| t[0].as_int() == Some(2)));
        // Time budget respected.
        let time: i64 = pkg.iter().map(|t| t[5].as_int().unwrap()).sum();
        assert!(time <= 300);
        // ≤ 2 museums.
        let museums = pkg
            .iter()
            .filter(|t| t[3].as_str() == Some("museum"))
            .count();
        assert!(museums <= 2);
        assert!(!pkg.is_empty());
    }

    #[test]
    fn generator_is_deterministic_and_well_formed() {
        let cfg = TravelConfig::default();
        let a = travel_db(&mut StdRng::seed_from_u64(1), &cfg);
        let b = travel_db(&mut StdRng::seed_from_u64(1), &cfg);
        assert_eq!(a, b);
        assert_eq!(a.relation("flight").unwrap().len(), cfg.flights);
        assert!(!a.relation("poi").unwrap().is_empty());
    }
}
