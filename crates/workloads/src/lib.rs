//! # pkgrec-workloads — domain workloads and scalable random instances
//!
//! The paper motivates package recommendation with three running
//! application domains, each of which this crate implements as a
//! generator + ready-made instance builder:
//!
//! * [`travel`] — travel plans (Example 1.1 / [Xie, Lakshmanan &
//!   Wood]): flights joined with points of interest, a museum cap as a
//!   CQ compatibility constraint, visit-time budgets;
//! * [`courses`] — course bundles ([Parameswaran et al.]):
//!   prerequisite closure as an FO constraint consulting `D`;
//! * [`teams`] — team formation ([Lappas, Liu & Terzi]): skill
//!   coverage as a PTIME constraint, team-size budgets;
//! * [`random`] — size-parameterized instances for the data-complexity
//!   benchmark sweeps of Table 8.2 and Corollaries 6.1–6.3.

pub mod courses;
pub mod random;
pub mod teams;
pub mod travel;
