//! The team-formation workload of [Lappas, Liu & Terzi], cited by the
//! paper: assemble a team of experts covering a set of required skills
//! while keeping the communication cost low. Skill coverage is the
//! compatibility side; the budget bounds team size.

use rand::Rng;

use pkgrec_core::{Constraint, Ext, PackageFn, RecInstance};
use pkgrec_data::{tuple, AttrType, Database, Relation, RelationSchema, Value};
use pkgrec_query::{ConjunctiveQuery, Query};

/// Schema of `expert(eid, skill, level, fee)` — one row per expert per
/// skill they hold.
pub fn expert_schema() -> RelationSchema {
    RelationSchema::new(
        "expert",
        [
            ("eid", AttrType::Int),
            ("skill", AttrType::Str),
            ("level", AttrType::Int),
            ("fee", AttrType::Int),
        ],
    )
    .expect("valid schema")
}

/// Skill names used by the generator.
pub const SKILLS: [&str; 5] = ["rust", "ml", "viz", "ops", "pm"];

/// Parameters of the random expert pool.
#[derive(Debug, Clone)]
pub struct TeamConfig {
    /// Number of experts.
    pub experts: usize,
    /// Skills per expert (each drawn uniformly).
    pub skills_per_expert: usize,
}

impl Default for TeamConfig {
    fn default() -> Self {
        TeamConfig {
            experts: 8,
            skills_per_expert: 2,
        }
    }
}

/// Generate a random expert pool.
pub fn team_db(rng: &mut impl Rng, cfg: &TeamConfig) -> Database {
    let mut experts = Relation::empty(expert_schema());
    for e in 0..cfg.experts {
        let fee = rng.gen_range(50..200);
        for _ in 0..cfg.skills_per_expert {
            experts
                .insert(tuple![
                    e as i64,
                    SKILLS[rng.gen_range(0..SKILLS.len())],
                    rng.gen_range(1..=5) as i64,
                    fee
                ])
                .expect("schema-conformant");
        }
    }
    let mut db = Database::new();
    db.add_relation(experts).expect("fresh db");
    db
}

/// The selection query: all expert–skill rows.
pub fn all_experts_query() -> Query {
    Query::Cq(ConjunctiveQuery::identity("expert", 4))
}

/// The coverage constraint: the team (union of its rows) must cover
/// every required skill. A PTIME constraint in the spirit of
/// Corollary 6.3.
pub fn covers_skills(required: &[&str]) -> Constraint {
    let required: Vec<Value> = required.iter().map(|&s| Value::str(s)).collect();
    Constraint::ptime("team covers all required skills", move |p, _| {
        required
            .iter()
            .all(|skill| p.iter().any(|t| &t[1] == skill))
    })
}

/// `cost(N)` = number of distinct experts (team size); `∅ ↦ ∞`.
pub fn team_size_cost() -> PackageFn {
    PackageFn::custom("distinct experts (∅ ↦ ∞)", true, |p| {
        if p.is_empty() {
            return Ext::PosInf;
        }
        let experts: std::collections::BTreeSet<_> = p.iter().map(|t| t[0].clone()).collect();
        Ext::Finite(experts.len() as f64)
    })
}

/// `val(N)` = total skill level minus total fees (fees counted once per
/// expert) — "a strong, affordable team".
pub fn team_value() -> PackageFn {
    PackageFn::custom("Σ level − Σ distinct fees / 100", false, |p| {
        if p.is_empty() {
            return Ext::NegInf;
        }
        let levels: f64 = p
            .iter()
            .map(|t| t[2].as_numeric().unwrap_or(0) as f64)
            .sum();
        let fees: f64 = p
            .iter()
            .map(|t| (t[0].clone(), t[3].as_numeric().unwrap_or(0)))
            .collect::<std::collections::BTreeMap<_, _>>()
            .values()
            .map(|&f| f as f64)
            .sum();
        Ext::Finite(levels - fees / 100.0)
    })
}

/// A complete team-formation instance: top-`k` teams of at most
/// `max_team` experts covering the required skills.
pub fn team_instance(
    db: Database,
    required: &[&str],
    max_team: f64,
    k: usize,
) -> RecInstance {
    RecInstance::new(db, all_experts_query())
        .with_qc(covers_skills(required))
        .with_cost(team_size_cost())
        .with_budget(max_team)
        .with_val(team_value())
        .with_k(k)
}

#[cfg(test)]
mod tests {
    use super::*;
    use pkgrec_core::{problems::frp, Package, SolveOptions};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn tiny_db() -> Database {
        let mut db = Database::new();
        let mut experts = Relation::empty(expert_schema());
        experts.insert(tuple![0, "rust", 5, 100]).unwrap();
        experts.insert(tuple![0, "ml", 2, 100]).unwrap();
        experts.insert(tuple![1, "ml", 5, 150]).unwrap();
        experts.insert(tuple![2, "rust", 3, 60]).unwrap();
        experts.insert(tuple![2, "viz", 4, 60]).unwrap();
        db.add_relation(experts).unwrap();
        db
    }

    #[test]
    fn coverage_constraint() {
        let db = tiny_db();
        let qc = covers_skills(&["rust", "ml"]);
        let covered = Package::new([tuple![0, "rust", 5, 100], tuple![1, "ml", 5, 150]]);
        assert!(qc.satisfied(&covered, &db, 4, None).unwrap());
        let missing = Package::new([tuple![0, "rust", 5, 100]]);
        assert!(!qc.satisfied(&missing, &db, 4, None).unwrap());
    }

    #[test]
    fn solo_polymath_beats_two_hires() {
        // Expert 0 covers rust+ml alone with total level 7; team {0}
        // (both rows) rates 7 − 1 = 6, {0-rust, 1-ml} rates 10 − 2.5 =
        // 7.5 but needs 2 experts. With team budget 1 the polymath wins.
        let inst = team_instance(tiny_db(), &["rust", "ml"], 1.0, 1);
        let sel = frp::top_k(&inst, &SolveOptions::default()).unwrap().value.unwrap();
        assert!(sel[0].iter().all(|t| t[0].as_int() == Some(0)));
    }

    #[test]
    fn larger_budget_prefers_stronger_team() {
        let inst = team_instance(tiny_db(), &["rust", "ml"], 2.0, 1);
        let sel = frp::top_k(&inst, &SolveOptions::default()).unwrap().value.unwrap();
        let val = inst.val.eval(&sel[0]);
        // The strongest 2-expert team rates at least 7.5.
        assert!(val >= Ext::Finite(7.5), "got {val}");
    }

    #[test]
    fn generator_shapes() {
        let cfg = TeamConfig::default();
        let db = team_db(&mut StdRng::seed_from_u64(5), &cfg);
        let experts = db.relation("expert").unwrap();
        assert!(experts.len() <= cfg.experts * cfg.skills_per_expert);
        assert!(experts.len() >= cfg.experts); // at least one row each
    }
}
