//! The course-recommendation workload of [Parameswaran et al.], cited
//! by the paper for compatibility constraints that consult the
//! database: a package of courses must contain, for each course, all
//! of its prerequisites (which live in a separate `prereq` relation of
//! `D`, not in the package).

use rand::Rng;

use pkgrec_core::{Constraint, Ext, PackageFn, RecInstance, ANSWER_RELATION};
use pkgrec_data::{tuple, AttrType, Database, Relation, RelationSchema};
use pkgrec_query::{ConjunctiveQuery, FoQuery, Formula, Query, RelAtom, Term};

/// Schema of `course(cid, area, credits, rating)`.
pub fn course_schema() -> RelationSchema {
    RelationSchema::new(
        "course",
        [
            ("cid", AttrType::Int),
            ("area", AttrType::Str),
            ("credits", AttrType::Int),
            ("rating", AttrType::Int),
        ],
    )
    .expect("valid schema")
}

/// Schema of `prereq(cid, needs)`.
pub fn prereq_schema() -> RelationSchema {
    RelationSchema::new("prereq", [("cid", AttrType::Int), ("needs", AttrType::Int)])
        .expect("valid schema")
}

/// Course areas used by the generator.
pub const AREAS: [&str; 3] = ["db", "ai", "sys"];

/// Parameters of the random course catalog.
#[derive(Debug, Clone)]
pub struct CourseConfig {
    /// Number of courses.
    pub courses: usize,
    /// Probability that course `i` requires a given earlier course.
    pub prereq_prob: f64,
}

impl Default for CourseConfig {
    fn default() -> Self {
        CourseConfig {
            courses: 10,
            prereq_prob: 0.2,
        }
    }
}

/// Generate a random course catalog; prerequisites always point to
/// lower course ids, so the prerequisite graph is acyclic.
pub fn course_db(rng: &mut impl Rng, cfg: &CourseConfig) -> Database {
    let mut courses = Relation::empty(course_schema());
    let mut prereqs = Relation::empty(prereq_schema());
    for c in 0..cfg.courses {
        courses
            .insert(tuple![
                c as i64,
                AREAS[rng.gen_range(0..AREAS.len())],
                rng.gen_range(1..=3) as i64,
                rng.gen_range(1..=5) as i64
            ])
            .expect("schema-conformant");
        for earlier in 0..c {
            if rng.gen_bool(cfg.prereq_prob) {
                prereqs
                    .insert(tuple![c as i64, earlier as i64])
                    .expect("schema-conformant");
            }
        }
    }
    let mut db = Database::new();
    db.add_relation(courses).expect("fresh db");
    db.add_relation(prereqs).expect("fresh db");
    db
}

/// The selection query: all courses (identity over `course`).
pub fn all_courses_query() -> Query {
    Query::Cq(ConjunctiveQuery::identity("course", 4))
}

/// The prerequisite compatibility constraint, as an **FO** query (the
/// paper notes course-combination constraints need FO): a package is
/// incompatible iff it contains a course whose prerequisite (looked up
/// in `D`) is missing from the package:
///
/// ```text
/// Qc() = ∃c, a, k, r, n ( R_Q(c, a, k, r) ∧ prereq(c, n) ∧
///                         ¬∃a′, k′, r′ R_Q(n, a′, k′, r′) )
/// ```
pub fn prereq_constraint() -> Constraint {
    let rq = |cid: &str, suffix: &str| {
        Formula::Atom(RelAtom::new(
            ANSWER_RELATION,
            vec![
                Term::v(cid),
                Term::v(format!("a{suffix}")),
                Term::v(format!("k{suffix}")),
                Term::v(format!("r{suffix}")),
            ],
        ))
    };
    let body = Formula::and(vec![
        rq("c", "1"),
        Formula::Atom(RelAtom::new("prereq", vec![Term::v("c"), Term::v("n")])),
        Formula::not(Formula::exists(
            vec![
                pkgrec_query::var("a2"),
                pkgrec_query::var("k2"),
                pkgrec_query::var("r2"),
            ],
            rq("n", "2"),
        )),
    ]);
    Constraint::Query(Query::Fo(FoQuery::new(Vec::<Term>::new(), body)))
}

/// `cost(N)` = total credits (`∅ ↦ ∞`).
pub fn credit_cost() -> PackageFn {
    PackageFn::custom("total credits (∅ ↦ ∞)", true, |p| {
        if p.is_empty() {
            return Ext::PosInf;
        }
        Ext::Finite(
            p.iter()
                .map(|t| t[2].as_numeric().unwrap_or(0) as f64)
                .sum(),
        )
    })
}

/// `val(N)` = total course rating.
pub fn rating_value() -> PackageFn {
    PackageFn::custom("total rating", true, |p| {
        Ext::Finite(
            p.iter()
                .map(|t| t[3].as_numeric().unwrap_or(0) as f64)
                .sum(),
        )
    })
}

/// A complete course-package instance: top-`k` course bundles within a
/// credit budget, closed under prerequisites.
pub fn course_instance(db: Database, credit_budget: f64, k: usize) -> RecInstance {
    RecInstance::new(db, all_courses_query())
        .with_qc(prereq_constraint())
        .with_cost(credit_cost())
        .with_budget(credit_budget)
        .with_val(rating_value())
        .with_k(k)
}

#[cfg(test)]
mod tests {
    use super::*;
    use pkgrec_core::{problems::frp, Package, SolveOptions};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn tiny_db() -> Database {
        let mut db = Database::new();
        let mut courses = Relation::empty(course_schema());
        courses.insert(tuple![0, "db", 2, 3]).unwrap(); // intro
        courses.insert(tuple![1, "db", 2, 5]).unwrap(); // advanced, needs 0
        courses.insert(tuple![2, "ai", 3, 4]).unwrap(); // standalone
        let mut prereqs = Relation::empty(prereq_schema());
        prereqs.insert(tuple![1, 0]).unwrap();
        db.add_relation(courses).unwrap();
        db.add_relation(prereqs).unwrap();
        db
    }

    #[test]
    fn prereq_constraint_semantics() {
        let db = tiny_db();
        let qc = prereq_constraint();
        // {advanced} without {intro}: incompatible.
        let alone = Package::new([tuple![1, "db", 2, 5]]);
        assert!(!qc.satisfied(&alone, &db, 4, None).unwrap());
        // {intro, advanced}: compatible.
        let both = Package::new([tuple![0, "db", 2, 3], tuple![1, "db", 2, 5]]);
        assert!(qc.satisfied(&both, &db, 4, None).unwrap());
        // {standalone}: compatible.
        let solo = Package::new([tuple![2, "ai", 3, 4]]);
        assert!(qc.satisfied(&solo, &db, 4, None).unwrap());
    }

    #[test]
    fn top_bundle_respects_prerequisites_and_credits() {
        // Credit budget 4: {intro, advanced} (4 credits, rating 8) beats
        // {standalone} (3 credits, rating 4) and {intro, standalone}
        // (5 credits — over budget).
        let inst = course_instance(tiny_db(), 4.0, 1);
        let sel = frp::top_k(&inst, &SolveOptions::default()).unwrap().value.unwrap();
        assert_eq!(
            sel[0],
            Package::new([tuple![0, "db", 2, 3], tuple![1, "db", 2, 5]])
        );
    }

    #[test]
    fn generator_produces_acyclic_prereqs() {
        let db = course_db(&mut StdRng::seed_from_u64(3), &CourseConfig::default());
        for t in db.relation("prereq").unwrap().iter() {
            assert!(t[1].as_int().unwrap() < t[0].as_int().unwrap());
        }
    }
}
