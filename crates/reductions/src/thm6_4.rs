//! **Theorem 6.4** — item recommendations keep the combined complexity
//! of the no-`Qc` package problems. Two reductions establish the CQ
//! cases:
//!
//! * item FRP is FPNP-hard from **MAX-WEIGHT SAT**: items are the truth
//!   assignments of X (a Cartesian power of `I01`), the utility of an
//!   item is the total weight of clauses it satisfies, and the top-1
//!   item is a maximum-weight assignment;
//! * item MBP is DP-hard from **SAT-UNSAT**: items are assignments of
//!   `X ∪ Y`, and the utility separates the witnesses.
//!
//! Note on the SAT-UNSAT utility: the paper's prose assigns `f = 2` to
//! "any other tuple", which would make `B = 1` maximal only when `φ1`
//! is a tautology — an apparent typo. We implement the evidently
//! intended function: `f = 1` when `µX ⊨ φ1` and `µY ⊭ φ2`, `f = 2`
//! when `µY ⊨ φ2`, and `f = 0` otherwise; then `B = 1` is the maximum
//! bound iff `φ1` is satisfiable and `φ2` is unsatisfiable — which is
//! machine-checked below.

use pkgrec_core::{ItemInstance, ItemUtility};
use pkgrec_data::{Database, Tuple};
use pkgrec_logic::{MaxWeightSat, SatUnsat};
use pkgrec_query::{ConjunctiveQuery, Query};

use crate::encode::{assignment_atoms, var_terms};
use crate::gadgets::{gadget_db, i01};

/// A database holding only `I01` (the item pool of both reductions is
/// a Cartesian power of the Boolean domain).
fn i01_db() -> Database {
    let mut db = Database::new();
    db.add_relation(i01()).expect("fresh db");
    db
}

/// Read a tuple of Booleans as a truth assignment.
fn as_assignment(t: &Tuple) -> Vec<bool> {
    t.values()
        .iter()
        .map(|v| v.as_bool().expect("assignment tuples are Boolean"))
        .collect()
}

/// Build the item-FRP reduction: the top-1 item's utility equals the
/// MAX-WEIGHT SAT optimum.
pub fn reduce_max_weight_sat_items(inst: &MaxWeightSat) -> ItemInstance {
    let xs = var_terms("x", inst.formula.num_vars);
    let q = Query::Cq(ConjunctiveQuery::new(
        xs.clone(),
        assignment_atoms(&xs),
        vec![],
    ));
    let weighted = inst.clone();
    let utility = ItemUtility::new("total weight of satisfied clauses", move |t| {
        weighted.weight_of(&as_assignment(t)) as f64
    });
    ItemInstance::new(i01_db(), q, utility, 1)
}

/// Build the item-MBP reduction: `B = 1` is the maximum item bound iff
/// the SAT-UNSAT pair is a yes-instance. Returns the instance and the
/// bound.
pub fn reduce_sat_unsat_items(pair: &SatUnsat) -> (ItemInstance, f64) {
    let m = pair.phi1.num_vars;
    let n = pair.phi2.num_vars;
    let vars = var_terms("v", m + n);
    let q = Query::Cq(ConjunctiveQuery::new(
        vars.clone(),
        assignment_atoms(&vars),
        vec![],
    ));
    let pair = pair.clone();
    let utility = ItemUtility::new("1 = (µX⊨φ1, µY⊭φ2); 2 = µY⊨φ2; 0 otherwise", move |t| {
        let bits = as_assignment(t);
        let (mu_x, mu_y) = bits.split_at(m);
        let phi1_sat = pair.phi1.eval(mu_x);
        let phi2_sat = pair.phi2.eval(mu_y);
        if phi2_sat {
            2.0
        } else if phi1_sat {
            1.0
        } else {
            0.0
        }
    });
    (ItemInstance::new(i01_db(), q, utility, 1), 1.0)
}

/// The Theorem 6.4 remark that the membership-style lower bounds also
/// carry over uses the gadget database; expose it for bench workloads.
pub fn gadget_database() -> Database {
    gadget_db()
}

#[cfg(test)]
mod tests {
    use super::*;
    use pkgrec_logic::{gen, max_weight_sat, Clause, CnfFormula, Lit};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn item_frp_matches_maxsat() {
        let mut rng = StdRng::seed_from_u64(55);
        for _ in 0..15 {
            let inst = gen::random_max_weight_sat(&mut rng, 4, 5, 7);
            let (direct, _) = max_weight_sat(&inst);
            let items = reduce_max_weight_sat_items(&inst);
            let top = items.top_k_items().unwrap().unwrap();
            let got = items.utility.eval(&top[0]);
            assert_eq!(got, direct as f64, "instance {}", inst.formula);
        }
    }

    fn sat() -> CnfFormula {
        CnfFormula::new(1, vec![Clause::new(vec![Lit::pos(0)])])
    }

    fn unsat() -> CnfFormula {
        CnfFormula::new(
            1,
            vec![Clause::new(vec![Lit::pos(0)]), Clause::new(vec![Lit::neg(0)])],
        )
    }

    fn item_mbp_answer(pair: &SatUnsat) -> bool {
        let (inst, b) = reduce_sat_unsat_items(pair);
        inst.maximum_bound_items().unwrap() == Some(b)
    }

    #[test]
    fn item_mbp_four_corners() {
        assert!(item_mbp_answer(&SatUnsat::new(sat(), unsat())));
        assert!(!item_mbp_answer(&SatUnsat::new(sat(), sat())));
        assert!(!item_mbp_answer(&SatUnsat::new(unsat(), unsat())));
        assert!(!item_mbp_answer(&SatUnsat::new(unsat(), sat())));
    }

    #[test]
    fn item_mbp_random_agreement() {
        // A random phi2 over 3 vars is almost never unsatisfiable, so
        // force half the draws into yes-eligible shape with a
        // guaranteed-unsat phi2; the rest stay fully random.
        let mut rng = StdRng::seed_from_u64(56);
        let (mut yes, mut no) = (0, 0);
        for i in 0..20 {
            let mut pair = gen::random_sat_unsat(&mut rng, 3, 8);
            if i % 2 == 0 {
                pair.phi2 = gen::force_unsat(&pair.phi2);
            }
            let direct = pair.is_yes();
            if direct {
                yes += 1;
            } else {
                no += 1;
            }
            assert_eq!(item_mbp_answer(&pair), direct);
        }
        assert!(yes > 0 && no > 0, "degenerate sample: yes={yes} no={no}");
    }

    #[test]
    fn item_pool_is_the_boolean_cube() {
        let inst = reduce_max_weight_sat_items(&gen::random_max_weight_sat(
            &mut StdRng::seed_from_u64(57),
            3,
            4,
            5,
        ));
        assert_eq!(inst.query.eval(&inst.db).unwrap().len(), 8);
    }
}
