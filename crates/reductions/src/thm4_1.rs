//! **Theorem 4.1** — Πp₂-hardness of RPP(CQ), by reduction from the
//! *complement* of the compatibility problem (which Lemma 4.2 proved
//! Σp₂-hard).
//!
//! Given a compatibility instance with bound `B`, the candidate
//! selection is `N = {∅}` ("no recommendation is made") and the rating
//! function is patched so that `val′(∅) = B`. Then `N` is a top-1
//! selection iff *no* nonempty valid package rates above `B` — i.e. iff
//! the compatibility answer is "no".
//!
//! One deviation from the paper's prose: the paper keeps `cost(∅) = ∞`
//! yet still treats `{∅}` as a candidate selection, which its own
//! validity check (step 1(c) of the algorithm) would reject. We set
//! `cost′(∅) = 0` so the empty package is a *bona fide* valid package;
//! the equivalence of the reduction is unaffected (and is machine-
//! checked below).

use pkgrec_core::{Ext, Package, RecInstance};
use pkgrec_logic::Sigma2Dnf;

use crate::lemma4_2;

/// The produced RPP instance and candidate selection.
#[derive(Debug, Clone)]
pub struct RppReduction {
    /// The instance, with the patched `val′` and `cost′`.
    pub instance: RecInstance,
    /// The candidate selection `N = {∅}`.
    pub selection: Vec<Package>,
}

/// Wrap any compatibility-style instance into the RPP form: patch
/// `val′(∅) = B`, `cost′(∅) = 0`, `k = 1`, candidate `{∅}`.
pub fn from_compat(instance: RecInstance, rating_bound: Ext) -> RppReduction {
    let val = instance.val.clone().with_empty_value(rating_bound);
    let cost = instance.cost.clone().with_empty_value(Ext::Finite(0.0));
    let instance = instance.with_val(val).with_cost(cost).with_k(1);
    RppReduction {
        instance,
        selection: vec![Package::empty()],
    }
}

/// Build the full Theorem 4.1 reduction from a ∃*∀*3DNF sentence:
/// `is_top_k(selection)` iff `φ` is **false**.
pub fn reduce(phi: &Sigma2Dnf) -> RppReduction {
    let compat = lemma4_2::reduce(phi);
    from_compat(compat.instance, compat.rating_bound)
}

#[cfg(test)]
mod tests {
    use super::*;
    use pkgrec_core::{problems::rpp, SolveOptions};
    use pkgrec_logic::{gen, Conjunct, DnfFormula, Lit};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rpp_answer(phi: &Sigma2Dnf) -> bool {
        let r = reduce(phi);
        rpp::is_top_k(&r.instance, &r.selection, &SolveOptions::default()).unwrap()
    }

    #[test]
    fn complementation() {
        // φ true (ψ ≡ x): {∅} is NOT top-1.
        let yes = Sigma2Dnf::new(
            1,
            DnfFormula::new(
                2,
                vec![
                    Conjunct::new(vec![Lit::pos(0), Lit::pos(1)]),
                    Conjunct::new(vec![Lit::pos(0), Lit::neg(1)]),
                ],
            ),
        );
        assert!(!rpp_answer(&yes));

        // φ false (ψ ≡ y): {∅} IS top-1.
        let no = Sigma2Dnf::new(
            1,
            DnfFormula::new(
                2,
                vec![
                    Conjunct::new(vec![Lit::pos(0), Lit::pos(1)]),
                    Conjunct::new(vec![Lit::neg(0), Lit::pos(1)]),
                ],
            ),
        );
        assert!(rpp_answer(&no));
    }

    #[test]
    fn agrees_with_direct_solver_on_random_instances() {
        let mut rng = StdRng::seed_from_u64(43);
        let (mut yes, mut no) = (0, 0);
        for i in 0..16 {
            let mut phi = gen::random_sigma2(&mut rng, 2, 2, 3);
            if i % 2 == 0 {
                phi = gen::force_true_sigma2(&phi);
            }
            let direct = phi.is_true();
            if direct {
                yes += 1;
            } else {
                no += 1;
            }
            assert_eq!(rpp_answer(&phi), !direct, "φ = ∃X∀Y {}", phi.matrix);
        }
        assert!(yes > 0 && no > 0, "degenerate sample: yes={yes} no={no}");
    }
}
