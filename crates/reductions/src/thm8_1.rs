//! **Theorem 8.1** — hardness of ARPP, the adjustment recommendation
//! problem.
//!
//! *Combined complexity* (Σp₂, CQ): from ∃*∀*3DNF. The database ships
//! the gate gadgets but an **empty** Boolean domain `I01`; `D′` offers
//! the two missing tuples `{0, 1}`. The query demands both Boolean
//! values be present (via `∃z1, z0` with `z1 = 1, z0 = 0`), so any
//! useful adjustment must spend its whole budget `k′ = 2` inserting
//! them — after which valid packages are exactly the X assignments
//! satisfying `∀Y ψ`.
//!
//! *Data complexity* (NP, fixed CQ): from 3SAT. The assignment relation
//! `RX` starts empty and `D′` offers both values of every variable;
//! with budget `k′ = n` the vendor can materialize one assignment, and
//! `k = n · r` top items exist iff that assignment satisfies every
//! clause.

use pkgrec_adjust::ArppInstance;
use pkgrec_core::{Constraint, Ext, PackageFn, RecInstance};
use pkgrec_data::{tuple, AttrType, Database, Relation, RelationSchema};
use pkgrec_logic::{Clause, CnfFormula, Lit, Sigma2Dnf};
use pkgrec_query::{Builtin, ConjunctiveQuery, Query, RelAtom, Term};

use crate::encode::{assignment_atoms, var_terms};
use crate::gadgets::{i01, i_and, i_not, i_or, R01, ROR};
use crate::lemma4_2::forall_y_constraint;

/// Build the combined-complexity reduction: an adjustment of size at
/// most 2 exists **iff** `∃X ∀Y ψ` is true.
pub fn reduce_sigma2(phi: &Sigma2Dnf) -> ArppInstance {
    // D: gates present, Boolean domain empty.
    let mut db = Database::new();
    db.add_relation(i_or()).expect("fresh db");
    db.add_relation(i_and()).expect("fresh db");
    db.add_relation(i_not()).expect("fresh db");
    db.add_relation(Relation::empty(
        RelationSchema::new(R01, [("x", AttrType::Bool)]).expect("valid schema"),
    ))
    .expect("fresh db");

    // D′: the two Boolean tuples.
    let mut pool = Database::new();
    pool.add_relation(i01()).expect("fresh db");

    // Q(x̄) = ∃z1, z0 (R01(z1) ∧ z1 = 1 ∧ R01(z0) ∧ z0 = 0 ∧ ⋀ R01(xi)).
    let xs = var_terms("x", phi.x_vars);
    let (z1, z0) = (Term::v("z1"), Term::v("z0"));
    let mut atoms = vec![
        RelAtom::new(R01, vec![z1.clone()]),
        RelAtom::new(R01, vec![z0.clone()]),
    ];
    atoms.extend(assignment_atoms(&xs));
    let q = Query::Cq(ConjunctiveQuery::new(
        xs.clone(),
        atoms,
        vec![
            Builtin::eq(z1, Term::c(true)),
            Builtin::eq(z0, Term::c(false)),
        ],
    ));

    let base = RecInstance::new(db, q)
        .with_qc(Constraint::Query(forall_y_constraint(phi, &[])))
        .with_cost(PackageFn::count())
        .with_budget(1.0)
        .with_val(PackageFn::cardinality())
        .with_k(1);
    ArppInstance {
        base,
        pool,
        rating_bound: Ext::Finite(1.0),
        max_ops: 2,
    }
}

/// Relation names of the data-complexity construction.
pub const RX_REL: &str = "rx_assign";
/// The clause-literal relation `Rψ(idC, Px, X, Vx, w)`.
pub const RPSI_REL: &str = "rpsi";

/// Normalize a 3CNF so that every variable occurs in some clause, by
/// appending tautological clauses `(x ∨ ¬x ∨ x)` — satisfiability is
/// unchanged, and the `k = n · r` counting argument of the proof then
/// holds for every instance.
pub fn cover_all_variables(phi: &CnfFormula) -> CnfFormula {
    let mut occurring = vec![false; phi.num_vars];
    for c in &phi.clauses {
        for l in &c.0 {
            occurring[l.var] = true;
        }
    }
    let mut clauses = phi.clauses.clone();
    for (v, seen) in occurring.iter().enumerate() {
        if !seen {
            clauses.push(Clause::new(vec![Lit::pos(v), Lit::neg(v), Lit::pos(v)]));
        }
    }
    CnfFormula::new(phi.num_vars, clauses)
}

/// Build the data-complexity reduction: an adjustment of size at most
/// `n` exists **iff** `φ` is satisfiable.
pub fn reduce_3sat(phi: &CnfFormula) -> ArppInstance {
    let phi = cover_all_variables(phi);
    let n = phi.num_vars;
    let r = phi.clauses.len();

    let rx_schema =
        RelationSchema::new(RX_REL, [("x", AttrType::Int), ("v", AttrType::Bool)])
            .expect("valid schema");
    let rpsi_schema = RelationSchema::new(
        RPSI_REL,
        [
            ("cid", AttrType::Int),
            ("pos", AttrType::Int),
            ("x", AttrType::Int),
            ("vx", AttrType::Bool),
            ("w", AttrType::Bool),
        ],
    )
    .expect("valid schema");

    // Rψ: for clause j, literal position i, candidate value v, the
    // literal's truth value w.
    let mut rpsi = Relation::empty(rpsi_schema);
    for (j, clause) in phi.clauses.iter().enumerate() {
        let lits = crate::lemma4_4::pad3(&clause.0);
        for (i, lit) in lits.iter().enumerate() {
            for v in [false, true] {
                let w = v == lit.positive;
                rpsi.insert(tuple![(j + 1) as i64, (i + 1) as i64, lit.var as i64, v, w])
                    .expect("schema-conformant");
            }
        }
    }

    let mut db = Database::new();
    db.add_relation(Relation::empty(rx_schema.clone())).expect("fresh db");
    db.add_relation(rpsi).expect("fresh db");
    db.add_relation(i_or()).expect("fresh db");

    // D′: both values of every variable.
    let mut pool = Database::new();
    let mut rx_pool = Relation::empty(rx_schema);
    for x in 0..n {
        rx_pool.insert(tuple![x as i64, false]).expect("schema-conformant");
        rx_pool.insert(tuple![x as i64, true]).expect("schema-conformant");
    }
    pool.add_relation(rx_pool).expect("fresh db");

    // Q(j, c, x, v, x′, v′): for clause j, c = its truth value under
    // the RX-materialized assignment; the (x, v, x′, v′) product checks
    // RX encodes a function (only diagonal consistent pairs rate 1).
    let j = Term::v("j");
    let c = Term::v("c");
    let q = {
        let mut atoms = Vec::new();
        let mut ws = Vec::new();
        for i in 1..=3 {
            let (x, v, w) = (
                Term::v(format!("cx{i}")),
                Term::v(format!("cv{i}")),
                Term::v(format!("w{i}")),
            );
            atoms.push(RelAtom::new(
                RPSI_REL,
                vec![j.clone(), Term::c(i as i64), x.clone(), v.clone(), w.clone()],
            ));
            atoms.push(RelAtom::new(RX_REL, vec![x, v]));
            ws.push(w);
        }
        let t = Term::v("t");
        atoms.push(RelAtom::new(ROR, vec![t.clone(), ws[0].clone(), ws[1].clone()]));
        atoms.push(RelAtom::new(ROR, vec![c.clone(), t, ws[2].clone()]));
        let (x, v, xp, vp) = (Term::v("x"), Term::v("v"), Term::v("xp"), Term::v("vp"));
        atoms.push(RelAtom::new(RX_REL, vec![x.clone(), v.clone()]));
        atoms.push(RelAtom::new(RX_REL, vec![xp.clone(), vp.clone()]));
        Query::Cq(ConjunctiveQuery::new(
            vec![j, c, x, v, xp, vp],
            atoms,
            vec![],
        ))
    };

    // val({(j, c, x, v, x′, v′)}) = 1 iff c = 1 ∧ (x, v) = (x′, v′),
    // else −1.
    let val = PackageFn::custom("1 iff satisfied clause & diagonal pair", false, |p| {
        if p.len() != 1 {
            return Ext::NegInf;
        }
        let t = p.iter().next().expect("len 1");
        let good = t[1].as_bool() == Some(true) && t[2] == t[4] && t[3] == t[5];
        Ext::Finite(if good { 1.0 } else { -1.0 })
    });

    let base = RecInstance::new(db, q)
        .with_cost(PackageFn::count())
        .with_budget(1.0)
        .with_val(val)
        .with_k(n * r);
    ArppInstance {
        base,
        pool,
        rating_bound: Ext::Finite(1.0),
        max_ops: n,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pkgrec_adjust::arpp;
    use pkgrec_core::SolveOptions;
    use pkgrec_logic::{gen, is_satisfiable, Conjunct, DnfFormula};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn combined_hand_instances() {
        // ψ ≡ x: adjustable.
        let yes = Sigma2Dnf::new(
            1,
            DnfFormula::new(
                2,
                vec![
                    Conjunct::new(vec![Lit::pos(0), Lit::pos(1)]),
                    Conjunct::new(vec![Lit::pos(0), Lit::neg(1)]),
                ],
            ),
        );
        let w = arpp(&reduce_sigma2(&yes), &SolveOptions::default()).unwrap();
        let w = w.expect("yes instance");
        assert_eq!(w.adjustment.len(), 2, "both Boolean tuples inserted");

        // ψ ≡ y: not adjustable.
        let no = Sigma2Dnf::new(
            1,
            DnfFormula::new(
                2,
                vec![
                    Conjunct::new(vec![Lit::pos(0), Lit::pos(1)]),
                    Conjunct::new(vec![Lit::neg(0), Lit::pos(1)]),
                ],
            ),
        );
        assert!(arpp(&reduce_sigma2(&no), &SolveOptions::default())
            .unwrap()
            .is_none());
    }

    #[test]
    fn combined_random_agreement() {
        let mut rng = StdRng::seed_from_u64(61);
        let (mut yes, mut no) = (0, 0);
        for i in 0..8 {
            let mut phi = gen::random_sigma2(&mut rng, 2, 2, 3);
            if i % 2 == 0 {
                phi = gen::force_true_sigma2(&phi);
            }
            let direct = phi.is_true();
            if direct {
                yes += 1;
            } else {
                no += 1;
            }
            let got = arpp(&reduce_sigma2(&phi), &SolveOptions::default())
                .unwrap()
                .is_some();
            assert_eq!(got, direct, "φ = ∃X∀Y {}", phi.matrix);
        }
        assert!(yes > 0 && no > 0, "degenerate sample: yes={yes} no={no}");
    }

    #[test]
    fn data_hand_instances() {
        // (x0 ∨ x0 ∨ x0) ∧ (¬x0 ∨ ¬x0 ∨ ¬x0): unsatisfiable.
        let unsat = CnfFormula::new(
            1,
            vec![
                Clause::new(vec![Lit::pos(0), Lit::pos(0), Lit::pos(0)]),
                Clause::new(vec![Lit::neg(0), Lit::neg(0), Lit::neg(0)]),
            ],
        );
        assert!(arpp(&reduce_3sat(&unsat), &SolveOptions::default())
            .unwrap()
            .is_none());

        // (x0 ∨ x1 ∨ x0): satisfiable.
        let sat = CnfFormula::new(
            2,
            vec![Clause::new(vec![Lit::pos(0), Lit::pos(1), Lit::pos(0)])],
        );
        let w = arpp(&reduce_3sat(&sat), &SolveOptions::default())
            .unwrap()
            .expect("satisfiable");
        assert_eq!(w.adjustment.len(), 2, "one value per variable");
    }

    #[test]
    fn data_random_agreement() {
        let mut rng = StdRng::seed_from_u64(62);
        let (mut yes, mut no) = (0, 0);
        for i in 0..6 {
            let mut phi = gen::random_3cnf(&mut rng, 2, 3 + (i % 2));
            if i % 2 == 0 {
                phi = gen::force_unsat(&phi);
            }
            let direct = is_satisfiable(&phi);
            if direct {
                yes += 1;
            } else {
                no += 1;
            }
            let got = arpp(&reduce_3sat(&phi), &SolveOptions::default())
                .unwrap()
                .is_some();
            assert_eq!(got, direct, "φ = {phi}");
        }
        assert!(yes > 0 && no > 0, "degenerate sample: yes={yes} no={no}");
    }

    #[test]
    fn variable_coverage_normalization() {
        let phi = CnfFormula::new(
            3,
            vec![Clause::new(vec![Lit::pos(0), Lit::neg(0), Lit::pos(0)])],
        );
        let covered = cover_all_variables(&phi);
        assert_eq!(covered.clauses.len(), 3); // vars 1 and 2 padded
        assert_eq!(
            is_satisfiable(&phi),
            is_satisfiable(&covered)
        );
    }
}
