//! # pkgrec-reductions — the paper's lower bounds as executable,
//! machine-verified instance generators
//!
//! Every hardness result in *Deng, Fan & Geerts* is a reduction from a
//! Boolean problem to a recommendation problem. This crate implements
//! each construction exactly as in the corresponding proof, and the
//! test suite verifies, on hand-picked and random inputs, that solving
//! the produced recommendation instance agrees with solving the source
//! formula directly (using the independent solvers of `pkgrec-logic`).
//! That is the strongest end-to-end check available for a pure theory
//! paper: the reductions *are* its results.
//!
//! | Module | Paper result | Source problem → target |
//! |---|---|---|
//! | [`gadgets`] | Figure 4.1 (+ `Ic`) | truth tables as relations |
//! | [`encode`] | the `Qψ` subqueries | CNF/DNF → gate-atom chains |
//! | [`lemma4_2`] | Lemma 4.2 | ∃*∀*3DNF → compatibility (Σp₂) |
//! | [`thm4_1`] | Theorem 4.1 | ¬compatibility → RPP (Πp₂) |
//! | [`lemma4_4`] | Lemma 4.4 / Thm 4.3 | 3SAT → compatibility / RPP (data) |
//! | [`thm4_5`] | Theorem 4.5 | SAT-UNSAT → RPP without Qc (DP) |
//! | [`thm5_1`] | Theorem 5.1 | maximum-Σp₂ / MAX-WEIGHT SAT → FRP |
//! | [`thm5_2`] | Theorem 5.2 | Σ₂ pair / SAT-UNSAT → MBP (Dp₂ / DP) |
//! | [`thm5_3`] | Theorem 5.3 | #Π₁SAT / #Σ₁SAT / #SAT → CPP |
//! | [`thm6_4`] | Theorem 6.4 | MAX-WEIGHT SAT / SAT-UNSAT → item FRP / MBP |
//! | [`thm7_2`] | Theorem 7.2 | ∃*∀*3DNF / 3SAT → QRPP |
//! | [`thm8_1`] | Theorem 8.1 | ∃*∀*3DNF / 3SAT → ARPP |
//! | [`membership`] | Thm 4.1 (PSPACE rows) | QBF → DATALOGnr / FO membership |

pub mod encode;
pub mod gadgets;
pub mod lemma4_2;
pub mod lemma4_4;
pub mod membership;
pub mod thm4_1;
pub mod thm4_5;
pub mod thm5_1;
pub mod thm5_2;
pub mod thm5_3;
pub mod thm6_4;
pub mod thm7_2;
pub mod thm8_1;
