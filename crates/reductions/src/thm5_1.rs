//! **Theorem 5.1** — hardness of FRP, the function problem.
//!
//! *Combined complexity* (FPΣp₂, CQ): reduction from the **maximum-Σp₂**
//! problem — given `φ(X) = ∀Y ψ(X, Y)`, find the lexicographically
//! *last* X assignment making `φ` true. The construction reuses the
//! Lemma 4.2 instance and rates a singleton `{t}` by reading `t` as a
//! binary number, so the top-1 package encodes exactly that
//! assignment.
//!
//! *Data complexity* (FPNP, fixed CQ): reduction from **MAX-WEIGHT
//! SAT** over the Lemma 4.4 clause relation: `val(N)` sums the weights
//! of the clauses whose tuples `N` contains, so the top-1 package's
//! rating equals the maximum satisfiable weight.

use pkgrec_core::{Constraint, Ext, PackageFn, RecInstance};
use pkgrec_logic::{MaxWeightSat, Sigma2Dnf};
use pkgrec_query::{ConjunctiveQuery, Query};

use crate::encode::{assignment_atoms, var_terms};
use crate::gadgets::gadget_db;
use crate::lemma4_2::forall_y_constraint;
use crate::lemma4_4;

/// Build the combined-complexity reduction: the FRP top-1 answer (if
/// any) is the singleton encoding the lexicographically last satisfying
/// X assignment of `∀Y ψ(X, Y)`.
pub fn reduce_maximum_sigma2(phi: &Sigma2Dnf) -> RecInstance {
    let xs = var_terms("x", phi.x_vars);
    let q = Query::Cq(ConjunctiveQuery::new(
        xs.clone(),
        assignment_atoms(&xs),
        vec![],
    ));
    RecInstance::new(gadget_db(), q)
        .with_qc(Constraint::Query(forall_y_constraint(phi, &[])))
        .with_cost(PackageFn::count())
        .with_budget(1.0)
        .with_val(PackageFn::binary_value((0..phi.x_vars).collect()))
        .with_k(1)
}

/// Build the data-complexity reduction from a MAX-WEIGHT SAT instance:
/// the rating of the FRP top-1 package equals the maximum total weight
/// of simultaneously satisfiable clauses.
pub fn reduce_max_weight_sat(inst: &MaxWeightSat) -> RecInstance {
    let base = lemma4_4::reduce(&inst.formula).instance;
    let weights = inst.weights.clone();
    let val = PackageFn::custom("sum of weights of covered cids", false, move |p| {
        Ext::Finite(
            p.iter()
                .map(|t| {
                    let cid = t[0].as_int().expect("cid is an Int") as usize;
                    weights[cid - 1] as f64
                })
                .sum(),
        )
    });
    base.with_val(val).with_k(1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use pkgrec_core::{problems::frp, SolveOptions};
    use pkgrec_logic::{assignment_index, gen, max_weight_sat, MaximumSigma2};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn top_1_encodes_the_lexicographically_last_satisfying_x() {
        let mut rng = StdRng::seed_from_u64(47);
        let (mut some, mut none) = (0, 0);
        for _ in 0..25 {
            let phi = gen::random_sigma2(&mut rng, 3, 2, 3);
            let direct = MaximumSigma2(phi.clone()).last_satisfying_x();
            let inst = reduce_maximum_sigma2(&phi);
            let sel = frp::top_k(&inst, &SolveOptions::default()).unwrap().value;
            match (&direct, &sel) {
                (None, None) => none += 1,
                (Some(x), Some(packages)) => {
                    some += 1;
                    let t = packages[0].iter().next().expect("singleton");
                    let bits: Vec<bool> =
                        t.values().iter().map(|v| v.as_bool().unwrap()).collect();
                    assert_eq!(&bits, x, "φ = ∃X∀Y {}", phi.matrix);
                    // The rating equals the lexicographic rank.
                    assert_eq!(
                        inst.val.eval(&packages[0]),
                        Ext::Finite(assignment_index(x) as f64)
                    );
                }
                _ => panic!(
                    "solver disagreement on φ = ∃X∀Y {}: direct {:?}, frp {:?}",
                    phi.matrix, direct, sel
                ),
            }
        }
        assert!(some > 0 && none > 0, "degenerate sample: some={some} none={none}");
    }

    #[test]
    fn top_1_rating_equals_max_weight() {
        let mut rng = StdRng::seed_from_u64(48);
        for _ in 0..15 {
            let inst = gen::random_max_weight_sat(&mut rng, 4, 5, 9);
            let (direct_weight, _) = max_weight_sat(&inst);
            let rec = reduce_max_weight_sat(&inst);
            let sel = frp::top_k(&rec, &SolveOptions::default())
                .unwrap()
                .value
                .expect("a single-tuple package always exists");
            assert_eq!(
                rec.val.eval(&sel[0]),
                Ext::Finite(direct_weight as f64),
                "instance {}",
                inst.formula
            );
        }
    }

    #[test]
    fn max_weight_package_extends_to_an_assignment() {
        // The winning package must itself be consistent, so its partial
        // assignment extends to one achieving the same weight.
        let mut rng = StdRng::seed_from_u64(49);
        let inst = gen::random_max_weight_sat(&mut rng, 4, 6, 5);
        let rec = reduce_max_weight_sat(&inst);
        let sel = frp::top_k(&rec, &SolveOptions::default()).unwrap().value.unwrap();
        assert!(lemma4_4::package_is_consistent(&sel[0]));
    }
}
