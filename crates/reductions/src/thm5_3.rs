//! **Theorem 5.3** — hardness of CPP, the counting problem, via
//! *parsimonious* reductions (the number of valid packages equals the
//! number of counted objects):
//!
//! * with `Qc` (#·coNP): from **#Π₁SAT** — count Y assignments making
//!   `∀X (C1 ∨ ... ∨ Cr)` true (`Ci` conjunctive);
//! * without `Qc` (#·NP): from **#Σ₁SAT** — count Y assignments making
//!   `∃X (C1 ∧ ... ∧ Cr)` true (`Ci` disjunctive);
//! * data complexity (#·P): from **#SAT** over the fixed Lemma 4.4
//!   query, with `B = r` so valid packages are exactly the satisfying
//!   assignments.

use pkgrec_core::{Constraint, Ext, PackageFn, RecInstance, ANSWER_RELATION};
use pkgrec_logic::{CnfFormula, DnfFormula};
use pkgrec_query::{Builtin, ConjunctiveQuery, Query, RelAtom, Term};

use crate::encode::{assignment_atoms, encode_cnf, var_terms, FreshVars};
use crate::gadgets::gadget_db;
use crate::lemma4_4;

/// Variable terms for a mixed X∪Y formula: X variables (`0..x_vars`)
/// map to `xs`, the rest to `ys`.
fn mixed_terms(xs: &[Term], ys: &[Term]) -> Vec<Term> {
    xs.iter().chain(ys.iter()).cloned().collect()
}

/// Build the #Π₁SAT reduction (CPP **with** compatibility
/// constraints). `matrix` is the DNF body of `∀X ψ`, with X = the
/// first `x_vars` variables; the count of valid packages equals the
/// number of Y assignments making the sentence true.
pub fn reduce_pi1(matrix: &DnfFormula, x_vars: usize) -> (RecInstance, Ext) {
    let y_vars = matrix.num_vars - x_vars;
    let ys = var_terms("y", y_vars);
    let q = Query::Cq(ConjunctiveQuery::new(
        ys.clone(),
        assignment_atoms(&ys),
        vec![],
    ));

    // Qc: a packaged Y assignment is incompatible iff some X assignment
    // makes ¬ψ (a CNF) true.
    let qc = {
        let xs = var_terms("x", x_vars);
        let mut atoms = vec![RelAtom::new(ANSWER_RELATION, ys.clone())];
        atoms.extend(assignment_atoms(&xs));
        let neg = matrix.negate_to_cnf();
        let mut fresh = FreshVars::new("_n");
        let t = encode_cnf(&neg, &mixed_terms(&xs, &ys), &mut fresh, &mut atoms);
        Query::Cq(ConjunctiveQuery::new(
            Vec::<Term>::new(),
            atoms,
            vec![Builtin::eq(t, Term::c(true))],
        ))
    };

    let instance = RecInstance::new(gadget_db(), q)
        .with_qc(Constraint::Query(qc))
        .with_cost(PackageFn::count())
        .with_budget(1.0)
        .with_val(PackageFn::constant(Ext::Finite(1.0)));
    (instance, Ext::Finite(1.0))
}

/// Build the #Σ₁SAT reduction (CPP **without** compatibility
/// constraints). `matrix` is the CNF body of `∃X φ`, X = the first
/// `x_vars` variables.
pub fn reduce_sigma1(matrix: &CnfFormula, x_vars: usize) -> (RecInstance, Ext) {
    let y_vars = matrix.num_vars - x_vars;
    let xs = var_terms("x", x_vars);
    let ys = var_terms("y", y_vars);
    let mut atoms = assignment_atoms(&ys);
    atoms.extend(assignment_atoms(&xs));
    let mut fresh = FreshVars::new("_s");
    let t = encode_cnf(matrix, &mixed_terms(&xs, &ys), &mut fresh, &mut atoms);
    let q = Query::Cq(ConjunctiveQuery::new(
        ys,
        atoms,
        vec![Builtin::eq(t, Term::c(true))],
    ));

    let instance = RecInstance::new(gadget_db(), q)
        .with_cost(PackageFn::count())
        .with_budget(1.0)
        .with_val(PackageFn::constant(Ext::Finite(1.0)));
    (instance, Ext::Finite(1.0))
}

/// Build the #SAT data-complexity reduction: the Lemma 4.4 instance
/// with `B = r`, so valid packages are exactly the consistent full
/// clause covers — i.e. the satisfying assignments of the variables
/// occurring in `φ`.
pub fn reduce_sharp_sat(phi: &CnfFormula) -> (RecInstance, Ext) {
    let r = lemma4_4::reduce(phi);
    (r.instance, Ext::Finite(phi.clauses.len() as f64))
}

/// Build the **#QBF** reduction for CPP(DATALOGnr) (#·PSPACE row of
/// Theorem 5.3): the query is the free-prefix Q3SAT encoding, so valid
/// packages are exactly the singletons over the free-block assignments
/// making the quantified remainder true.
pub fn reduce_sharp_qbf_datalognr(
    qbf: &pkgrec_logic::QbfFormula,
    free_vars: usize,
) -> (RecInstance, Ext) {
    let (db, q) = crate::membership::qbf_to_datalognr_free(qbf, free_vars);
    let instance = RecInstance::new(db, q)
        .with_cost(PackageFn::count())
        .with_budget(1.0)
        .with_val(PackageFn::constant(Ext::Finite(1.0)));
    (instance, Ext::Finite(1.0))
}

/// The same #QBF reduction over the FO encoding (the #·PSPACE row for
/// FO).
pub fn reduce_sharp_qbf_fo(
    qbf: &pkgrec_logic::QbfFormula,
    free_vars: usize,
) -> (RecInstance, Ext) {
    let (db, q) = crate::membership::qbf_to_fo_free(qbf, free_vars);
    let instance = RecInstance::new(db, q)
        .with_cost(PackageFn::count())
        .with_budget(1.0)
        .with_val(PackageFn::constant(Ext::Finite(1.0)));
    (instance, Ext::Finite(1.0))
}

#[cfg(test)]
mod tests {
    use super::*;
    use pkgrec_core::{problems::cpp, SolveOptions};
    use pkgrec_logic::{assignments, count_pi1, count_sigma1, gen, Lit};
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use std::collections::BTreeSet;

    #[test]
    fn pi1_counts_agree() {
        let mut rng = StdRng::seed_from_u64(52);
        let mut nonzero = 0;
        for _ in 0..12 {
            let matrix = gen::random_3dnf(&mut rng, 4, 3);
            let direct = count_pi1(&matrix, 2);
            let (inst, b) = reduce_pi1(&matrix, 2);
            let counted = cpp::count_valid(&inst, b, &SolveOptions::default()).unwrap().value;
            assert_eq!(counted, direct, "matrix {matrix}");
            if direct > 0 {
                nonzero += 1;
            }
        }
        assert!(nonzero > 0, "degenerate sample: all counts zero");
    }

    #[test]
    fn sigma1_counts_agree() {
        let mut rng = StdRng::seed_from_u64(54);
        let mut interesting = 0;
        for _ in 0..12 {
            let matrix = gen::random_3cnf(&mut rng, 4, 4);
            let direct = count_sigma1(&matrix, 2);
            let (inst, b) = reduce_sigma1(&matrix, 2);
            let counted = cpp::count_valid(&inst, b, &SolveOptions::default()).unwrap().value;
            assert_eq!(counted, direct, "matrix {matrix}");
            if direct > 0 && direct < 4 {
                interesting += 1;
            }
        }
        assert!(interesting > 0, "degenerate sample: trivial counts only");
    }

    /// Satisfying assignments of the variables that actually occur in
    /// the formula (the objects the package count enumerates).
    fn count_over_occurring_vars(phi: &CnfFormula) -> u128 {
        let occurring: BTreeSet<usize> = phi
            .clauses
            .iter()
            .flat_map(|c| c.0.iter().map(|l| l.var))
            .collect();
        let vars: Vec<usize> = occurring.into_iter().collect();
        assignments(vars.len())
            .filter(|bits| {
                let mut full = vec![false; phi.num_vars];
                for (&v, &b) in vars.iter().zip(bits.iter()) {
                    full[v] = b;
                }
                phi.eval(&full)
            })
            .count() as u128
    }

    #[test]
    fn sharp_sat_counts_agree() {
        let mut rng = StdRng::seed_from_u64(54);
        let mut nonzero = 0;
        for _ in 0..15 {
            let phi = gen::random_3cnf(&mut rng, 4, 6);
            let direct = count_over_occurring_vars(&phi);
            let (inst, b) = reduce_sharp_sat(&phi);
            let counted = cpp::count_valid(&inst, b, &SolveOptions::default()).unwrap().value;
            assert_eq!(counted, direct, "φ = {phi}");
            if direct > 0 {
                nonzero += 1;
            }
        }
        assert!(nonzero > 0, "degenerate sample: all counts zero");
    }

    #[test]
    fn sharp_qbf_counts_agree_on_both_encodings() {
        let mut rng = StdRng::seed_from_u64(77);
        let mut nonzero = 0;
        for _ in 0..10 {
            let qbf = gen::random_qbf(&mut rng, 4, 4);
            for free in [1usize, 2] {
                let direct = qbf.count_free_prefix(free);
                let (dl, b1) = reduce_sharp_qbf_datalognr(&qbf, free);
                let got_dl = cpp::count_valid(&dl, b1, &SolveOptions::default()).unwrap().value;
                assert_eq!(got_dl, direct, "DATALOGnr, matrix {}", qbf.matrix);
                let (fo, b2) = reduce_sharp_qbf_fo(&qbf, free);
                let got_fo = cpp::count_valid(&fo, b2, &SolveOptions::default()).unwrap().value;
                assert_eq!(got_fo, direct, "FO, matrix {}", qbf.matrix);
                if direct > 0 {
                    nonzero += 1;
                }
            }
        }
        assert!(nonzero > 0, "degenerate sample: all counts zero");
    }

    #[test]
    fn hand_instance_pi1() {
        // ∀x ((x ∧ y0) ∨ (¬x ∧ y1)): true iff y0 ∧ y1 — one Y
        // assignment.
        let matrix = DnfFormula::new(
            3,
            vec![
                pkgrec_logic::Conjunct::new(vec![Lit::pos(0), Lit::pos(1)]),
                pkgrec_logic::Conjunct::new(vec![Lit::neg(0), Lit::pos(2)]),
            ],
        );
        let (inst, b) = reduce_pi1(&matrix, 1);
        assert_eq!(
            cpp::count_valid(&inst, b, &SolveOptions::default()).unwrap().value,
            1
        );
    }
}
