//! **Lemma 4.2** — Σp₂-hardness of the compatibility problem for CQ,
//! by reduction from ∃*∀*3DNF.
//!
//! Given `φ = ∃X ∀Y ψ(X, Y)` the construction builds:
//!
//! * `D` — the Figure 4.1 gadgets;
//! * `Q(x̄) = R01(x1) ∧ ... ∧ R01(xm)` — all X assignments;
//! * `Qc(b) = ∃x̄ ȳ (R_Q(x̄) ∧ Q_Y(ȳ) ∧ Qψ(x̄, ȳ, b) ∧ b = 0)` —
//!   nonempty iff the packaged X assignment has a Y assignment
//!   falsifying ψ;
//! * `cost = |N|` (`∅ ↦ ∞`), `C = 1`, `val ≡ 1`, `B = 0`.
//!
//! Then `φ` is true **iff** a nonempty package `N ⊆ Q(D)` exists with
//! `cost(N) ≤ C`, `val(N) > B` and `Qc(N, D) = ∅`.

use pkgrec_core::{Constraint, Ext, PackageFn, RecInstance, ANSWER_RELATION};
use pkgrec_logic::Sigma2Dnf;
use pkgrec_query::{Builtin, ConjunctiveQuery, Query, RelAtom, Term};

use crate::encode::{assignment_atoms, encode_dnf, var_terms, FreshVars};
use crate::gadgets::gadget_db;

/// The produced compatibility-problem instance.
#[derive(Debug, Clone)]
pub struct CompatReduction {
    /// The instance `(Q, D, Qc, cost(), val(), C)`.
    pub instance: RecInstance,
    /// The rating bound `B` (strict: a witness needs `val > B`).
    pub rating_bound: Ext,
}

/// The compatibility constraint `Qc` of the construction — also reused
/// by Theorems 4.1, 5.1 and 8.1. `answer_vars` are the head variables
/// of `Q` that `R_Q` binds.
pub(crate) fn forall_y_constraint(phi: &Sigma2Dnf, extra_rq_terms: &[Term]) -> Query {
    let xs = var_terms("x", phi.x_vars);
    let ys = var_terms("y", phi.y_vars());

    let mut rq_terms = xs.clone();
    rq_terms.extend(extra_rq_terms.iter().cloned());
    let mut atoms = vec![RelAtom::new(ANSWER_RELATION, rq_terms)];
    atoms.extend(assignment_atoms(&ys));

    let mut all_vars = xs;
    all_vars.extend(ys);
    let mut fresh = FreshVars::new("_g");
    let b = encode_dnf(&phi.matrix, &all_vars, &mut fresh, &mut atoms);

    Query::Cq(ConjunctiveQuery::new(
        vec![b.clone()],
        atoms,
        vec![Builtin::eq(b, Term::c(false))],
    ))
}

/// Build the Lemma 4.2 reduction.
pub fn reduce(phi: &Sigma2Dnf) -> CompatReduction {
    let xs = var_terms("x", phi.x_vars);
    let q = Query::Cq(ConjunctiveQuery::new(
        xs.clone(),
        assignment_atoms(&xs),
        vec![],
    ));
    let qc = forall_y_constraint(phi, &[]);

    let instance = RecInstance::new(gadget_db(), q)
        .with_qc(Constraint::Query(qc))
        .with_cost(PackageFn::count())
        .with_budget(1.0)
        .with_val(PackageFn::constant(Ext::Finite(1.0)));
    CompatReduction {
        instance,
        rating_bound: Ext::Finite(0.0),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pkgrec_core::{problems::compat, SolveOptions};
    use pkgrec_logic::{gen, Conjunct, DnfFormula, Lit};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn solves_to(phi: &Sigma2Dnf) -> bool {
        let r = reduce(phi);
        compat::compatibility(&r.instance, r.rating_bound, &SolveOptions::default()).unwrap()
    }

    #[test]
    fn hand_picked_instances() {
        // ψ = (x ∧ y) ∨ (x ∧ ¬y) ≡ x: ∃x∀y ψ true.
        let yes = Sigma2Dnf::new(
            1,
            DnfFormula::new(
                2,
                vec![
                    Conjunct::new(vec![Lit::pos(0), Lit::pos(1)]),
                    Conjunct::new(vec![Lit::pos(0), Lit::neg(1)]),
                ],
            ),
        );
        assert!(yes.is_true());
        assert!(solves_to(&yes));

        // ψ ≡ y: false.
        let no = Sigma2Dnf::new(
            1,
            DnfFormula::new(
                2,
                vec![
                    Conjunct::new(vec![Lit::pos(0), Lit::pos(1)]),
                    Conjunct::new(vec![Lit::neg(0), Lit::pos(1)]),
                ],
            ),
        );
        assert!(!no.is_true());
        assert!(!solves_to(&no));
    }

    #[test]
    fn agrees_with_direct_solver_on_random_instances() {
        let mut rng = StdRng::seed_from_u64(42);
        let mut yes = 0;
        let mut no = 0;
        for i in 0..16 {
            let mut phi = gen::random_sigma2(&mut rng, 2, 2, 3);
            if i % 2 == 0 {
                phi = gen::force_true_sigma2(&phi);
            }
            let direct = phi.is_true();
            if direct {
                yes += 1;
            } else {
                no += 1;
            }
            assert_eq!(solves_to(&phi), direct, "φ = ∃X∀Y {}", phi.matrix);
        }
        // The sample must exercise both answers for the test to mean
        // anything.
        assert!(yes > 0 && no > 0, "degenerate sample: yes={yes} no={no}");
    }

    #[test]
    fn witness_encodes_a_satisfying_x() {
        // ψ ≡ (x0 ∧ ¬x1): φ true via exactly (x0, x1) = (1, 0).
        let phi = Sigma2Dnf::new(
            2,
            DnfFormula::new(
                3,
                vec![Conjunct::new(vec![Lit::pos(0), Lit::neg(1), Lit::pos(2)]),
                     Conjunct::new(vec![Lit::pos(0), Lit::neg(1), Lit::neg(2)])],
            ),
        );
        let r = reduce(&phi);
        let w = compat::compatibility_witness(&r.instance, r.rating_bound, &SolveOptions::default())
            .unwrap()
            .unwrap();
        let t = w.iter().next().unwrap();
        assert_eq!(t.values()[0].as_bool(), Some(true));
        assert_eq!(t.values()[1].as_bool(), Some(false));
    }
}
