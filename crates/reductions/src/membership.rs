//! Membership-problem encodings — the engine of the PSPACE/EXPTIME
//! lower bounds for DATALOGnr, FO and DATALOG (Theorem 4.1 and
//! onwards).
//!
//! The paper reduces from Q3SAT (quantified 3CNF): we compile a QBF
//! sentence into
//!
//! * a **DATALOGnr program** with one IDB predicate per quantifier
//!   block, evaluating the sentence bottom-up (∀ as a two-atom join on
//!   the Boolean constants, ∃ as projection), and
//! * an **FO sentence** whose quantifier prefix mirrors the QBF's,
//!   evaluated under active-domain semantics over the Boolean domain;
//!
//! plus the generic `t ∈ Q(D)` → RPP wrapping used by all the
//! membership-based lower bounds (`{t}` is a top-1 selection iff
//! `t ∈ Q(D)` once every package rates equally).

use pkgrec_core::{Ext, Package, PackageFn, RecInstance};
use pkgrec_data::{Database, Tuple};
use pkgrec_logic::{QbfFormula, Quant};
use pkgrec_query::{
    BodyLiteral, Builtin, CmpOp, DatalogProgram, FoQuery, Formula, Query, RelAtom, Rule, Term,
};

use crate::encode::{encode_cnf, var_terms, FreshVars};
use crate::gadgets::{gadget_db, R01};

/// Compile a QBF into a non-recursive Datalog program over the gadget
/// database: the 0-ary output predicate `p0` derives `()` iff the
/// sentence is true.
pub fn qbf_to_datalognr(qbf: &QbfFormula) -> (Database, Query) {
    qbf_to_datalognr_free(qbf, 0)
}

/// Like [`qbf_to_datalognr`], but with the first `free_vars` variables
/// left *free*: the output predicate `p{free_vars}(v1..v{free_vars})`
/// derives exactly the assignments of the free block under which the
/// remaining quantified sentence is true. With `free_vars = 0` this is
/// the membership encoding; with a leading free block it is the #QBF
/// encoding behind the #·PSPACE row of CPP (Theorem 5.3).
pub fn qbf_to_datalognr_free(qbf: &QbfFormula, free_vars: usize) -> (Database, Query) {
    let n = qbf.matrix.num_vars;
    assert!(free_vars <= n, "free block exceeds the variable count");
    let vars = var_terms("v", n);

    let mut rules = Vec::new();

    // Innermost predicate: p{n}(v1..vn) ← matrix(v̄) = 1.
    {
        let mut atoms: Vec<RelAtom> = vars
            .iter()
            .map(|v| RelAtom::new(R01, vec![v.clone()]))
            .collect();
        let mut fresh = FreshVars::new("_m");
        let t = encode_cnf(&qbf.matrix, &vars, &mut fresh, &mut atoms);
        let mut body: Vec<BodyLiteral> = atoms.into_iter().map(BodyLiteral::Rel).collect();
        body.push(BodyLiteral::Builtin(Builtin::cmp(
            t,
            CmpOp::Eq,
            Term::c(true),
        )));
        rules.push(Rule::new(
            RelAtom::new(format!("p{n}"), vars.clone()),
            body,
        ));
    }

    // Quantifier elimination, innermost first, stopping at the free
    // block: p{i-1} from p{i}.
    for i in ((free_vars + 1)..=n).rev() {
        let head_vars: Vec<Term> = vars[..i - 1].to_vec();
        let head = RelAtom::new(format!("p{}", i - 1), head_vars.clone());
        let body = match qbf.quants[i - 1] {
            Quant::Exists => {
                // p{i-1}(v̄) ← p{i}(v̄, vi), R01(vi).
                let mut args = head_vars.clone();
                args.push(vars[i - 1].clone());
                vec![
                    BodyLiteral::Rel(RelAtom::new(format!("p{i}"), args)),
                    BodyLiteral::Rel(RelAtom::new(R01, vec![vars[i - 1].clone()])),
                ]
            }
            Quant::Forall => {
                // p{i-1}(v̄) ← p{i}(v̄, 0), p{i}(v̄, 1).
                let mut zero = head_vars.clone();
                zero.push(Term::c(false));
                let mut one = head_vars.clone();
                one.push(Term::c(true));
                vec![
                    BodyLiteral::Rel(RelAtom::new(format!("p{i}"), zero)),
                    BodyLiteral::Rel(RelAtom::new(format!("p{i}"), one)),
                ]
            }
        };
        rules.push(Rule::new(head, body));
    }

    // A `p{free_vars}`-ary head needs a defining rule even when
    // free_vars = n — covered: the matrix rule always exists.
    let program = DatalogProgram::new(rules, format!("p{free_vars}"));
    debug_assert!(program.is_nonrecursive());
    (gadget_db(), Query::Datalog(program))
}

/// Compile a QBF into an FO sentence (a 0-ary query) over the gadget
/// database, with the same quantifier prefix and a comparison-encoded
/// matrix.
pub fn qbf_to_fo(qbf: &QbfFormula) -> (Database, Query) {
    qbf_to_fo_free(qbf, 0)
}

/// Like [`qbf_to_fo`], but with the first `free_vars` variables free
/// (guarded by `R01` so they range over the Boolean domain): the query
/// answers are exactly the free-block assignments under which the
/// remaining sentence holds.
pub fn qbf_to_fo_free(qbf: &QbfFormula, free_vars: usize) -> (Database, Query) {
    let n = qbf.matrix.num_vars;
    assert!(free_vars <= n, "free block exceeds the variable count");
    // Matrix: ∧ clauses of ∨ literals; literal x ↦ (x = 1), ¬x ↦ (x = 0).
    let matrix = Formula::and(
        qbf.matrix
            .clauses
            .iter()
            .map(|c| {
                Formula::or(
                    c.0.iter()
                        .map(|l| {
                            Formula::Builtin(Builtin::cmp(
                                Term::v(format!("v{}", l.var)),
                                CmpOp::Eq,
                                Term::c(l.positive),
                            ))
                        })
                        .collect::<Vec<_>>(),
                )
            })
            .collect::<Vec<_>>(),
    );
    // Quantifier prefix, innermost (highest index) applied first,
    // stopping before the free block. Each variable is guarded by R01
    // so the quantifiers range over the Boolean domain regardless of
    // other database content.
    let mut body = matrix;
    for i in (free_vars..n).rev() {
        let v = pkgrec_query::var(format!("v{i}"));
        let guard = Formula::Atom(RelAtom::new(R01, vec![Term::Var(v.clone())]));
        body = match qbf.quants[i] {
            Quant::Exists => Formula::exists(vec![v], Formula::and(vec![guard, body])),
            Quant::Forall => Formula::forall(
                vec![v],
                Formula::or(vec![Formula::not(guard), body]),
            ),
        };
    }
    // Guard the free variables and expose them in the head.
    let head: Vec<Term> = (0..free_vars).map(|i| Term::v(format!("v{i}"))).collect();
    let mut parts: Vec<Formula> = head
        .iter()
        .map(|t| Formula::Atom(RelAtom::new(R01, vec![t.clone()])))
        .collect();
    parts.push(body);
    (
        gadget_db(),
        Query::Fo(FoQuery::new(head, Formula::and(parts))),
    )
}

/// The Theorem 4.1 membership → RPP wrapping: with a constant rating
/// and unit-cost singletons, `{t}` is a top-1 package selection **iff**
/// `t ∈ Q(D)`.
pub fn rpp_from_membership(db: Database, query: Query, t: Tuple) -> (RecInstance, Vec<Package>) {
    let instance = RecInstance::new(db, query)
        .with_cost(PackageFn::count())
        .with_budget(1.0)
        .with_val(PackageFn::constant(Ext::Finite(1.0)))
        .with_k(1);
    (instance, vec![Package::singleton(t)])
}

#[cfg(test)]
mod tests {
    use super::*;
    use pkgrec_core::{problems::rpp, SolveOptions};
    use pkgrec_data::tuple;
    use pkgrec_logic::gen;
    use pkgrec_query::QueryLanguage;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn datalognr_encoding_agrees_with_qbf_solver() {
        let mut rng = StdRng::seed_from_u64(63);
        let (mut yes, mut no) = (0, 0);
        for _ in 0..20 {
            let qbf = gen::random_qbf(&mut rng, 4, 5);
            let direct = qbf.is_true();
            if direct {
                yes += 1;
            } else {
                no += 1;
            }
            let (db, q) = qbf_to_datalognr(&qbf);
            assert_eq!(q.language(), QueryLanguage::DatalogNr);
            let ans = q.eval(&db).unwrap();
            assert_eq!(!ans.is_empty(), direct, "qbf matrix {}", qbf.matrix);
        }
        assert!(yes > 0 && no > 0, "degenerate sample: yes={yes} no={no}");
    }

    #[test]
    fn fo_encoding_agrees_with_qbf_solver() {
        let mut rng = StdRng::seed_from_u64(64);
        let (mut yes, mut no) = (0, 0);
        for _ in 0..20 {
            let qbf = gen::random_qbf(&mut rng, 4, 5);
            let direct = qbf.is_true();
            if direct {
                yes += 1;
            } else {
                no += 1;
            }
            let (db, q) = qbf_to_fo(&qbf);
            let ans = q.eval(&db).unwrap();
            assert_eq!(!ans.is_empty(), direct, "qbf matrix {}", qbf.matrix);
        }
        assert!(yes > 0 && no > 0, "degenerate sample: yes={yes} no={no}");
    }

    #[test]
    fn both_encodings_agree_with_each_other() {
        let mut rng = StdRng::seed_from_u64(65);
        for _ in 0..10 {
            let qbf = gen::random_qbf(&mut rng, 3, 4);
            let (db1, q1) = qbf_to_datalognr(&qbf);
            let (db2, q2) = qbf_to_fo(&qbf);
            assert_eq!(
                q1.eval(&db1).unwrap().is_empty(),
                q2.eval(&db2).unwrap().is_empty()
            );
        }
    }

    #[test]
    fn rpp_wrapping_decides_membership() {
        let mut rng = StdRng::seed_from_u64(66);
        for _ in 0..10 {
            let qbf = gen::random_qbf(&mut rng, 3, 4);
            let direct = qbf.is_true();
            let (db, q) = qbf_to_datalognr(&qbf);
            let (inst, sel) = rpp_from_membership(db, q, tuple![]);
            let ans = rpp::is_top_k(&inst, &sel, &SolveOptions::default()).unwrap();
            assert_eq!(ans, direct);
        }
    }
}
