//! **Theorem 7.2** — hardness of QRPP, the query-relaxation
//! recommendation problem.
//!
//! *Combined complexity* (Σp₂, CQ): from ∃*∀*3DNF. The query
//! `Q(x̄, c) = R01(x1) ∧ ... ∧ R01(xm) ∧ R01(c) ∧ c = 0` returns only
//! `c = 0` tuples, which rate `−∞`; relaxing the constant `0` in the
//! selection predicate (`dist(c, 0) ≤ 1` over the Boolean metric,
//! gap 1) admits `c = 1` tuples, which are valid exactly when the
//! packaged X assignment satisfies `∀Y ψ`.
//!
//! *Data complexity* (NP, fixed CQ): from 3SAT over an augmented
//! Lemma 4.4 relation with a visibility flag `V`; the unrelaxed query
//! selects `V = 0` (empty), and the unit-gap relaxation reveals the
//! clause tuples, among which a valid package exists iff `φ` is
//! satisfiable.

use pkgrec_core::{Constraint, Ext, PackageFn, RecInstance};
use pkgrec_data::{AttrType, Database, Relation, RelationSchema, Tuple, Value};
use pkgrec_logic::{assignments, CnfFormula, Sigma2Dnf};
use pkgrec_query::{AbsDiff, Builtin, ConjunctiveQuery, MetricSet, Query, RelAtom, Term};
use pkgrec_relax::{BuiltinRelaxParam, QrppInstance, RelaxSpec};

use crate::encode::{assignment_atoms, var_terms};
use crate::gadgets::{gadget_db, R01};
use crate::lemma4_2::forall_y_constraint;

/// The Boolean metric used by both constructions: `dist(0, 1) = 1`.
pub fn bool_metric() -> MetricSet {
    MetricSet::new().with("bool", AbsDiff)
}

/// Build the combined-complexity reduction: a relaxation within gap 1
/// exists **iff** `∃X ∀Y ψ` is true.
pub fn reduce_sigma2(phi: &Sigma2Dnf) -> QrppInstance {
    let xs = var_terms("x", phi.x_vars);
    let c = Term::v("c");
    let mut atoms = assignment_atoms(&xs);
    atoms.push(RelAtom::new(R01, vec![c.clone()]));
    let mut head = xs.clone();
    head.push(c.clone());
    let q = Query::Cq(ConjunctiveQuery::new(
        head,
        atoms,
        vec![Builtin::eq(c, Term::c(false))],
    ));

    // Qc: the packaged (x̄, c) row fails ∀Y ψ — reuse the Lemma 4.2
    // constraint with the extra `c` column on R_Q.
    let qc = forall_y_constraint(phi, &[Term::v("_c_extra")]);

    // val: 1 when the packaged row has c = 1, −∞ otherwise.
    let c_pos = phi.x_vars;
    let val = PackageFn::custom("1 iff the single row has c = 1", false, move |p| {
        if p.len() != 1 {
            return Ext::NegInf;
        }
        let t = p.iter().next().expect("len 1");
        if t[c_pos].as_bool() == Some(true) {
            Ext::Finite(1.0)
        } else {
            Ext::NegInf
        }
    });

    let base = RecInstance::new(gadget_db(), q)
        .with_qc(Constraint::Query(qc))
        .with_cost(PackageFn::count())
        .with_budget(1.0)
        .with_val(val)
        .with_k(1)
        .with_metrics(bool_metric());
    QrppInstance {
        base,
        spec: RelaxSpec {
            constants: vec![],
            builtin_constants: vec![BuiltinRelaxParam::new(0, "bool")],
            joins: vec![],
        },
        rating_bound: Ext::Finite(1.0),
        gap_budget: 1,
    }
}

/// The augmented clause relation `RC(cid, L1, V1, L2, V2, L3, V3, V)`
/// of the data-complexity proof: Lemma 4.4 tuples with a visibility
/// flag `V = 1`.
pub const RC8_REL: &str = "rc_hidden";

fn rc8_schema() -> RelationSchema {
    RelationSchema::new(
        RC8_REL,
        [
            ("cid", AttrType::Int),
            ("l1", AttrType::Int),
            ("v1", AttrType::Bool),
            ("l2", AttrType::Int),
            ("v2", AttrType::Bool),
            ("l3", AttrType::Int),
            ("v3", AttrType::Bool),
            ("v", AttrType::Bool),
        ],
    )
    .expect("valid schema")
}

fn encode_hidden_clauses(phi: &CnfFormula) -> Relation {
    let mut rel = Relation::empty(rc8_schema());
    for (i, clause) in phi.clauses.iter().enumerate() {
        let cid = (i + 1) as i64;
        let lits = crate::lemma4_4::pad3(&clause.0);
        let mut vars: Vec<usize> = Vec::new();
        for l in &lits {
            if !vars.contains(&l.var) {
                vars.push(l.var);
            }
        }
        for local in assignments(vars.len()) {
            let assign: std::collections::BTreeMap<usize, bool> =
                vars.iter().copied().zip(local.iter().copied()).collect();
            if !lits.iter().any(|l| assign[&l.var] == l.positive) {
                continue;
            }
            let mut values: Vec<Value> = vec![Value::Int(cid)];
            for l in &lits {
                values.push(Value::Int(l.var as i64));
                values.push(Value::Bool(assign[&l.var]));
            }
            values.push(Value::Bool(true));
            rel.insert(Tuple::new(values)).expect("schema-conformant");
        }
    }
    rel
}

/// Build the data-complexity reduction: a unit-gap relaxation admitting
/// a valid package exists **iff** `φ` is satisfiable.
pub fn reduce_3sat(phi: &CnfFormula) -> QrppInstance {
    let mut db = Database::new();
    db.add_relation(encode_hidden_clauses(phi)).expect("fresh db");

    let head: Vec<Term> = (0..8).map(|i| Term::v(format!("a{i}"))).collect();
    let q = Query::Cq(ConjunctiveQuery::new(
        head.clone(),
        vec![RelAtom::new(RC8_REL, head.clone())],
        vec![Builtin::eq(head[7].clone(), Term::c(false))],
    ));

    // Occurring variables (the cost function requires them all covered).
    let occurring: std::collections::BTreeSet<i64> = phi
        .clauses
        .iter()
        .flat_map(|c| c.0.iter().map(|l| l.var as i64))
        .collect();
    let r = phi.clauses.len();

    // cost = 1 iff N is a full consistent clause cover, else 2.
    let cost = PackageFn::custom(
        "1 iff consistent, all clauses covered once, all vars assigned",
        false,
        move |p| {
            let mut cids = std::collections::BTreeSet::new();
            let mut assign: std::collections::BTreeMap<i64, bool> = Default::default();
            for t in p.iter() {
                if !cids.insert(t[0].as_int().expect("cid")) {
                    return Ext::Finite(2.0);
                }
                for j in 0..3 {
                    let var = t[1 + 2 * j].as_int().expect("L column");
                    let val = t[2 + 2 * j].as_bool().expect("V column");
                    match assign.get(&var) {
                        Some(&v) if v != val => return Ext::Finite(2.0),
                        _ => {
                            assign.insert(var, val);
                        }
                    }
                }
            }
            let full_cover = (1..=r as i64).all(|c| cids.contains(&c));
            let all_vars = occurring.iter().all(|v| assign.contains_key(v));
            Ext::Finite(if full_cover && all_vars { 1.0 } else { 2.0 })
        },
    )
    // Pruning hint: a package with duplicate cids or conflicting
    // assignments can never grow into a cost-1 full cover.
    .with_superset_lower_bound(|p| {
        let mut cids = std::collections::BTreeSet::new();
        let mut assign: std::collections::BTreeMap<i64, bool> = Default::default();
        for t in p.iter() {
            if !cids.insert(t[0].as_int().expect("cid")) {
                return Ext::Finite(2.0);
            }
            for j in 0..3 {
                let var = t[1 + 2 * j].as_int().expect("L column");
                let val = t[2 + 2 * j].as_bool().expect("V column");
                match assign.get(&var) {
                    Some(&v) if v != val => return Ext::Finite(2.0),
                    _ => {
                        assign.insert(var, val);
                    }
                }
            }
        }
        Ext::Finite(1.0)
    });

    let base = RecInstance::new(db, q)
        .with_cost(cost)
        .with_budget(1.0)
        .with_val(PackageFn::cardinality())
        .with_k(1)
        .with_metrics(bool_metric());
    QrppInstance {
        base,
        spec: RelaxSpec {
            constants: vec![],
            builtin_constants: vec![BuiltinRelaxParam::new(0, "bool")],
            joins: vec![],
        },
        rating_bound: Ext::Finite(1.0),
        gap_budget: 1,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pkgrec_core::SolveOptions;
    use pkgrec_logic::{gen, is_satisfiable, Conjunct, DnfFormula, Lit};
    use pkgrec_relax::qrpp;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn combined_hand_instances() {
        // ψ ≡ x: relaxation exists.
        let yes = Sigma2Dnf::new(
            1,
            DnfFormula::new(
                2,
                vec![
                    Conjunct::new(vec![Lit::pos(0), Lit::pos(1)]),
                    Conjunct::new(vec![Lit::pos(0), Lit::neg(1)]),
                ],
            ),
        );
        let w = qrpp(&reduce_sigma2(&yes), &SolveOptions::default()).unwrap();
        assert!(w.is_some());
        assert_eq!(w.unwrap().gap, 1);

        // ψ ≡ y: no relaxation helps.
        let no = Sigma2Dnf::new(
            1,
            DnfFormula::new(
                2,
                vec![
                    Conjunct::new(vec![Lit::pos(0), Lit::pos(1)]),
                    Conjunct::new(vec![Lit::neg(0), Lit::pos(1)]),
                ],
            ),
        );
        assert!(qrpp(&reduce_sigma2(&no), &SolveOptions::default())
            .unwrap()
            .is_none());
    }

    #[test]
    fn combined_random_agreement() {
        let mut rng = StdRng::seed_from_u64(58);
        let (mut yes, mut no) = (0, 0);
        for i in 0..12 {
            let mut phi = gen::random_sigma2(&mut rng, 2, 2, 3);
            if i % 2 == 0 {
                // Half the sample is forced true so both answers occur.
                phi = gen::force_true_sigma2(&phi);
            }
            let direct = phi.is_true();
            if direct {
                yes += 1;
            } else {
                no += 1;
            }
            let got = qrpp(&reduce_sigma2(&phi), &SolveOptions::default())
                .unwrap()
                .is_some();
            assert_eq!(got, direct, "φ = ∃X∀Y {}", phi.matrix);
        }
        assert!(yes > 0 && no > 0, "degenerate sample: yes={yes} no={no}");
    }

    #[test]
    fn data_random_agreement() {
        let mut rng = StdRng::seed_from_u64(59);
        let (mut yes, mut no) = (0, 0);
        for i in 0..12 {
            let mut phi = gen::random_3cnf(&mut rng, 3, 6 + (i % 3));
            if i % 2 == 0 {
                // Half the sample is forced unsatisfiable.
                phi = gen::force_unsat(&phi);
            }
            let direct = is_satisfiable(&phi);
            if direct {
                yes += 1;
            } else {
                no += 1;
            }
            let got = qrpp(&reduce_3sat(&phi), &SolveOptions::default())
                .unwrap()
                .is_some();
            assert_eq!(got, direct, "φ = {phi}");
        }
        assert!(yes > 0 && no > 0, "degenerate sample: yes={yes} no={no}");
    }

    #[test]
    fn unrelaxed_data_query_is_empty() {
        let phi = gen::random_3cnf(&mut StdRng::seed_from_u64(60), 3, 4);
        let inst = reduce_3sat(&phi);
        let ans = inst
            .base
            .query
            .eval_with_metrics(&inst.base.db, &bool_metric())
            .unwrap();
        assert!(ans.is_empty(), "V = 0 selects nothing before relaxation");
    }
}
