//! CQ encodings of propositional formulas over the Figure 4.1 gadgets.
//!
//! Every lower-bound proof contains a subquery `Qψ(x̄, ȳ, b)` that
//! "encodes the truth value of ψ for given truth assignments … in terms
//! of `I∨`, `I∧` and `I¬`". This module is that compiler: it turns a
//! CNF/DNF matrix into a chain of gate atoms whose output term carries
//! the formula's truth value.

use pkgrec_logic::{CnfFormula, DnfFormula, Lit};
use pkgrec_query::{RelAtom, Term};

use crate::gadgets::{R01, RAND, RNOT, ROR};

/// A fresh-variable supply for gate outputs.
#[derive(Debug, Default)]
pub struct FreshVars {
    counter: usize,
    prefix: String,
}

impl FreshVars {
    /// A supply with the given prefix (distinct encoders in one query
    /// must use distinct prefixes).
    pub fn new(prefix: impl AsRef<str>) -> FreshVars {
        FreshVars {
            counter: 0,
            prefix: prefix.as_ref().to_string(),
        }
    }

    /// The next fresh variable term.
    pub fn fresh(&mut self) -> Term {
        let t = Term::v(format!("{}{}", self.prefix, self.counter));
        self.counter += 1;
        t
    }
}

/// Atoms `r01(v)` generating all truth assignments of the given terms
/// (the `QX(x̄)` Cartesian-product subquery used by every reduction).
pub fn assignment_atoms(vars: &[Term]) -> Vec<RelAtom> {
    vars.iter()
        .map(|v| RelAtom::new(R01, vec![v.clone()]))
        .collect()
}

/// The term carrying a literal's value: the variable itself, or a fresh
/// negation-gate output.
fn literal_term(
    lit: Lit,
    var_terms: &[Term],
    fresh: &mut FreshVars,
    atoms: &mut Vec<RelAtom>,
) -> Term {
    let v = var_terms[lit.var].clone();
    if lit.positive {
        v
    } else {
        let out = fresh.fresh();
        atoms.push(RelAtom::new(RNOT, vec![v, out.clone()]));
        out
    }
}

/// Gate application: `out = gate(a, b)`.
fn gate(relation: &str, a: Term, b: Term, fresh: &mut FreshVars, atoms: &mut Vec<RelAtom>) -> Term {
    let out = fresh.fresh();
    atoms.push(RelAtom::new(relation, vec![out.clone(), a, b]));
    out
}

/// Fold a list of terms through a binary gate; empty lists yield the
/// gate's identity constant.
fn fold_gate(
    relation: &str,
    identity: bool,
    terms: Vec<Term>,
    fresh: &mut FreshVars,
    atoms: &mut Vec<RelAtom>,
) -> Term {
    let mut it = terms.into_iter();
    let Some(first) = it.next() else {
        return Term::c(identity);
    };
    it.fold(first, |acc, t| gate(relation, acc, t, fresh, atoms))
}

/// Encode a CNF formula: returns the output term `b` with
/// `b = φ(var_terms)`, appending the gate atoms.
pub fn encode_cnf(
    f: &CnfFormula,
    var_terms: &[Term],
    fresh: &mut FreshVars,
    atoms: &mut Vec<RelAtom>,
) -> Term {
    assert_eq!(var_terms.len(), f.num_vars, "one term per variable");
    let clause_outs: Vec<Term> = f
        .clauses
        .iter()
        .map(|c| {
            let lits: Vec<Term> =
                c.0.iter()
                    .map(|&l| literal_term(l, var_terms, fresh, atoms))
                    .collect();
            fold_gate(ROR, false, lits, fresh, atoms)
        })
        .collect();
    fold_gate(RAND, true, clause_outs, fresh, atoms)
}

/// Encode a DNF formula: returns the output term `b` with
/// `b = ψ(var_terms)`, appending the gate atoms.
pub fn encode_dnf(
    f: &DnfFormula,
    var_terms: &[Term],
    fresh: &mut FreshVars,
    atoms: &mut Vec<RelAtom>,
) -> Term {
    assert_eq!(var_terms.len(), f.num_vars, "one term per variable");
    let conjunct_outs: Vec<Term> = f
        .conjuncts
        .iter()
        .map(|c| {
            let lits: Vec<Term> =
                c.0.iter()
                    .map(|&l| literal_term(l, var_terms, fresh, atoms))
                    .collect();
            fold_gate(RAND, true, lits, fresh, atoms)
        })
        .collect();
    fold_gate(ROR, false, conjunct_outs, fresh, atoms)
}

/// Variable terms `x0, ..., x{n-1}` with a prefix.
pub fn var_terms(prefix: &str, n: usize) -> Vec<Term> {
    (0..n).map(|i| Term::v(format!("{prefix}{i}"))).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gadgets::gadget_db;
    use pkgrec_logic::{assignments, gen, Clause, Conjunct};
    use pkgrec_query::{ConjunctiveQuery, Query};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// Evaluate an encoded formula under a concrete assignment by
    /// substituting Boolean constants for the variable terms and asking
    /// the query engine for the output bit.
    fn eval_encoded(build: impl Fn(&[Term], &mut FreshVars, &mut Vec<RelAtom>) -> Term, n: usize, a: &[bool]) -> bool {
        let consts: Vec<Term> = a.iter().map(|&b| Term::c(b)).collect();
        let mut fresh = FreshVars::new("_t");
        let mut atoms = Vec::new();
        let out = build(&consts, &mut fresh, &mut atoms);
        let _ = n;
        let q = Query::Cq(ConjunctiveQuery::new(vec![out], atoms, vec![]));
        let ans = q.eval(&gadget_db()).unwrap();
        assert_eq!(ans.len(), 1, "gate circuit is a function");
        ans.iter().next().unwrap()[0].as_bool().unwrap()
    }

    #[test]
    fn cnf_encoding_matches_direct_evaluation() {
        let mut rng = StdRng::seed_from_u64(11);
        for _ in 0..20 {
            let f = gen::random_3cnf(&mut rng, 4, 5);
            for a in assignments(4) {
                let enc = eval_encoded(|v, fr, at| encode_cnf(&f, v, fr, at), 4, &a);
                assert_eq!(enc, f.eval(&a), "formula {f}, assignment {a:?}");
            }
        }
    }

    #[test]
    fn dnf_encoding_matches_direct_evaluation() {
        let mut rng = StdRng::seed_from_u64(13);
        for _ in 0..20 {
            let f = gen::random_3dnf(&mut rng, 4, 5);
            for a in assignments(4) {
                let enc = eval_encoded(|v, fr, at| encode_dnf(&f, v, fr, at), 4, &a);
                assert_eq!(enc, f.eval(&a), "formula {f}, assignment {a:?}");
            }
        }
    }

    #[test]
    fn degenerate_formulas() {
        // Empty CNF is true; empty DNF is false.
        let t = eval_encoded(
            |v, fr, at| encode_cnf(&CnfFormula::new(1, Vec::<Clause>::new()), v, fr, at),
            1,
            &[false],
        );
        assert!(t);
        let f = eval_encoded(
            |v, fr, at| encode_dnf(&DnfFormula::new(1, Vec::<Conjunct>::new()), v, fr, at),
            1,
            &[false],
        );
        assert!(!f);
    }

    #[test]
    fn assignment_atoms_generate_cube() {
        let vars = var_terms("x", 3);
        let q = Query::Cq(ConjunctiveQuery::new(
            vars.clone(),
            assignment_atoms(&vars),
            vec![],
        ));
        assert_eq!(q.eval(&gadget_db()).unwrap().len(), 8);
    }

    #[test]
    fn single_literal_clause() {
        // CNF (x0) ∧ (¬x1).
        let f = CnfFormula::new(
            2,
            vec![
                Clause::new(vec![pkgrec_logic::Lit::pos(0)]),
                Clause::new(vec![pkgrec_logic::Lit::neg(1)]),
            ],
        );
        for a in assignments(2) {
            let enc = eval_encoded(|v, fr, at| encode_cnf(&f, v, fr, at), 2, &a);
            assert_eq!(enc, f.eval(&a));
        }
    }
}
