//! The gadget relations of **Figure 4.1** (plus `Ic` from Theorem 5.2):
//! the Boolean domain and truth tables of `∨`, `∧`, `¬` as relations, so
//! that propositional formulas become conjunctive queries.

use pkgrec_data::{tuple, AttrType, Database, Relation, RelationSchema};

/// Relation name for `I01` (the Boolean domain).
pub const R01: &str = "r01";
/// Relation name for `I∨` (disjunction: `B = A1 ∨ A2`).
pub const ROR: &str = "ror";
/// Relation name for `I∧` (conjunction: `B = A1 ∧ A2`).
pub const RAND: &str = "rand";
/// Relation name for `I¬` (negation: `NA = ¬A`).
pub const RNOT: &str = "rnot";
/// Relation name for `Ic` (Theorem 5.2: `C = ¬(C1 ∧ ¬C2)`).
pub const RC: &str = "rc";

/// `I01 = {0, 1}`.
pub fn i01() -> Relation {
    let schema = RelationSchema::new(R01, [("x", AttrType::Bool)]).expect("valid schema");
    Relation::from_tuples(schema, [tuple![false], tuple![true]]).expect("gadget tuples")
}

/// `I∨`: `(b, a1, a2)` with `b = a1 ∨ a2`.
pub fn i_or() -> Relation {
    let schema = RelationSchema::new(
        ROR,
        [
            ("b", AttrType::Bool),
            ("a1", AttrType::Bool),
            ("a2", AttrType::Bool),
        ],
    )
    .expect("valid schema");
    Relation::from_tuples(
        schema,
        [
            tuple![false, false, false],
            tuple![true, false, true],
            tuple![true, true, false],
            tuple![true, true, true],
        ],
    )
    .expect("gadget tuples")
}

/// `I∧`: `(b, a1, a2)` with `b = a1 ∧ a2`.
pub fn i_and() -> Relation {
    let schema = RelationSchema::new(
        RAND,
        [
            ("b", AttrType::Bool),
            ("a1", AttrType::Bool),
            ("a2", AttrType::Bool),
        ],
    )
    .expect("valid schema");
    Relation::from_tuples(
        schema,
        [
            tuple![false, false, false],
            tuple![false, false, true],
            tuple![false, true, false],
            tuple![true, true, true],
        ],
    )
    .expect("gadget tuples")
}

/// `I¬`: `(a, ¬a)`.
pub fn i_not() -> Relation {
    let schema = RelationSchema::new(RNOT, [("a", AttrType::Bool), ("na", AttrType::Bool)])
        .expect("valid schema");
    Relation::from_tuples(schema, [tuple![false, true], tuple![true, false]])
        .expect("gadget tuples")
}

/// `Ic = {(1,0,0), (1,1,1), (0,0,1), (0,1,1)}` (Theorem 5.2): column
/// `C` is 0 exactly when `(C1, C2) = (1, 0)`.
pub fn i_c() -> Relation {
    let schema = RelationSchema::new(
        RC,
        [
            ("c1", AttrType::Bool),
            ("c2", AttrType::Bool),
            ("c", AttrType::Bool),
        ],
    )
    .expect("valid schema");
    Relation::from_tuples(
        schema,
        [
            tuple![true, false, false],
            tuple![true, true, true],
            tuple![false, false, true],
            tuple![false, true, true],
        ],
    )
    .expect("gadget tuples")
}

/// The Figure 4.1 database: `I01, I∨, I∧, I¬`.
pub fn gadget_db() -> Database {
    let mut db = Database::new();
    db.add_relation(i01()).expect("fresh db");
    db.add_relation(i_or()).expect("fresh db");
    db.add_relation(i_and()).expect("fresh db");
    db.add_relation(i_not()).expect("fresh db");
    db
}

/// The Theorem 5.2 database: Figure 4.1 plus `Ic`.
pub fn gadget_db_with_ic() -> Database {
    let mut db = gadget_db();
    db.add_relation(i_c()).expect("fresh db");
    db
}

#[cfg(test)]
mod tests {
    use super::*;
    use pkgrec_data::Value;

    #[test]
    fn truth_tables_are_correct() {
        let or = i_or();
        let and = i_and();
        let not = i_not();
        for a in [false, true] {
            for b in [false, true] {
                assert!(or.contains(&tuple![a || b, a, b]));
                assert!(and.contains(&tuple![a && b, a, b]));
            }
            assert!(not.contains(&tuple![a, !a]));
        }
        assert_eq!(or.len(), 4);
        assert_eq!(and.len(), 4);
        assert_eq!(not.len(), 2);
    }

    #[test]
    fn ic_selects_one_zero() {
        let rc = i_c();
        assert_eq!(rc.len(), 4);
        for c1 in [false, true] {
            for c2 in [false, true] {
                let c = !c1 || c2;
                assert!(rc.contains(&tuple![c1, c2, c]));
            }
        }
    }

    #[test]
    fn database_composition() {
        let db = gadget_db();
        assert_eq!(db.relation_names(), vec![R01, RAND, RNOT, ROR]);
        assert_eq!(db.size(), 12);
        let dom = db.active_domain();
        assert_eq!(dom.len(), 2);
        assert!(dom.contains(&Value::Bool(true)));
        assert_eq!(gadget_db_with_ic().size(), 16);
    }
}
