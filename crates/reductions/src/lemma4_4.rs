//! **Lemma 4.4** — NP-hardness of the compatibility problem in *data
//! complexity* (fixed query, varying database), by reduction from 3SAT.
//!
//! Given `φ = C1 ∧ ... ∧ Cr` over variables `X`:
//!
//! * `D` is a single relation
//!   `RC(cid, L1, V1, L2, V2, L3, V3)` holding, for each clause and each
//!   satisfying local assignment of its variables, one tuple
//!   `(i, x_k, v_k, x_l, v_l, x_m, v_m)`;
//! * `Q` is the **identity** query (fixed!), `Qc` is absent;
//! * `val(N) = |N|` with `B = r − 1` (so a witness covers every
//!   clause), and `cost(N) = 1` iff no two tuples share a `cid` or
//!   assign conflicting values to a variable, else 2, with `C = 1`.
//!
//! `φ` is satisfiable iff a valid package exists — i.e. iff a
//! consistent system of satisfying local assignments covers all
//! clauses.

use std::collections::BTreeMap;

use pkgrec_core::{Ext, Package, PackageFn, RecInstance};
use pkgrec_data::{AttrType, Database, Relation, RelationSchema, Tuple, Value};
use pkgrec_logic::{assignments, CnfFormula};
use pkgrec_query::{ConjunctiveQuery, Query};

/// The relation name of the clause-encoding relation.
pub const RC_REL: &str = "rc_clauses";

/// The produced data-complexity compatibility instance.
#[derive(Debug, Clone)]
pub struct Sat3Reduction {
    /// The instance (identity `Q`, no `Qc`, consistency `cost`).
    pub instance: RecInstance,
    /// The rating bound `B = r − 1`.
    pub rating_bound: Ext,
}

/// The `RC` schema.
pub fn rc_schema() -> RelationSchema {
    RelationSchema::new(
        RC_REL,
        [
            ("cid", AttrType::Int),
            ("l1", AttrType::Int),
            ("v1", AttrType::Bool),
            ("l2", AttrType::Int),
            ("v2", AttrType::Bool),
            ("l3", AttrType::Int),
            ("v3", AttrType::Bool),
        ],
    )
    .expect("valid schema")
}

/// Pad a clause's literals to exactly three by repeating the last one —
/// semantically a no-op, but the `RC` relation has three literal slots.
pub fn pad3(lits: &[pkgrec_logic::Lit]) -> Vec<pkgrec_logic::Lit> {
    assert!(!lits.is_empty(), "empty clauses are unsatisfiable; encode them upstream");
    let mut out = lits.to_vec();
    while out.len() < 3 {
        out.push(*out.last().expect("nonempty"));
    }
    out.truncate(3);
    out
}

/// Encode a 3CNF formula as the `RC` relation: one tuple per clause per
/// satisfying local assignment of the clause's (distinct) variables.
/// Clauses with fewer than three literals are padded by repetition.
pub fn encode_clauses(phi: &CnfFormula) -> Relation {
    let mut rel = Relation::empty(rc_schema());
    for (i, clause) in phi.clauses.iter().enumerate() {
        let cid = (i + 1) as i64;
        let lits = pad3(&clause.0);
        // Distinct variables of the clause, in order of first occurrence.
        let mut vars: Vec<usize> = Vec::new();
        for l in &lits {
            if !vars.contains(&l.var) {
                vars.push(l.var);
            }
        }
        for local in assignments(vars.len()) {
            let assign: BTreeMap<usize, bool> =
                vars.iter().copied().zip(local.iter().copied()).collect();
            let satisfied = lits.iter().any(|l| assign[&l.var] == l.positive);
            if !satisfied {
                continue;
            }
            let mut values: Vec<Value> = vec![Value::Int(cid)];
            for l in &lits {
                values.push(Value::Int(l.var as i64));
                values.push(Value::Bool(assign[&l.var]));
            }
            rel.insert(Tuple::new(values)).expect("schema-conformant");
        }
    }
    rel
}

/// The per-literal `(variable, value)` pairs of an `RC` tuple.
pub fn tuple_assignments(t: &Tuple) -> impl Iterator<Item = (i64, bool)> + '_ {
    (0..3).map(|j| {
        (
            t[1 + 2 * j].as_int().expect("L column is an Int"),
            t[2 + 2 * j].as_bool().expect("V column is a Bool"),
        )
    })
}

/// The consistency cost of Lemma 4.4: 1 iff no duplicate `cid` and no
/// variable assigned two values, else 2 (∅ ↦ ∞, the paper's
/// no-recommendation convention).
pub fn consistency_cost() -> PackageFn {
    // Inconsistency is inherited by supersets, so the cost is monotone
    // nondecreasing on nonempty packages — the search may prune below
    // any package already over budget.
    PackageFn::custom("1 iff cids distinct & assignments consistent", true, |p| {
        if p.is_empty() {
            return Ext::PosInf;
        }
        Ext::Finite(if package_is_consistent(p) { 1.0 } else { 2.0 })
    })
}

/// Whether a package of `RC` tuples has pairwise-distinct `cid`s and a
/// conflict-free variable assignment.
pub fn package_is_consistent(p: &Package) -> bool {
    let mut cids = std::collections::BTreeSet::new();
    let mut assign: BTreeMap<i64, bool> = BTreeMap::new();
    for t in p.iter() {
        if !cids.insert(t[0].clone()) {
            return false;
        }
        for (var, val) in tuple_assignments(t) {
            match assign.get(&var) {
                Some(&v) if v != val => return false,
                _ => {
                    assign.insert(var, val);
                }
            }
        }
    }
    true
}

/// Build the Lemma 4.4 reduction.
pub fn reduce(phi: &CnfFormula) -> Sat3Reduction {
    let mut db = Database::new();
    db.add_relation(encode_clauses(phi)).expect("fresh db");
    let q = Query::Cq(ConjunctiveQuery::identity(RC_REL, 7));
    let instance = RecInstance::new(db, q)
        .with_cost(consistency_cost())
        .with_budget(1.0)
        .with_val(PackageFn::cardinality());
    Sat3Reduction {
        instance,
        rating_bound: Ext::Finite(phi.clauses.len() as f64 - 1.0),
    }
}

/// The Theorem 4.3 corollary: the coNP-hard RPP form (data
/// complexity), via the same `{∅}` complementation as Theorem 4.1.
pub fn rpp_reduce(phi: &CnfFormula) -> crate::thm4_1::RppReduction {
    let r = reduce(phi);
    crate::thm4_1::from_compat(r.instance, r.rating_bound)
}

#[cfg(test)]
mod tests {
    use super::*;
    use pkgrec_core::{problems::compat, problems::rpp, SolveOptions};
    use pkgrec_data::tuple;
    use pkgrec_logic::{gen, is_satisfiable, Clause, Lit};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn clause_encoding_shape() {
        // A clause over 3 distinct vars has 7 satisfying local
        // assignments.
        let phi = CnfFormula::new(
            3,
            vec![Clause::new(vec![Lit::pos(0), Lit::neg(1), Lit::pos(2)])],
        );
        assert_eq!(encode_clauses(&phi).len(), 7);
        // A clause with a repeated variable: (x ∨ ¬x ∨ y) is a
        // tautology over 2 vars — 4 local assignments.
        let tau = CnfFormula::new(
            2,
            vec![Clause::new(vec![Lit::pos(0), Lit::neg(0), Lit::pos(1)])],
        );
        assert_eq!(encode_clauses(&tau).len(), 4);
    }

    #[test]
    fn consistency_cost_detects_conflicts() {
        let same_cid = Package::new([tuple![1, 0, true, 1, true, 2, false],
                                     tuple![1, 0, false, 1, false, 2, true]]);
        assert!(!package_is_consistent(&same_cid));
        let conflict = Package::new([tuple![1, 0, true, 1, true, 2, false],
                                     tuple![2, 0, false, 3, false, 4, true]]);
        assert!(!package_is_consistent(&conflict));
        let fine = Package::new([tuple![1, 0, true, 1, true, 2, false],
                                 tuple![2, 0, true, 3, false, 4, true]]);
        assert!(package_is_consistent(&fine));
    }

    #[test]
    fn agrees_with_dpll_on_random_instances() {
        let mut rng = StdRng::seed_from_u64(44);
        let (mut yes, mut no) = (0, 0);
        for i in 0..20 {
            // Half the sample is forced unsatisfiable so both answers
            // occur; sizes keep the consistent-package space ~2^r.
            let mut phi = gen::random_3cnf(&mut rng, 3, 6 + (i % 3));
            if i % 2 == 0 {
                phi = gen::force_unsat(&phi);
            }
            let direct = is_satisfiable(&phi);
            if direct {
                yes += 1;
            } else {
                no += 1;
            }
            let r = reduce(&phi);
            let reduced =
                compat::compatibility(&r.instance, r.rating_bound, &SolveOptions::default())
                    .unwrap();
            assert_eq!(reduced, direct, "φ = {phi}");
        }
        assert!(yes > 0 && no > 0, "degenerate sample: yes={yes} no={no}");
    }

    #[test]
    fn rpp_form_complements() {
        let mut rng = StdRng::seed_from_u64(45);
        for _ in 0..10 {
            let phi = gen::random_3cnf(&mut rng, 3, 8);
            let direct = is_satisfiable(&phi);
            let r = rpp_reduce(&phi);
            let ans = rpp::is_top_k(&r.instance, &r.selection, &SolveOptions::default()).unwrap();
            assert_eq!(ans, !direct, "φ = {phi}");
        }
    }
}
