//! **Theorem 4.5** — DP-hardness of RPP(CQ) *without* compatibility
//! constraints, by reduction from SAT-UNSAT.
//!
//! Given `(φ1, φ2)`, `Q(b, b′)` evaluates both formulas over all truth
//! assignments via the Figure 4.1 gadgets, so
//! `Q(D) ⊆ {(1,0), (1,1), (0,0), (0,1)}` records which combinations of
//! truth values are achievable. With
//! `val{(1,0)} = 2, val{(1,1)} = val{(0,1)} = 3, val{(0,0)} = 1`, the
//! singleton selection `N = {{(1, 0)}}` is a top-1 selection **iff**
//! `φ1` is satisfiable and `φ2` is not.

use pkgrec_core::{Ext, Package, PackageFn, RecInstance};
use pkgrec_data::tuple;
use pkgrec_logic::SatUnsat;
use pkgrec_query::{ConjunctiveQuery, Query};

use crate::encode::{assignment_atoms, encode_cnf, var_terms, FreshVars};
use crate::gadgets::gadget_db;

/// The produced RPP instance and candidate selection.
#[derive(Debug, Clone)]
pub struct SatUnsatRpp {
    /// The instance (no `Qc`).
    pub instance: RecInstance,
    /// The candidate selection `{{(1, 0)}}`.
    pub selection: Vec<Package>,
}

/// The achievability query `Q(b, b′)` shared with the Theorem 5.2 data
/// reduction tests.
pub fn achievability_query(pair: &SatUnsat) -> Query {
    let xs = var_terms("x", pair.phi1.num_vars);
    let ys = var_terms("y", pair.phi2.num_vars);
    let mut atoms = assignment_atoms(&xs);
    atoms.extend(assignment_atoms(&ys));
    let mut fresh = FreshVars::new("_g");
    let b1 = encode_cnf(&pair.phi1, &xs, &mut fresh, &mut atoms);
    let b2 = encode_cnf(&pair.phi2, &ys, &mut fresh, &mut atoms);
    Query::Cq(ConjunctiveQuery::new(vec![b1, b2], atoms, vec![]))
}

/// The rating of the construction, on singleton packages over `(b, b′)`
/// tuples.
fn rating() -> PackageFn {
    PackageFn::custom("val{(1,0)}=2, {(1,1)}={(0,1)}=3, {(0,0)}=1", false, |p| {
        if p.len() != 1 {
            return Ext::Finite(0.0);
        }
        let t = p.iter().next().expect("len 1");
        let b1 = t[0].as_bool().unwrap_or(false);
        let b2 = t[1].as_bool().unwrap_or(false);
        Ext::Finite(match (b1, b2) {
            (true, false) => 2.0,
            (true, true) | (false, true) => 3.0,
            (false, false) => 1.0,
        })
    })
}

/// Build the Theorem 4.5 reduction: `is_top_k(selection)` iff the
/// SAT-UNSAT instance is a yes-instance.
pub fn reduce(pair: &SatUnsat) -> SatUnsatRpp {
    let instance = RecInstance::new(gadget_db(), achievability_query(pair))
        .with_cost(PackageFn::count())
        .with_budget(1.0)
        .with_val(rating())
        .with_k(1);
    SatUnsatRpp {
        instance,
        selection: vec![Package::singleton(tuple![true, false])],
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pkgrec_core::{problems::rpp, SolveOptions};
    use pkgrec_logic::{gen, Clause, CnfFormula, Lit};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn sat() -> CnfFormula {
        CnfFormula::new(1, vec![Clause::new(vec![Lit::pos(0)])])
    }

    fn unsat() -> CnfFormula {
        CnfFormula::new(
            1,
            vec![Clause::new(vec![Lit::pos(0)]), Clause::new(vec![Lit::neg(0)])],
        )
    }

    fn answer(pair: &SatUnsat) -> bool {
        let r = reduce(pair);
        rpp::is_top_k(&r.instance, &r.selection, &SolveOptions::default()).unwrap()
    }

    #[test]
    fn four_corner_cases() {
        assert!(answer(&SatUnsat::new(sat(), unsat())));
        assert!(!answer(&SatUnsat::new(sat(), sat())));
        assert!(!answer(&SatUnsat::new(unsat(), unsat())));
        assert!(!answer(&SatUnsat::new(unsat(), sat())));
    }

    #[test]
    fn achievability_query_records_truth_combinations() {
        // φ1 = x (sat, refutable), φ2 = y ∧ ¬y (unsat):
        // achievable (b1, b2) pairs are (1,0) and (0,0).
        let pair = SatUnsat::new(sat(), unsat());
        let q = achievability_query(&pair);
        let ans = q.eval(&gadget_db()).unwrap();
        assert_eq!(ans.len(), 2);
        assert!(ans.contains(&tuple![true, false]));
        assert!(ans.contains(&tuple![false, false]));
    }

    #[test]
    fn agrees_with_direct_solver_on_random_instances() {
        let mut rng = StdRng::seed_from_u64(46);
        let (mut yes, mut no) = (0, 0);
        for i in 0..20 {
            let mut pair = gen::random_sat_unsat(&mut rng, 3, 6);
            if i % 2 == 0 {
                pair.phi2 = gen::force_unsat(&pair.phi2);
            }
            let direct = pair.is_yes();
            if direct {
                yes += 1;
            } else {
                no += 1;
            }
            assert_eq!(answer(&pair), direct);
        }
        assert!(yes > 0 && no > 0, "degenerate sample: yes={yes} no={no}");
    }
}
