//! **Theorem 5.2** — hardness of MBP, the maximum-bound problem.
//!
//! *Combined complexity* (Dp₂, CQ): reduction from
//! ∃*∀*3DNF–∀*∃*3CNF — a pair `(φ1, φ2)` of Σ₂ sentences; the question
//! is whether `φ1` is true while `φ2` is false. The construction packs
//! both sentences into one query over the Figure 4.1 gadgets plus the
//! `Ic` inspection relation, and `B = 1` is the maximum bound iff the
//! pair is a yes-instance.
//!
//! *Data complexity* (DP, fixed CQ): reduction from SAT-UNSAT over the
//! Lemma 4.4 clause relation, with `val` distinguishing packages that
//! cover only `φ1` (rating 1) from those covering both formulas
//! (rating 2).

use pkgrec_core::{Constraint, Ext, PackageFn, RecInstance, ANSWER_RELATION};
use pkgrec_data::{Database, Tuple};
use pkgrec_logic::{SatUnsat, Sigma2Dnf};
use pkgrec_query::{Builtin, ConjunctiveQuery, Query, RelAtom, Term};

use crate::encode::{assignment_atoms, encode_dnf, var_terms, FreshVars};
use crate::gadgets::{gadget_db_with_ic, RC};
use crate::lemma4_4;

/// Build the combined-complexity reduction: `B = 1` is the maximum
/// bound for the produced instance (with `k = 1`) **iff** `φ1` is true
/// and `φ2` is false.
pub fn reduce_pair(phi1: &Sigma2Dnf, phi2: &Sigma2Dnf) -> (RecInstance, Ext) {
    let (m1, m2) = (phi1.x_vars, phi2.x_vars);

    // Q(x̄1, b1, x̄2, b2): which (b1, b2) combinations are achievable
    // for each pair of X assignments, quantifying over Y assignments.
    let x1s = var_terms("p", m1);
    let y1s = var_terms("q", phi1.y_vars());
    let x2s = var_terms("r", m2);
    let y2s = var_terms("s", phi2.y_vars());
    let mut atoms = assignment_atoms(&x1s);
    atoms.extend(assignment_atoms(&y1s));
    atoms.extend(assignment_atoms(&x2s));
    atoms.extend(assignment_atoms(&y2s));
    let mut fresh = FreshVars::new("_q");
    let mut v1 = x1s.clone();
    v1.extend(y1s.clone());
    let b1 = encode_dnf(&phi1.matrix, &v1, &mut fresh, &mut atoms);
    let mut v2 = x2s.clone();
    v2.extend(y2s.clone());
    let b2 = encode_dnf(&phi2.matrix, &v2, &mut fresh, &mut atoms);
    let mut head = x1s.clone();
    head.push(b1);
    head.extend(x2s.clone());
    head.push(b2);
    let q = Query::Cq(ConjunctiveQuery::new(head, atoms, vec![]));

    // Qc: flags a packaged tuple as incompatible per the Ic table.
    let qc = {
        let b1 = Term::v("b1");
        let b2 = Term::v("b2");
        let mut rq_terms = x1s.clone();
        rq_terms.push(b1);
        rq_terms.extend(x2s.clone());
        rq_terms.push(b2.clone());
        let mut atoms = vec![RelAtom::new(ANSWER_RELATION, rq_terms)];
        let mut fresh = FreshVars::new("_c");

        // ∃ȳ1: c1 = ψ1(x̄1, ȳ1).
        let y1p = var_terms("qa", phi1.y_vars());
        atoms.extend(assignment_atoms(&y1p));
        let mut w1 = x1s.clone();
        w1.extend(y1p);
        let c1 = encode_dnf(&phi1.matrix, &w1, &mut fresh, &mut atoms);

        // ∃ȳ2 with ψ2 value equal to the packaged b2.
        let y2a = var_terms("sa", phi2.y_vars());
        atoms.extend(assignment_atoms(&y2a));
        let mut w2 = x2s.clone();
        w2.extend(y2a);
        let t2 = encode_dnf(&phi2.matrix, &w2, &mut fresh, &mut atoms);

        // ∃ȳ2′ with ψ2 false (Q′ψ2 of the proof).
        let y2b = var_terms("sb", phi2.y_vars());
        atoms.extend(assignment_atoms(&y2b));
        let mut w3 = x2s.clone();
        w3.extend(y2b);
        let t2p = encode_dnf(&phi2.matrix, &w3, &mut fresh, &mut atoms);

        // Ic(c1, b2, c) ∧ c = 1.
        let c = Term::v("_cc");
        atoms.push(RelAtom::new(RC, vec![c1, b2.clone(), c.clone()]));

        Query::Cq(ConjunctiveQuery::new(
            Vec::<Term>::new(),
            atoms,
            vec![
                Builtin::eq(t2, b2),
                Builtin::eq(t2p, Term::c(false)),
                Builtin::eq(c, Term::c(true)),
            ],
        ))
    };

    // val on singletons, keyed by the packaged (b1, b2).
    let b1_pos = m1;
    let b2_pos = m1 + 1 + m2;
    let val = PackageFn::custom("val by (b1,b2): (1,0)↦1, (1,1)↦2, else 0", false, move |p| {
        if p.len() != 1 {
            return Ext::Finite(0.0);
        }
        let t = p.iter().next().expect("len 1");
        let b1 = t[b1_pos].as_bool().unwrap_or(false);
        let b2 = t[b2_pos].as_bool().unwrap_or(false);
        Ext::Finite(match (b1, b2) {
            (true, false) => 1.0,
            (true, true) => 2.0,
            _ => 0.0,
        })
    });

    let instance = RecInstance::new(gadget_db_with_ic(), q)
        .with_qc(Constraint::Query(qc))
        .with_cost(PackageFn::count())
        .with_budget(1.0)
        .with_val(val)
        .with_k(1);
    (instance, Ext::Finite(1.0))
}

/// Whether an `RC` tuple encodes a clause of the first formula (cids
/// `1..=r`) in the data reduction.
fn is_phi1_tuple(t: &Tuple, r: usize) -> bool {
    t[0].as_int().expect("cid is an Int") <= r as i64
}

/// Build the data-complexity reduction (fixed identity query, no
/// `Qc`): `B = 1` is the maximum bound **iff** `φ1` is satisfiable and
/// `φ2` is not.
pub fn reduce_sat_unsat(pair: &SatUnsat) -> (RecInstance, Ext) {
    let r = pair.phi1.clauses.len();
    let s = pair.phi2.clauses.len();

    // Shift φ2's variables past φ1's so the two formulas' assignments
    // are independent, and its cids past φ1's.
    let m = pair.phi1.num_vars;
    let shifted = pkgrec_logic::CnfFormula::new(
        m + pair.phi2.num_vars,
        pair.phi2
            .clauses
            .iter()
            .map(|c| {
                pkgrec_logic::Clause::new(
                    c.0.iter()
                        .map(|l| pkgrec_logic::Lit {
                            var: l.var + m,
                            positive: l.positive,
                        })
                        .collect::<Vec<_>>(),
                )
            })
            .collect::<Vec<_>>(),
    );

    let mut rel = lemma4_4::encode_clauses(&pair.phi1);
    for t in lemma4_4::encode_clauses(&shifted).iter() {
        // Re-number the cid from φ2-local to global (r+1..r+s).
        let mut values = t.values().to_vec();
        let local_cid = values[0].as_int().expect("cid");
        values[0] = pkgrec_data::Value::Int(local_cid + r as i64);
        rel.insert(Tuple::new(values)).expect("schema-conformant");
    }
    let mut db = Database::new();
    db.add_relation(rel).expect("fresh db");

    let q = Query::Cq(ConjunctiveQuery::identity(lemma4_4::RC_REL, 7));

    let val = PackageFn::custom("1 = only φ1 tuples, 2 = both, 0 otherwise", false, move |p| {
        if p.is_empty() {
            return Ext::Finite(0.0);
        }
        let phi1 = p.iter().filter(|t| is_phi1_tuple(t, r)).count();
        let phi2 = p.len() - phi1;
        Ext::Finite(match (phi1 > 0, phi2 > 0) {
            (true, false) => 1.0,
            (true, true) => 2.0,
            _ => 0.0,
        })
    });

    let cost = PackageFn::custom(
        "1 iff φ1 fully covered, φ2 fully covered when touched, consistent",
        false,
        move |p| {
            if !lemma4_4::package_is_consistent(p) {
                return Ext::Finite(2.0);
            }
            let cids: std::collections::BTreeSet<i64> = p
                .iter()
                .map(|t| t[0].as_int().expect("cid is an Int"))
                .collect();
            let phi1_complete = (1..=r as i64).all(|c| cids.contains(&c));
            if !phi1_complete {
                return Ext::Finite(2.0);
            }
            let touches_phi2 = cids.iter().any(|&c| c > r as i64);
            if touches_phi2 {
                let phi2_complete =
                    ((r + 1) as i64..=(r + s) as i64).all(|c| cids.contains(&c));
                if !phi2_complete {
                    return Ext::Finite(2.0);
                }
            }
            Ext::Finite(1.0)
        },
    )
    // Pruning hint: inconsistency is inherited by supersets, so an
    // inconsistent package bounds every superset's cost from below by 2.
    .with_superset_lower_bound(|p| {
        if lemma4_4::package_is_consistent(p) {
            Ext::Finite(1.0)
        } else {
            Ext::Finite(2.0)
        }
    });

    let instance = RecInstance::new(db, q)
        .with_cost(cost)
        .with_budget(1.0)
        .with_val(val)
        .with_k(1);
    (instance, Ext::Finite(1.0))
}

#[cfg(test)]
mod tests {
    use super::*;
    use pkgrec_core::{problems::mbp, SolveOptions};
    use pkgrec_logic::{gen, Clause, CnfFormula, Conjunct, DnfFormula, Lit};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn sigma2_true() -> Sigma2Dnf {
        // ψ ≡ x.
        Sigma2Dnf::new(
            1,
            DnfFormula::new(
                2,
                vec![
                    Conjunct::new(vec![Lit::pos(0), Lit::pos(1)]),
                    Conjunct::new(vec![Lit::pos(0), Lit::neg(1)]),
                ],
            ),
        )
    }

    fn sigma2_false() -> Sigma2Dnf {
        // ψ ≡ y.
        Sigma2Dnf::new(
            1,
            DnfFormula::new(
                2,
                vec![
                    Conjunct::new(vec![Lit::pos(0), Lit::pos(1)]),
                    Conjunct::new(vec![Lit::neg(0), Lit::pos(1)]),
                ],
            ),
        )
    }

    fn combined_answer(phi1: &Sigma2Dnf, phi2: &Sigma2Dnf) -> bool {
        let (inst, b) = reduce_pair(phi1, phi2);
        mbp::is_maximum_bound(&inst, b, &SolveOptions::default()).unwrap()
    }

    #[test]
    fn combined_four_corners() {
        assert!(combined_answer(&sigma2_true(), &sigma2_false()));
        assert!(!combined_answer(&sigma2_true(), &sigma2_true()));
        assert!(!combined_answer(&sigma2_false(), &sigma2_false()));
        assert!(!combined_answer(&sigma2_false(), &sigma2_true()));
    }

    #[test]
    fn combined_random_agreement() {
        let mut rng = StdRng::seed_from_u64(50);
        let (mut yes, mut no) = (0, 0);
        for _ in 0..10 {
            let phi1 = gen::random_sigma2(&mut rng, 2, 1, 2);
            let phi2 = gen::random_sigma2(&mut rng, 1, 2, 2);
            let direct = phi1.is_true() && !phi2.is_true();
            if direct {
                yes += 1;
            } else {
                no += 1;
            }
            assert_eq!(
                combined_answer(&phi1, &phi2),
                direct,
                "φ1 = ∃X∀Y {}, φ2 = ∃X∀Y {}",
                phi1.matrix,
                phi2.matrix
            );
        }
        assert!(yes + no == 10 && yes > 0, "degenerate sample: yes={yes} no={no}");
    }

    fn sat() -> CnfFormula {
        CnfFormula::new(1, vec![Clause::new(vec![Lit::pos(0)])])
    }

    fn unsat() -> CnfFormula {
        CnfFormula::new(
            1,
            vec![Clause::new(vec![Lit::pos(0)]), Clause::new(vec![Lit::neg(0)])],
        )
    }

    fn data_answer(pair: &SatUnsat) -> bool {
        let (inst, b) = reduce_sat_unsat(pair);
        mbp::is_maximum_bound(&inst, b, &SolveOptions::default()).unwrap()
    }

    #[test]
    fn data_four_corners() {
        assert!(data_answer(&SatUnsat::new(sat(), unsat())));
        assert!(!data_answer(&SatUnsat::new(sat(), sat())));
        assert!(!data_answer(&SatUnsat::new(unsat(), unsat())));
        assert!(!data_answer(&SatUnsat::new(unsat(), sat())));
    }

    #[test]
    fn data_random_agreement() {
        let mut rng = StdRng::seed_from_u64(51);
        let (mut yes, mut no) = (0, 0);
        for i in 0..8 {
            let mut pair = gen::random_sat_unsat(&mut rng, 3, 4 + (i % 3));
            if i % 2 == 0 {
                // Half the sample has a guaranteed-unsat φ2 so
                // yes-instances occur.
                pair.phi2 = gen::force_unsat(&pair.phi2);
            }
            let direct = pair.is_yes();
            if direct {
                yes += 1;
            } else {
                no += 1;
            }
            assert_eq!(data_answer(&pair), direct);
        }
        assert!(yes > 0 && no > 0, "degenerate sample: yes={yes} no={no}");
    }
}
