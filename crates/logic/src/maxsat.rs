//! Exact weighted MaxSAT — the MAX-WEIGHT SAT problem of the FRP data-
//! complexity lower bound (Theorem 5.1) and the item-FRP lower bound
//! (Theorem 6.4).

use crate::cnf::CnfFormula;

/// A MAX-WEIGHT SAT instance: clauses with integer weights. The goal is
/// a truth assignment maximizing the total weight of satisfied clauses.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MaxWeightSat {
    /// The clause set (weights parallel to `formula.clauses`).
    pub formula: CnfFormula,
    /// Non-negative clause weights.
    pub weights: Vec<u64>,
}

impl MaxWeightSat {
    /// Build an instance; panics when weights and clauses disagree in
    /// length (construction bug).
    pub fn new(formula: CnfFormula, weights: impl Into<Vec<u64>>) -> Self {
        let weights = weights.into();
        assert_eq!(
            formula.clauses.len(),
            weights.len(),
            "one weight per clause"
        );
        MaxWeightSat { formula, weights }
    }

    /// Total weight of clauses satisfied by `assignment`.
    pub fn weight_of(&self, assignment: &[bool]) -> u64 {
        self.formula
            .clauses
            .iter()
            .zip(&self.weights)
            .filter(|(c, _)| c.eval(assignment))
            .map(|(_, &w)| w)
            .sum()
    }
}

/// Exact branch-and-bound MaxSAT: returns `(best_weight, assignment)`.
///
/// Deterministic tie-breaking: among optimal assignments the
/// lexicographically *last* one under the [`crate::assignments`] order
/// is returned (the search branches `true` first, i.e. in descending
/// lexicographic order, and keeps the first optimum it completes).
pub fn max_weight_sat(instance: &MaxWeightSat) -> (u64, Vec<bool>) {
    let n = instance.formula.num_vars;
    let mut assignment: Vec<Option<bool>> = vec![None; n];
    let mut best: Option<(u64, Vec<bool>)> = None;
    branch(instance, &mut assignment, 0, &mut best);
    best.expect("the search visits at least one leaf")
}

fn branch(
    instance: &MaxWeightSat,
    assignment: &mut Vec<Option<bool>>,
    var: usize,
    best: &mut Option<(u64, Vec<bool>)>,
) {
    let n = instance.formula.num_vars;
    // Bound: weight of clauses already satisfied plus weight of clauses
    // not yet falsified.
    let mut satisfied = 0u64;
    let mut open = 0u64;
    for (c, &w) in instance.formula.clauses.iter().zip(&instance.weights) {
        match c.eval_partial(assignment) {
            Some(true) => satisfied += w,
            Some(false) => {}
            None => open += w,
        }
    }
    if let Some((incumbent, _)) = best {
        if satisfied + open <= *incumbent {
            return; // cannot strictly beat the incumbent
        }
    }
    if var == n {
        let leaf: Vec<bool> = assignment.iter().map(|v| v.expect("all assigned")).collect();
        match best {
            Some((incumbent, _)) if satisfied <= *incumbent => {}
            _ => *best = Some((satisfied, leaf)),
        }
        return;
    }
    for value in [true, false] {
        assignment[var] = Some(value);
        branch(instance, assignment, var + 1, best);
        assignment[var] = None;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::assignments;
    use crate::cnf::{Clause, Lit};

    #[test]
    fn all_satisfiable_reaches_total_weight() {
        let f = CnfFormula::new(
            2,
            vec![
                Clause::new(vec![Lit::pos(0)]),
                Clause::new(vec![Lit::pos(1)]),
            ],
        );
        let inst = MaxWeightSat::new(f, vec![3, 5]);
        let (w, a) = max_weight_sat(&inst);
        assert_eq!(w, 8);
        assert_eq!(a, vec![true, true]);
    }

    #[test]
    fn conflicting_units_pick_heavier() {
        let f = CnfFormula::new(
            1,
            vec![
                Clause::new(vec![Lit::pos(0)]),
                Clause::new(vec![Lit::neg(0)]),
            ],
        );
        let inst = MaxWeightSat::new(f, vec![2, 7]);
        let (w, a) = max_weight_sat(&inst);
        assert_eq!(w, 7);
        assert_eq!(a, vec![false]);
    }

    #[test]
    fn matches_brute_force() {
        let f = CnfFormula::new(
            4,
            vec![
                Clause::new(vec![Lit::pos(0), Lit::neg(1), Lit::pos(2)]),
                Clause::new(vec![Lit::neg(0), Lit::pos(3)]),
                Clause::new(vec![Lit::pos(1), Lit::neg(2), Lit::neg(3)]),
                Clause::new(vec![Lit::neg(2)]),
                Clause::new(vec![Lit::pos(2)]),
            ],
        );
        let inst = MaxWeightSat::new(f, vec![4, 3, 2, 6, 5]);
        let (w, a) = max_weight_sat(&inst);
        let brute = assignments(4).map(|x| inst.weight_of(&x)).max().unwrap();
        assert_eq!(w, brute);
        assert_eq!(inst.weight_of(&a), w);
    }

    #[test]
    fn tie_breaks_to_lexicographically_last() {
        // Single clause (x0 ∨ ¬x0): every assignment is optimal; expect
        // the all-true assignment.
        let f = CnfFormula::new(2, vec![Clause::new(vec![Lit::pos(0), Lit::neg(0)])]);
        let inst = MaxWeightSat::new(f, vec![1]);
        let (w, a) = max_weight_sat(&inst);
        assert_eq!(w, 1);
        assert_eq!(a, vec![true, true]);
    }

    #[test]
    fn zero_clauses() {
        let inst =
            MaxWeightSat::new(CnfFormula::new(2, Vec::<Clause>::new()), Vec::<u64>::new());
        let (w, a) = max_weight_sat(&inst);
        assert_eq!(w, 0);
        assert_eq!(a.len(), 2);
    }
}
