//! Exact weighted MaxSAT — the MAX-WEIGHT SAT problem of the FRP data-
//! complexity lower bound (Theorem 5.1) and the item-FRP lower bound
//! (Theorem 6.4).

use pkgrec_guard::{Interrupted, Meter, Outcome};

use crate::cnf::CnfFormula;

/// A MAX-WEIGHT SAT instance: clauses with integer weights. The goal is
/// a truth assignment maximizing the total weight of satisfied clauses.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MaxWeightSat {
    /// The clause set (weights parallel to `formula.clauses`).
    pub formula: CnfFormula,
    /// Non-negative clause weights.
    pub weights: Vec<u64>,
}

impl MaxWeightSat {
    /// Build an instance; panics when weights and clauses disagree in
    /// length (construction bug).
    pub fn new(formula: CnfFormula, weights: impl Into<Vec<u64>>) -> Self {
        let weights = weights.into();
        assert_eq!(
            formula.clauses.len(),
            weights.len(),
            "one weight per clause"
        );
        MaxWeightSat { formula, weights }
    }

    /// Total weight of clauses satisfied by `assignment`.
    pub fn weight_of(&self, assignment: &[bool]) -> u64 {
        self.formula
            .clauses
            .iter()
            .zip(&self.weights)
            .filter(|(c, _)| c.eval(assignment))
            .map(|(_, &w)| w)
            .sum()
    }
}

/// Exact branch-and-bound MaxSAT: returns `(best_weight, assignment)`.
///
/// Deterministic tie-breaking: among optimal assignments the
/// lexicographically *last* one under the [`crate::assignments`] order
/// is returned (the search branches `true` first, i.e. in descending
/// lexicographic order, and keeps the first optimum it completes).
pub fn max_weight_sat(instance: &MaxWeightSat) -> (u64, Vec<bool>) {
    let outcome =
        max_weight_sat_budgeted(instance, &Meter::unlimited()).expect("unlimited budget");
    debug_assert!(outcome.exact);
    outcome.value
}

/// Budgeted, *anytime* MaxSAT.
///
/// Runs the same branch-and-bound as [`max_weight_sat`] but stops when
/// the meter's budget runs out. On interruption the best assignment
/// found so far is returned as a partial [`Outcome`] (`exact: false`);
/// the search has always completed at least one leaf before yielding,
/// so `value` is a genuine (if possibly suboptimal) assignment. The
/// error case only occurs when the budget is exhausted before the very
/// first leaf is reached.
pub fn max_weight_sat_budgeted(
    instance: &MaxWeightSat,
    meter: &Meter,
) -> Result<Outcome<(u64, Vec<bool>), ()>, Interrupted> {
    let _span = pkgrec_trace::span!("maxsat.solve");
    let n = instance.formula.num_vars;
    let mut assignment: Vec<Option<bool>> = vec![None; n];
    let mut best: Option<(u64, Vec<bool>)> = None;
    match branch(instance, &mut assignment, 0, &mut best, meter) {
        Ok(()) => Ok(Outcome::exact(
            best.expect("the search visits at least one leaf"),
            (),
        )),
        Err(cut) => match best {
            Some(found) => Ok(Outcome::partial(found, cut, ())),
            None => Err(cut),
        },
    }
}

fn branch(
    instance: &MaxWeightSat,
    assignment: &mut Vec<Option<bool>>,
    var: usize,
    best: &mut Option<(u64, Vec<bool>)>,
    meter: &Meter,
) -> Result<(), Interrupted> {
    meter.tick()?;
    pkgrec_trace::counter!("maxsat.branches");
    let n = instance.formula.num_vars;
    // Bound: weight of clauses already satisfied plus weight of clauses
    // not yet falsified.
    let mut satisfied = 0u64;
    let mut open = 0u64;
    for (c, &w) in instance.formula.clauses.iter().zip(&instance.weights) {
        match c.eval_partial(assignment) {
            Some(true) => satisfied += w,
            Some(false) => {}
            None => open += w,
        }
    }
    if let Some((incumbent, _)) = best {
        if satisfied + open <= *incumbent {
            return Ok(()); // cannot strictly beat the incumbent
        }
    }
    if var == n {
        let leaf: Vec<bool> = assignment.iter().map(|v| v.expect("all assigned")).collect();
        match best {
            Some((incumbent, _)) if satisfied <= *incumbent => {}
            _ => *best = Some((satisfied, leaf)),
        }
        return Ok(());
    }
    for value in [true, false] {
        assignment[var] = Some(value);
        let result = branch(instance, assignment, var + 1, best, meter);
        assignment[var] = None;
        result?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::assignments;
    use crate::cnf::{Clause, Lit};

    #[test]
    fn all_satisfiable_reaches_total_weight() {
        let f = CnfFormula::new(
            2,
            vec![
                Clause::new(vec![Lit::pos(0)]),
                Clause::new(vec![Lit::pos(1)]),
            ],
        );
        let inst = MaxWeightSat::new(f, vec![3, 5]);
        let (w, a) = max_weight_sat(&inst);
        assert_eq!(w, 8);
        assert_eq!(a, vec![true, true]);
    }

    #[test]
    fn conflicting_units_pick_heavier() {
        let f = CnfFormula::new(
            1,
            vec![
                Clause::new(vec![Lit::pos(0)]),
                Clause::new(vec![Lit::neg(0)]),
            ],
        );
        let inst = MaxWeightSat::new(f, vec![2, 7]);
        let (w, a) = max_weight_sat(&inst);
        assert_eq!(w, 7);
        assert_eq!(a, vec![false]);
    }

    #[test]
    fn matches_brute_force() {
        let f = CnfFormula::new(
            4,
            vec![
                Clause::new(vec![Lit::pos(0), Lit::neg(1), Lit::pos(2)]),
                Clause::new(vec![Lit::neg(0), Lit::pos(3)]),
                Clause::new(vec![Lit::pos(1), Lit::neg(2), Lit::neg(3)]),
                Clause::new(vec![Lit::neg(2)]),
                Clause::new(vec![Lit::pos(2)]),
            ],
        );
        let inst = MaxWeightSat::new(f, vec![4, 3, 2, 6, 5]);
        let (w, a) = max_weight_sat(&inst);
        let brute = assignments(4).map(|x| inst.weight_of(&x)).max().unwrap();
        assert_eq!(w, brute);
        assert_eq!(inst.weight_of(&a), w);
    }

    #[test]
    fn tie_breaks_to_lexicographically_last() {
        // Single clause (x0 ∨ ¬x0): every assignment is optimal; expect
        // the all-true assignment.
        let f = CnfFormula::new(2, vec![Clause::new(vec![Lit::pos(0), Lit::neg(0)])]);
        let inst = MaxWeightSat::new(f, vec![1]);
        let (w, a) = max_weight_sat(&inst);
        assert_eq!(w, 1);
        assert_eq!(a, vec![true, true]);
    }

    #[test]
    fn budget_yields_anytime_best() {
        // Many variables, conflicting units: the full search is big,
        // but a small budget still returns a genuine assignment.
        let n = 24;
        let f = CnfFormula::new(
            n,
            (0..n)
                .flat_map(|v| {
                    [
                        Clause::new(vec![Lit::pos(v)]),
                        Clause::new(vec![Lit::neg(v)]),
                    ]
                })
                .collect::<Vec<_>>(),
        );
        let weights: Vec<u64> = (0..2 * n as u64).map(|i| i % 5 + 1).collect();
        let inst = MaxWeightSat::new(f, weights);
        let meter = pkgrec_guard::Budget::with_steps(200).meter();
        let outcome = max_weight_sat_budgeted(&inst, &meter).unwrap();
        assert!(!outcome.exact);
        assert!(outcome.interrupted.is_some());
        // The partial answer is a real assignment with its true weight.
        let (w, a) = outcome.value;
        assert_eq!(inst.weight_of(&a), w);
    }

    #[test]
    fn generous_budget_is_exact() {
        let f = CnfFormula::new(
            3,
            vec![
                Clause::new(vec![Lit::pos(0), Lit::pos(1)]),
                Clause::new(vec![Lit::neg(1), Lit::pos(2)]),
            ],
        );
        let inst = MaxWeightSat::new(f, vec![2, 3]);
        let meter = pkgrec_guard::Budget::with_steps(1_000_000).meter();
        let outcome = max_weight_sat_budgeted(&inst, &meter).unwrap();
        assert!(outcome.exact);
        assert_eq!(outcome.value, max_weight_sat(&inst));
    }

    #[test]
    fn zero_clauses() {
        let inst =
            MaxWeightSat::new(CnfFormula::new(2, Vec::<Clause>::new()), Vec::<u64>::new());
        let (w, a) = max_weight_sat(&inst);
        assert_eq!(w, 0);
        assert_eq!(a.len(), 2);
    }
}
