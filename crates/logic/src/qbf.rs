//! Quantified Boolean formulas: the Σp₂ form ∃X∀Y ψ (ψ in 3DNF) of
//! Lemma 4.2, the maximum-Σp₂ function problem of Theorem 5.1, the
//! SAT-UNSAT pairs of Theorem 4.5, and full QBF (Q3SAT) used by the
//! DATALOGnr/FO membership lower bounds.


use pkgrec_guard::{Interrupted, Meter};

use crate::cnf::CnfFormula;
use crate::dnf::DnfFormula;
use crate::dpll::is_satisfiable_budgeted;
use crate::{assignment_index, assignments};

/// A quantifier.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Quant {
    /// Existential.
    Exists,
    /// Universal.
    Forall,
}

/// `∃X ∀Y ψ(X, Y)` with `ψ` in DNF over `X ∪ Y` — variables `0..x_vars`
/// are X, the rest are Y. This is the ∃*∀*3DNF problem, Σp₂-complete
/// (Stockmeyer; Lemma 4.2 of the paper).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Sigma2Dnf {
    /// Number of existential (X) variables; they are the variable prefix.
    pub x_vars: usize,
    /// The DNF matrix over X ∪ Y.
    pub matrix: DnfFormula,
}

impl Sigma2Dnf {
    /// Build an instance; panics if `x_vars` exceeds the matrix's
    /// variable count (construction bug).
    pub fn new(x_vars: usize, matrix: DnfFormula) -> Self {
        assert!(x_vars <= matrix.num_vars, "x_vars exceeds matrix vars");
        Sigma2Dnf { x_vars, matrix }
    }

    /// Number of universal (Y) variables.
    pub fn y_vars(&self) -> usize {
        self.matrix.num_vars - self.x_vars
    }

    /// Whether a fixed X assignment makes `∀Y ψ(μX, Y)` true: the
    /// negation ¬ψ is a CNF; restrict it by μX and check unsatisfiability.
    pub fn forall_y_holds(&self, mu_x: &[bool]) -> bool {
        self.forall_y_holds_budgeted(mu_x, &Meter::unlimited())
            .expect("unlimited budget")
    }

    /// Budgeted variant of [`Sigma2Dnf::forall_y_holds`].
    pub fn forall_y_holds_budgeted(
        &self,
        mu_x: &[bool],
        meter: &Meter,
    ) -> Result<bool, Interrupted> {
        debug_assert_eq!(mu_x.len(), self.x_vars);
        match self.matrix.negate_to_cnf().restrict_prefix(mu_x) {
            // A clause of ¬ψ already false under μX alone: ¬ψ is
            // unsatisfiable, so ∀Y ψ holds.
            None => Ok(true),
            Some(rest) => Ok(!is_satisfiable_budgeted(&rest, meter)?),
        }
    }

    /// Whether the sentence `∃X ∀Y ψ` is true.
    pub fn is_true(&self) -> bool {
        self.is_true_budgeted(&Meter::unlimited())
            .expect("unlimited budget")
    }

    /// Budgeted variant of [`Sigma2Dnf::is_true`]: interrupts when the
    /// meter's budget runs out.
    pub fn is_true_budgeted(&self, meter: &Meter) -> Result<bool, Interrupted> {
        let _span = pkgrec_trace::span!("qbf.sigma2");
        for x in assignments(self.x_vars) {
            meter.tick()?;
            pkgrec_trace::counter!("qbf.expansions");
            if self.forall_y_holds_budgeted(&x, meter)? {
                return Ok(true);
            }
        }
        Ok(false)
    }
}

/// The maximum-Σp₂ function problem (Theorem 5.1, citing Krentel):
/// given `φ(X) = ∀Y ψ(X, Y)`, find the truth assignment of X that makes
/// `φ` true and comes *last* in the lexicographic order, if any.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MaximumSigma2(pub Sigma2Dnf);

impl MaximumSigma2 {
    /// The lexicographically last satisfying X assignment, or `None`.
    pub fn last_satisfying_x(&self) -> Option<Vec<bool>> {
        self.last_satisfying_x_budgeted(&Meter::unlimited())
            .expect("unlimited budget")
    }

    /// Budgeted variant of [`MaximumSigma2::last_satisfying_x`].
    pub fn last_satisfying_x_budgeted(
        &self,
        meter: &Meter,
    ) -> Result<Option<Vec<bool>>, Interrupted> {
        // Descending lexicographic order over X.
        let _span = pkgrec_trace::span!("qbf.max_sigma2");
        let n = self.0.x_vars;
        assert!(n < 63, "X space too large to enumerate");
        for i in (0..(1u64 << n)).rev() {
            meter.tick()?;
            pkgrec_trace::counter!("qbf.expansions");
            let x: Vec<bool> = (0..n).map(|bit| (i >> (n - 1 - bit)) & 1 == 1).collect();
            if self.0.forall_y_holds_budgeted(&x, meter)? {
                return Ok(Some(x));
            }
        }
        Ok(None)
    }

    /// The lexicographic rank of the answer, if any (handy for encoding
    /// the answer as a rating value).
    pub fn last_satisfying_index(&self) -> Option<u64> {
        self.last_satisfying_x().map(|x| assignment_index(&x))
    }
}

/// A SAT-UNSAT instance `(φ1, φ2)`: a yes-instance iff `φ1` is
/// satisfiable and `φ2` is not (DP-complete; Theorem 4.5).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SatUnsat {
    /// The formula required to be satisfiable.
    pub phi1: CnfFormula,
    /// The formula required to be unsatisfiable.
    pub phi2: CnfFormula,
}

impl SatUnsat {
    /// Build an instance.
    pub fn new(phi1: CnfFormula, phi2: CnfFormula) -> Self {
        SatUnsat { phi1, phi2 }
    }

    /// Whether this is a yes-instance.
    pub fn is_yes(&self) -> bool {
        self.is_yes_budgeted(&Meter::unlimited())
            .expect("unlimited budget")
    }

    /// Budgeted variant of [`SatUnsat::is_yes`].
    pub fn is_yes_budgeted(&self, meter: &Meter) -> Result<bool, Interrupted> {
        Ok(is_satisfiable_budgeted(&self.phi1, meter)?
            && !is_satisfiable_budgeted(&self.phi2, meter)?)
    }
}

/// A fully quantified Boolean formula `Q1 x1 ... Qn xn . matrix` with a
/// CNF matrix (Q3SAT when the matrix is 3CNF) — PSPACE-complete, the
/// source of the paper's DATALOGnr/FO membership lower bounds.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct QbfFormula {
    /// One quantifier per variable, in variable order.
    pub quants: Vec<Quant>,
    /// The CNF matrix.
    pub matrix: CnfFormula,
}

impl QbfFormula {
    /// Build an instance; panics when the quantifier prefix length does
    /// not match the matrix's variable count (construction bug).
    pub fn new(quants: impl Into<Vec<Quant>>, matrix: CnfFormula) -> Self {
        let quants = quants.into();
        assert_eq!(quants.len(), matrix.num_vars, "one quantifier per var");
        QbfFormula { quants, matrix }
    }

    /// Evaluate the sentence.
    pub fn is_true(&self) -> bool {
        self.is_true_budgeted(&Meter::unlimited())
            .expect("unlimited budget")
    }

    /// Budgeted variant of [`QbfFormula::is_true`]: interrupts when the
    /// meter's budget runs out.
    pub fn is_true_budgeted(&self, meter: &Meter) -> Result<bool, Interrupted> {
        let _span = pkgrec_trace::span!("qbf.eval");
        let mut assignment: Vec<Option<bool>> = vec![None; self.matrix.num_vars];
        self.eval_from(0, &mut assignment, meter)
    }

    /// Treat the first `x_vars` variables as *free* and count the truth
    /// assignments of that block under which the remaining quantified
    /// sentence is true — the #QBF problem behind the #·PSPACE lower
    /// bound of CPP(DATALOGnr)/CPP(FO) (Theorem 5.3, citing Ladner).
    pub fn count_free_prefix(&self, x_vars: usize) -> u128 {
        self.count_free_prefix_budgeted(x_vars, &Meter::unlimited())
            .expect("unlimited budget")
    }

    /// Budgeted variant of [`QbfFormula::count_free_prefix`].
    pub fn count_free_prefix_budgeted(
        &self,
        x_vars: usize,
        meter: &Meter,
    ) -> Result<u128, Interrupted> {
        assert!(x_vars <= self.matrix.num_vars, "free block exceeds vars");
        let mut count = 0u128;
        for x in crate::assignments(x_vars) {
            meter.tick()?;
            let mut assignment: Vec<Option<bool>> = vec![None; self.matrix.num_vars];
            for (i, &b) in x.iter().enumerate() {
                assignment[i] = Some(b);
            }
            if self.eval_from(x_vars, &mut assignment, meter)? {
                count += 1;
            }
        }
        Ok(count)
    }

    fn eval_from(
        &self,
        var: usize,
        assignment: &mut Vec<Option<bool>>,
        meter: &Meter,
    ) -> Result<bool, Interrupted> {
        meter.tick()?;
        // Early termination: if the matrix is already decided, stop.
        let mut decided = Some(true);
        for c in &self.matrix.clauses {
            match c.eval_partial(assignment) {
                Some(true) => {}
                Some(false) => {
                    decided = Some(false);
                    break;
                }
                None => decided = None,
            }
            if decided == Some(false) {
                break;
            }
        }
        if let Some(v) = decided {
            return Ok(v);
        }
        debug_assert!(var < self.quants.len(), "undecided matrix has free vars");
        pkgrec_trace::counter!("qbf.expansions");
        let mut results = [false; 2];
        for (slot, value) in [true, false].into_iter().enumerate() {
            assignment[var] = Some(value);
            let r = self.eval_from(var + 1, assignment, meter);
            assignment[var] = None;
            results[slot] = r?;
        }
        Ok(match self.quants[var] {
            Quant::Exists => results[0] || results[1],
            Quant::Forall => results[0] && results[1],
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cnf::{Clause, Lit};
    use crate::dnf::Conjunct;

    /// ψ(x, y) = (x ∧ y) ∨ (x ∧ ¬y): equals x. ∃x ∀y ψ is true (x = 1).
    fn psi_equals_x() -> Sigma2Dnf {
        Sigma2Dnf::new(
            1,
            DnfFormula::new(
                2,
                vec![
                    Conjunct::new(vec![Lit::pos(0), Lit::pos(1)]),
                    Conjunct::new(vec![Lit::pos(0), Lit::neg(1)]),
                ],
            ),
        )
    }

    /// ψ(x, y) = (x ∧ y) ∨ (¬x ∧ y): equals y. ∃x ∀y ψ is false.
    fn psi_equals_y() -> Sigma2Dnf {
        Sigma2Dnf::new(
            1,
            DnfFormula::new(
                2,
                vec![
                    Conjunct::new(vec![Lit::pos(0), Lit::pos(1)]),
                    Conjunct::new(vec![Lit::neg(0), Lit::pos(1)]),
                ],
            ),
        )
    }

    #[test]
    fn sigma2_truth() {
        assert!(psi_equals_x().is_true());
        assert!(!psi_equals_y().is_true());
    }

    #[test]
    fn sigma2_matches_brute_force() {
        let f = Sigma2Dnf::new(
            2,
            DnfFormula::new(
                4,
                vec![
                    Conjunct::new(vec![Lit::pos(0), Lit::neg(2), Lit::pos(3)]),
                    Conjunct::new(vec![Lit::neg(1), Lit::pos(2), Lit::neg(3)]),
                    Conjunct::new(vec![Lit::pos(1), Lit::pos(2), Lit::pos(3)]),
                ],
            ),
        );
        let brute = assignments(2).any(|x| {
            assignments(2).all(|y| {
                let full: Vec<bool> = x.iter().chain(y.iter()).copied().collect();
                f.matrix.eval(&full)
            })
        });
        assert_eq!(f.is_true(), brute);
    }

    #[test]
    fn maximum_sigma2_finds_last() {
        // ψ(x0, x1, y) = (x0 ∧ ¬x1 ∧ y) ∨ (x0 ∧ ¬x1 ∧ ¬y): φ(X) holds
        // exactly for (x0, x1) = (1, 0); index 2.
        let f = MaximumSigma2(Sigma2Dnf::new(
            2,
            DnfFormula::new(
                3,
                vec![
                    Conjunct::new(vec![Lit::pos(0), Lit::neg(1), Lit::pos(2)]),
                    Conjunct::new(vec![Lit::pos(0), Lit::neg(1), Lit::neg(2)]),
                ],
            ),
        ));
        assert_eq!(f.last_satisfying_x(), Some(vec![true, false]));
        assert_eq!(f.last_satisfying_index(), Some(2));

        // Unsatisfiable φ: ψ = y alone.
        let none = MaximumSigma2(psi_equals_y());
        assert_eq!(none.last_satisfying_x(), None);
    }

    #[test]
    fn sat_unsat_cases() {
        let sat = CnfFormula::new(1, vec![Clause::new(vec![Lit::pos(0)])]);
        let unsat = CnfFormula::new(
            1,
            vec![Clause::new(vec![Lit::pos(0)]), Clause::new(vec![Lit::neg(0)])],
        );
        assert!(SatUnsat::new(sat.clone(), unsat.clone()).is_yes());
        assert!(!SatUnsat::new(sat.clone(), sat.clone()).is_yes());
        assert!(!SatUnsat::new(unsat.clone(), unsat.clone()).is_yes());
        assert!(!SatUnsat::new(unsat, sat).is_yes());
    }

    #[test]
    fn qbf_alternation() {
        // ∀x ∃y (x ↔ y) as CNF (x∨¬y) ∧ (¬x∨y): true.
        let matrix = CnfFormula::new(
            2,
            vec![
                Clause::new(vec![Lit::pos(0), Lit::neg(1)]),
                Clause::new(vec![Lit::neg(0), Lit::pos(1)]),
            ],
        );
        let f = QbfFormula::new(vec![Quant::Forall, Quant::Exists], matrix.clone());
        assert!(f.is_true());
        // ∃y ∀x (x ↔ y): false. (Variable order: y first.)
        let matrix_rev = CnfFormula::new(
            2,
            vec![
                Clause::new(vec![Lit::pos(1), Lit::neg(0)]),
                Clause::new(vec![Lit::neg(1), Lit::pos(0)]),
            ],
        );
        let g = QbfFormula::new(vec![Quant::Exists, Quant::Forall], matrix_rev);
        assert!(!g.is_true());
    }

    #[test]
    fn qbf_budget_interrupts() {
        // An alternating 16-var QBF whose evaluation tree is large.
        let n = 16;
        let matrix = CnfFormula::new(
            n,
            (0..n - 1)
                .map(|v| Clause::new(vec![Lit::pos(v), Lit::neg(v + 1)]))
                .collect::<Vec<_>>(),
        );
        let quants: Vec<Quant> = (0..n)
            .map(|v| if v % 2 == 0 { Quant::Forall } else { Quant::Exists })
            .collect();
        let f = QbfFormula::new(quants, matrix);
        let meter = pkgrec_guard::Budget::with_steps(50).meter();
        assert!(f.is_true_budgeted(&meter).is_err());
        let generous = pkgrec_guard::Budget::with_steps(100_000_000).meter();
        assert_eq!(f.is_true_budgeted(&generous).unwrap(), f.is_true());
    }

    #[test]
    fn qbf_matches_brute_force() {
        // Random-ish fixed 3-var instance, all prefixes checked.
        let matrix = CnfFormula::new(
            3,
            vec![
                Clause::new(vec![Lit::pos(0), Lit::neg(1), Lit::pos(2)]),
                Clause::new(vec![Lit::neg(0), Lit::pos(1)]),
                Clause::new(vec![Lit::pos(1), Lit::neg(2)]),
            ],
        );
        let brute = |quants: &[Quant]| -> bool {
            fn go(quants: &[Quant], matrix: &CnfFormula, partial: &mut Vec<bool>) -> bool {
                if partial.len() == quants.len() {
                    return matrix.eval(partial);
                }
                let q = quants[partial.len()];
                let mut results = Vec::new();
                for v in [false, true] {
                    partial.push(v);
                    results.push(go(quants, matrix, partial));
                    partial.pop();
                }
                match q {
                    Quant::Exists => results.iter().any(|&r| r),
                    Quant::Forall => results.iter().all(|&r| r),
                }
            }
            go(quants, &matrix, &mut Vec::new())
        };
        use Quant::*;
        for prefix in [
            [Exists, Exists, Exists],
            [Forall, Forall, Forall],
            [Exists, Forall, Exists],
            [Forall, Exists, Forall],
        ] {
            let f = QbfFormula::new(prefix.to_vec(), matrix.clone());
            assert_eq!(f.is_true(), brute(&prefix), "prefix {prefix:?}");
        }
    }
}
