use std::fmt;


/// A literal: a variable index with a polarity.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Lit {
    /// Variable index (0-based).
    pub var: usize,
    /// `true` for the positive literal `x`, `false` for `¬x`.
    pub positive: bool,
}

impl Lit {
    /// Positive literal of variable `var`.
    pub fn pos(var: usize) -> Lit {
        Lit {
            var,
            positive: true,
        }
    }

    /// Negative literal of variable `var`.
    pub fn neg(var: usize) -> Lit {
        Lit {
            var,
            positive: false,
        }
    }

    /// The complementary literal.
    pub fn negated(self) -> Lit {
        Lit {
            var: self.var,
            positive: !self.positive,
        }
    }

    /// Truth value under a (total) assignment.
    pub fn eval(self, assignment: &[bool]) -> bool {
        assignment[self.var] == self.positive
    }

    /// Truth value under a partial assignment.
    pub fn eval_partial(self, assignment: &[Option<bool>]) -> Option<bool> {
        assignment[self.var].map(|v| v == self.positive)
    }
}

impl fmt::Display for Lit {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.positive {
            write!(f, "x{}", self.var)
        } else {
            write!(f, "¬x{}", self.var)
        }
    }
}

/// A clause: a disjunction of literals.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Clause(pub Vec<Lit>);

impl Clause {
    /// Build a clause.
    pub fn new(lits: impl Into<Vec<Lit>>) -> Self {
        Clause(lits.into())
    }

    /// Truth value under a total assignment.
    pub fn eval(&self, assignment: &[bool]) -> bool {
        self.0.iter().any(|l| l.eval(assignment))
    }

    /// State under a partial assignment: `Some(true)` if some literal is
    /// true, `Some(false)` if all are false, `None` otherwise.
    pub fn eval_partial(&self, assignment: &[Option<bool>]) -> Option<bool> {
        let mut all_false = true;
        for l in &self.0 {
            match l.eval_partial(assignment) {
                Some(true) => return Some(true),
                Some(false) => {}
                None => all_false = false,
            }
        }
        if all_false {
            Some(false)
        } else {
            None
        }
    }

    /// The sole unassigned literal, if every other literal is false
    /// (the unit-propagation trigger).
    pub fn unit_literal(&self, assignment: &[Option<bool>]) -> Option<Lit> {
        let mut unit = None;
        for l in &self.0 {
            match l.eval_partial(assignment) {
                Some(true) => return None,
                Some(false) => {}
                None => {
                    if unit.is_some() {
                        return None;
                    }
                    unit = Some(*l);
                }
            }
        }
        unit
    }
}

impl fmt::Display for Clause {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "(")?;
        for (i, l) in self.0.iter().enumerate() {
            if i > 0 {
                write!(f, " ∨ ")?;
            }
            write!(f, "{l}")?;
        }
        write!(f, ")")
    }
}

/// A CNF formula `C1 ∧ ... ∧ Cr` over `num_vars` variables.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CnfFormula {
    /// Number of variables (indices `0..num_vars`).
    pub num_vars: usize,
    /// The clauses.
    pub clauses: Vec<Clause>,
}

impl CnfFormula {
    /// Build a formula; panics if a literal references a variable out of
    /// range (a construction bug, not an input condition).
    pub fn new(num_vars: usize, clauses: impl Into<Vec<Clause>>) -> Self {
        let clauses = clauses.into();
        for c in &clauses {
            for l in &c.0 {
                assert!(l.var < num_vars, "literal variable out of range");
            }
        }
        CnfFormula { num_vars, clauses }
    }

    /// Truth value under a total assignment.
    pub fn eval(&self, assignment: &[bool]) -> bool {
        self.clauses.iter().all(|c| c.eval(assignment))
    }

    /// Whether every clause has exactly three literals (3CNF).
    pub fn is_3cnf(&self) -> bool {
        self.clauses.iter().all(|c| c.0.len() == 3)
    }

    /// Restrict the formula by a partial assignment of a variable prefix:
    /// clauses satisfied by the prefix are dropped, false literals
    /// removed, and remaining variables renumbered by `var - prefix_len`.
    /// Returns `None` when some clause becomes empty (unsatisfiable).
    pub fn restrict_prefix(&self, prefix: &[bool]) -> Option<CnfFormula> {
        let k = prefix.len();
        let mut clauses = Vec::new();
        for c in &self.clauses {
            let mut lits = Vec::new();
            let mut satisfied = false;
            for l in &c.0 {
                if l.var < k {
                    if l.eval(prefix) {
                        satisfied = true;
                        break;
                    }
                } else {
                    lits.push(Lit {
                        var: l.var - k,
                        positive: l.positive,
                    });
                }
            }
            if satisfied {
                continue;
            }
            if lits.is_empty() {
                return None;
            }
            clauses.push(Clause(lits));
        }
        Some(CnfFormula {
            num_vars: self.num_vars - k,
            clauses,
        })
    }
}

impl fmt::Display for CnfFormula {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.clauses.is_empty() {
            return write!(f, "⊤");
        }
        for (i, c) in self.clauses.iter().enumerate() {
            if i > 0 {
                write!(f, " ∧ ")?;
            }
            write!(f, "{c}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn phi() -> CnfFormula {
        // (x0 ∨ ¬x1 ∨ x2) ∧ (¬x0 ∨ x1 ∨ x2)
        CnfFormula::new(
            3,
            vec![
                Clause::new(vec![Lit::pos(0), Lit::neg(1), Lit::pos(2)]),
                Clause::new(vec![Lit::neg(0), Lit::pos(1), Lit::pos(2)]),
            ],
        )
    }

    #[test]
    fn literal_eval() {
        assert!(Lit::pos(0).eval(&[true]));
        assert!(!Lit::neg(0).eval(&[true]));
        assert_eq!(Lit::pos(0).negated(), Lit::neg(0));
    }

    #[test]
    fn formula_eval() {
        let f = phi();
        assert!(f.eval(&[true, true, false]));
        assert!(!f.eval(&[true, false, false]));
        assert!(f.is_3cnf());
    }

    #[test]
    fn partial_clause_states() {
        let c = Clause::new(vec![Lit::pos(0), Lit::neg(1)]);
        assert_eq!(c.eval_partial(&[Some(true), None]), Some(true));
        assert_eq!(c.eval_partial(&[Some(false), Some(true)]), Some(false));
        assert_eq!(c.eval_partial(&[Some(false), None]), None);
        assert_eq!(c.unit_literal(&[Some(false), None]), Some(Lit::neg(1)));
        assert_eq!(c.unit_literal(&[None, None]), None);
    }

    #[test]
    fn restriction() {
        let f = phi();
        // x0 = true: first clause satisfied, second becomes (x1 ∨ x2)
        // renumbered to vars 0, 1.
        let r = f.restrict_prefix(&[true]).unwrap();
        assert_eq!(r.num_vars, 2);
        assert_eq!(r.clauses.len(), 1);
        assert_eq!(r.clauses[0].0, vec![Lit::pos(0), Lit::pos(1)]);

        // Restricting to a conflict yields None.
        let g = CnfFormula::new(1, vec![Clause::new(vec![Lit::pos(0)])]);
        assert!(g.restrict_prefix(&[false]).is_none());
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_literal_panics() {
        CnfFormula::new(1, vec![Clause::new(vec![Lit::pos(3)])]);
    }
}
