use std::fmt;


use crate::cnf::{Clause, CnfFormula, Lit};

/// A conjunct of literals (a term of a DNF formula).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Conjunct(pub Vec<Lit>);

impl Conjunct {
    /// Build a conjunct.
    pub fn new(lits: impl Into<Vec<Lit>>) -> Self {
        Conjunct(lits.into())
    }

    /// Truth value under a total assignment.
    pub fn eval(&self, assignment: &[bool]) -> bool {
        self.0.iter().all(|l| l.eval(assignment))
    }
}

impl fmt::Display for Conjunct {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "(")?;
        for (i, l) in self.0.iter().enumerate() {
            if i > 0 {
                write!(f, " ∧ ")?;
            }
            write!(f, "{l}")?;
        }
        write!(f, ")")
    }
}

/// A DNF formula `C1 ∨ ... ∨ Cr` over `num_vars` variables. The
/// ∃*∀*3DNF problem of Lemma 4.2 and the maximum-Σp₂ problem of
/// Theorem 5.1 use 3DNF matrices.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DnfFormula {
    /// Number of variables.
    pub num_vars: usize,
    /// The disjuncts.
    pub conjuncts: Vec<Conjunct>,
}

impl DnfFormula {
    /// Build a formula; panics on out-of-range literals (construction
    /// bug).
    pub fn new(num_vars: usize, conjuncts: impl Into<Vec<Conjunct>>) -> Self {
        let conjuncts = conjuncts.into();
        for c in &conjuncts {
            for l in &c.0 {
                assert!(l.var < num_vars, "literal variable out of range");
            }
        }
        DnfFormula {
            num_vars,
            conjuncts,
        }
    }

    /// Truth value under a total assignment.
    pub fn eval(&self, assignment: &[bool]) -> bool {
        self.conjuncts.iter().any(|c| c.eval(assignment))
    }

    /// Whether every conjunct has exactly three literals (3DNF).
    pub fn is_3dnf(&self) -> bool {
        self.conjuncts.iter().all(|c| c.0.len() == 3)
    }

    /// The negation, as a CNF formula (De Morgan, clause-by-clause).
    pub fn negate_to_cnf(&self) -> CnfFormula {
        CnfFormula::new(
            self.num_vars,
            self.conjuncts
                .iter()
                .map(|c| Clause::new(c.0.iter().map(|l| l.negated()).collect::<Vec<_>>()))
                .collect::<Vec<_>>(),
        )
    }
}

impl fmt::Display for DnfFormula {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.conjuncts.is_empty() {
            return write!(f, "⊥");
        }
        for (i, c) in self.conjuncts.iter().enumerate() {
            if i > 0 {
                write!(f, " ∨ ")?;
            }
            write!(f, "{c}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::assignments;

    fn psi() -> DnfFormula {
        // (x0 ∧ x1) ∨ (¬x0 ∧ ¬x1)
        DnfFormula::new(
            2,
            vec![
                Conjunct::new(vec![Lit::pos(0), Lit::pos(1)]),
                Conjunct::new(vec![Lit::neg(0), Lit::neg(1)]),
            ],
        )
    }

    #[test]
    fn dnf_eval() {
        let f = psi();
        assert!(f.eval(&[true, true]));
        assert!(f.eval(&[false, false]));
        assert!(!f.eval(&[true, false]));
        assert!(!f.is_3dnf());
    }

    #[test]
    fn negation_is_pointwise_complement() {
        let f = psi();
        let neg = f.negate_to_cnf();
        for a in assignments(2) {
            assert_eq!(f.eval(&a), !neg.eval(&a));
        }
    }

    #[test]
    fn empty_dnf_is_false() {
        let f = DnfFormula::new(1, Vec::<Conjunct>::new());
        assert!(!f.eval(&[true]));
        // And its negation is the empty CNF = true.
        assert!(f.negate_to_cnf().eval(&[true]));
    }
}
