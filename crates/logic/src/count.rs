//! Exact model counting and the quantified counting problems of
//! Theorem 5.3.

use pkgrec_guard::{Interrupted, Meter};

use crate::cnf::CnfFormula;
use crate::dnf::DnfFormula;
use crate::dpll::is_satisfiable_budgeted;
use crate::{assignments, Lit};

/// Exact number of satisfying assignments of a CNF formula (#SAT),
/// counting over all `num_vars` variables.
pub fn count_models(f: &CnfFormula) -> u128 {
    count_models_budgeted(f, &Meter::unlimited()).expect("unlimited budget")
}

/// Budgeted #SAT: interrupts when the meter's budget runs out.
pub fn count_models_budgeted(f: &CnfFormula, meter: &Meter) -> Result<u128, Interrupted> {
    let _span = pkgrec_trace::span!("sharpsat.count");
    let mut assignment: Vec<Option<bool>> = vec![None; f.num_vars];
    count_rec(f, &mut assignment, f.num_vars, meter)
}

fn count_rec(
    f: &CnfFormula,
    assignment: &mut Vec<Option<bool>>,
    unassigned: usize,
    meter: &Meter,
) -> Result<u128, Interrupted> {
    meter.tick()?;
    pkgrec_trace::counter!("sharpsat.branches");
    // Classify clauses under the partial assignment.
    let mut branch: Option<Lit> = None;
    let mut all_satisfied = true;
    for c in &f.clauses {
        match c.eval_partial(assignment) {
            Some(true) => {}
            Some(false) => return Ok(0),
            None => {
                all_satisfied = false;
                if branch.is_none() {
                    branch = c.0.iter().find(|l| assignment[l.var].is_none()).copied();
                }
            }
        }
    }
    if all_satisfied {
        return Ok(1u128 << unassigned);
    }
    let lit = branch.expect("unresolved clause has an unassigned literal");
    let mut total = 0;
    for value in [true, false] {
        assignment[lit.var] = Some(value);
        match count_rec(f, assignment, unassigned - 1, meter) {
            Ok(n) => total += n,
            Err(cut) => {
                assignment[lit.var] = None;
                return Err(cut);
            }
        }
    }
    assignment[lit.var] = None;
    Ok(total)
}

/// #Σ₁SAT: given `φ(X, Y) = ∃X (C1 ∧ ... ∧ Cr)` with the matrix a CNF
/// over `X ∪ Y` (X = the first `x_vars` variables), count the truth
/// assignments of `Y` for which `φ` is true. Source problem of the
/// CPP(CQ) lower bound without compatibility constraints
/// (Theorem 5.3, citing [Durand–Hermann–Kolaitis]).
pub fn count_sigma1(matrix: &CnfFormula, x_vars: usize) -> u128 {
    count_sigma1_budgeted(matrix, x_vars, &Meter::unlimited()).expect("unlimited budget")
}

/// Budgeted #Σ₁SAT: interrupts when the meter's budget runs out.
pub fn count_sigma1_budgeted(
    matrix: &CnfFormula,
    x_vars: usize,
    meter: &Meter,
) -> Result<u128, Interrupted> {
    // Variables are ordered X then Y; to fix a Y assignment we need Y
    // first, so swap the roles: re-index to put Y in the prefix.
    let y_vars = matrix.num_vars - x_vars;
    let swapped = swap_blocks(matrix, x_vars);
    let mut count = 0u128;
    for y in assignments(y_vars) {
        meter.tick()?;
        let holds = match swapped.restrict_prefix(&y) {
            None => false,
            Some(rest) => is_satisfiable_budgeted(&rest, meter)?,
        };
        if holds {
            count += 1;
        }
    }
    Ok(count)
}

/// #Π₁SAT: given `φ(X, Y) = ∀X (C1 ∨ ... ∨ Cr)` with the matrix a DNF
/// over `X ∪ Y` (X first), count the truth assignments of `Y` making `φ`
/// true. Source problem of the CPP(CQ) lower bound *with* compatibility
/// constraints (Theorem 5.3).
pub fn count_pi1(matrix: &DnfFormula, x_vars: usize) -> u128 {
    count_pi1_budgeted(matrix, x_vars, &Meter::unlimited()).expect("unlimited budget")
}

/// Budgeted #Π₁SAT: interrupts when the meter's budget runs out.
pub fn count_pi1_budgeted(
    matrix: &DnfFormula,
    x_vars: usize,
    meter: &Meter,
) -> Result<u128, Interrupted> {
    // ∀X ψ ⟺ ¬∃X ¬ψ; ¬ψ is a CNF.
    let neg = matrix.negate_to_cnf();
    let y_vars = matrix.num_vars - x_vars;
    let swapped = swap_blocks(&neg, x_vars);
    let mut count = 0u128;
    for y in assignments(y_vars) {
        meter.tick()?;
        // φ(y) is true iff ¬ψ[Y := y] is unsatisfiable over X. A
        // `None` restriction means a clause of ¬ψ is already false
        // under y alone, so ¬ψ is unsatisfiable — φ(y) holds.
        let holds = match swapped.restrict_prefix(&y) {
            None => true,
            Some(rest) => !is_satisfiable_budgeted(&rest, meter)?,
        };
        if holds {
            count += 1;
        }
    }
    Ok(count)
}

/// Reorder variables so the block `[x_vars..]` (Y) comes first.
fn swap_blocks(f: &CnfFormula, x_vars: usize) -> CnfFormula {
    let y_vars = f.num_vars - x_vars;
    CnfFormula::new(
        f.num_vars,
        f.clauses
            .iter()
            .map(|c| {
                crate::cnf::Clause::new(
                    c.0.iter()
                        .map(|l| {
                            let var = if l.var < x_vars {
                                l.var + y_vars
                            } else {
                                l.var - x_vars
                            };
                            Lit {
                                var,
                                positive: l.positive,
                            }
                        })
                        .collect::<Vec<_>>(),
                )
            })
            .collect::<Vec<_>>(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cnf::Clause;
    use crate::dnf::Conjunct;

    #[test]
    fn count_simple() {
        // x0 ∨ x1 over 2 vars: 3 models.
        let f = CnfFormula::new(2, vec![Clause::new(vec![Lit::pos(0), Lit::pos(1)])]);
        assert_eq!(count_models(&f), 3);
        // Empty formula over n vars: 2^n.
        assert_eq!(count_models(&CnfFormula::new(5, Vec::<Clause>::new())), 32);
        // Contradiction: 0.
        let c = CnfFormula::new(
            1,
            vec![Clause::new(vec![Lit::pos(0)]), Clause::new(vec![Lit::neg(0)])],
        );
        assert_eq!(count_models(&c), 0);
    }

    #[test]
    fn count_matches_brute_force() {
        let f = CnfFormula::new(
            4,
            vec![
                Clause::new(vec![Lit::pos(0), Lit::neg(1), Lit::pos(2)]),
                Clause::new(vec![Lit::neg(0), Lit::pos(3)]),
                Clause::new(vec![Lit::pos(1), Lit::neg(2), Lit::neg(3)]),
            ],
        );
        let brute = assignments(4).filter(|a| f.eval(a)).count() as u128;
        assert_eq!(count_models(&f), brute);
    }

    #[test]
    fn sigma1_counts_y_projections() {
        // φ(X, Y) = ∃x0 ((x0 ∨ y0) ∧ (¬x0 ∨ y1)); vars: x0=0, y0=1, y1=2.
        let f = CnfFormula::new(
            3,
            vec![
                Clause::new(vec![Lit::pos(0), Lit::pos(1)]),
                Clause::new(vec![Lit::neg(0), Lit::pos(2)]),
            ],
        );
        // Brute force: for y=(y0,y1) check if some x0 works.
        // y=(0,0): x0=0 fails clause1? (0∨0)=F → no; x0=1 fails clause2 → 0.
        // y=(0,1): x0=1 works → yes. y=(1,0): x0=0 works → yes.
        // y=(1,1): yes. Total 3.
        assert_eq!(count_sigma1(&f, 1), 3);
    }

    #[test]
    fn pi1_counts_universal_projections() {
        // φ(X, Y) = ∀x0 ((x0 ∧ y0) ∨ (¬x0 ∧ y1)); vars: x0=0, y0=1, y1=2.
        // True iff y0 ∧ y1. So exactly one Y assignment.
        let f = DnfFormula::new(
            3,
            vec![
                Conjunct::new(vec![Lit::pos(0), Lit::pos(1)]),
                Conjunct::new(vec![Lit::neg(0), Lit::pos(2)]),
            ],
        );
        assert_eq!(count_pi1(&f, 1), 1);
    }

    #[test]
    fn sigma1_brute_force_agreement() {
        // Random-ish fixed instance, x_vars = 2, y_vars = 2.
        let f = CnfFormula::new(
            4,
            vec![
                Clause::new(vec![Lit::pos(0), Lit::neg(2), Lit::pos(3)]),
                Clause::new(vec![Lit::neg(1), Lit::pos(2)]),
                Clause::new(vec![Lit::pos(1), Lit::neg(3)]),
            ],
        );
        let brute = assignments(2)
            .filter(|y| {
                assignments(2).any(|x| {
                    let full: Vec<bool> = x.iter().chain(y.iter()).copied().collect();
                    f.eval(&full)
                })
            })
            .count() as u128;
        assert_eq!(count_sigma1(&f, 2), brute);
    }

    #[test]
    fn budget_interrupts_counting() {
        // 20 unconstrained-ish vars force an exponential count tree.
        let f = CnfFormula::new(
            20,
            (0..19)
                .map(|v| Clause::new(vec![Lit::pos(v), Lit::pos(v + 1)]))
                .collect::<Vec<_>>(),
        );
        let meter = pkgrec_guard::Budget::with_steps(100).meter();
        assert!(count_models_budgeted(&f, &meter).is_err());
        // A generous budget agrees with the unbounded count.
        let generous = pkgrec_guard::Budget::with_steps(100_000_000).meter();
        assert_eq!(
            count_models_budgeted(&f, &generous).unwrap(),
            count_models(&f)
        );
    }

    #[test]
    fn pi1_brute_force_agreement() {
        let f = DnfFormula::new(
            4,
            vec![
                Conjunct::new(vec![Lit::pos(0), Lit::neg(2), Lit::pos(3)]),
                Conjunct::new(vec![Lit::neg(0), Lit::pos(1), Lit::pos(2)]),
                Conjunct::new(vec![Lit::neg(1), Lit::neg(3), Lit::pos(2)]),
            ],
        );
        let brute = assignments(2)
            .filter(|y| {
                assignments(2).all(|x| {
                    let full: Vec<bool> = x.iter().chain(y.iter()).copied().collect();
                    f.eval(&full)
                })
            })
            .count() as u128;
        assert_eq!(count_pi1(&f, 2), brute);
    }
}
