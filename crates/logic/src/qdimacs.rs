//! QDIMACS parsing: `c` comments, a `p cnf <vars> <clauses>` header,
//! `e`/`a` quantifier lines and clause lines, all 0-terminated. The
//! grammar here is the one the CLI's `qbf` command accepts — closed
//! sentences only, so every variable must be quantified.
//!
//! Parsing is total on arbitrary bytes: malformed input yields a typed
//! [`QdimacsError`] with a line number, never a panic, and a header
//! declaring an absurd variable count is rejected *before* any
//! allocation sized by it (an adversarial `p cnf 99999999999 1` must
//! not abort the process by exhausting memory).

use crate::{Clause, CnfFormula, Lit, QbfFormula, Quant};

/// Largest accepted `p cnf` variable count. The direct QBF solvers are
/// exponential in the prefix, so real instances are tiny; the cap only
/// exists to bound allocation on hostile input.
pub const MAX_VARS: usize = 1_000_000;

/// A QDIMACS syntax error, with its 1-based line when attributable.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct QdimacsError {
    /// 1-based source line, when the error is attributable to one.
    pub line: Option<usize>,
    /// What went wrong.
    pub message: String,
}

impl std::fmt::Display for QdimacsError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self.line {
            Some(line) => write!(f, "line {line}: {}", self.message),
            None => write!(f, "{}", self.message),
        }
    }
}

impl std::error::Error for QdimacsError {}

fn err_at(line: usize, message: impl Into<String>) -> QdimacsError {
    QdimacsError {
        line: Some(line),
        message: message.into(),
    }
}

/// Parse QDIMACS source into a closed [`QbfFormula`].
pub fn parse_qdimacs(src: &str) -> Result<QbfFormula, QdimacsError> {
    let mut num_vars: Option<usize> = None;
    let mut quants: Vec<Option<Quant>> = Vec::new();
    let mut clauses: Vec<Clause> = Vec::new();
    for (lineno, line) in src.lines().enumerate() {
        let line = line.trim();
        let lineno = lineno + 1;
        if line.is_empty() || line.starts_with('c') {
            continue;
        }
        if let Some(header) = line.strip_prefix("p cnf") {
            if num_vars.is_some() {
                return Err(err_at(lineno, "duplicate `p cnf` header"));
            }
            let mut nums = header.split_whitespace();
            let v: usize = nums
                .next()
                .and_then(|s| s.parse().ok())
                .ok_or_else(|| err_at(lineno, "bad `p cnf` header"))?;
            if v > MAX_VARS {
                return Err(err_at(
                    lineno,
                    format!("{v} variables exceeds the {MAX_VARS} limit"),
                ));
            }
            num_vars = Some(v);
            quants = vec![None; v];
            continue;
        }
        let n = num_vars.ok_or_else(|| err_at(lineno, "clause before `p cnf` header"))?;
        let (quant, rest) = match line.split_at(1) {
            ("e", rest) => (Some(Quant::Exists), rest),
            ("a", rest) => (Some(Quant::Forall), rest),
            _ => (None, line),
        };
        let mut lits = Vec::new();
        for tok in rest.split_whitespace() {
            let v: i64 = tok
                .parse()
                .map_err(|_| err_at(lineno, format!("bad literal `{tok}`")))?;
            if v == 0 {
                break; // terminator
            }
            let var = (v.unsigned_abs() as usize)
                .checked_sub(1)
                .filter(|&i| i < n)
                .ok_or_else(|| {
                    err_at(lineno, format!("variable {} out of range 1..={n}", v.abs()))
                })?;
            match quant {
                Some(q) => quants[var] = Some(q),
                None => lits.push(if v > 0 { Lit::pos(var) } else { Lit::neg(var) }),
            }
        }
        if quant.is_none() {
            clauses.push(Clause::new(lits));
        }
    }
    let n = num_vars.ok_or(QdimacsError {
        line: None,
        message: "missing `p cnf` header".to_string(),
    })?;
    let quants: Vec<Quant> = quants
        .into_iter()
        .enumerate()
        .map(|(i, q)| {
            q.ok_or(QdimacsError {
                line: None,
                message: format!("variable {} is not quantified", i + 1),
            })
        })
        .collect::<Result<_, _>>()?;
    Ok(QbfFormula::new(quants, CnfFormula::new(n, clauses)))
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = "\
c a closed sentence: ∃x1 ∀x2. (x1 ∨ x2) ∧ (x1 ∨ ¬x2)
p cnf 2 2
e 1 0
a 2 0
1 2 0
1 -2 0
";

    #[test]
    fn parses_the_sample() {
        let qbf = parse_qdimacs(SAMPLE).unwrap();
        assert_eq!(qbf.quants, vec![Quant::Exists, Quant::Forall]);
        assert_eq!(qbf.matrix.num_vars, 2);
        assert_eq!(qbf.matrix.clauses.len(), 2);
        assert!(qbf.is_true());
    }

    #[test]
    fn syntax_errors_carry_line_numbers() {
        let e = parse_qdimacs("p cnf x 1\n").unwrap_err();
        assert_eq!(e.line, Some(1));
        let e = parse_qdimacs("1 0\n").unwrap_err();
        assert_eq!(e.line, Some(1));
        assert!(e.message.contains("before `p cnf`"));
        let e = parse_qdimacs("p cnf 2 1\ne 1 2 0\n1 zz 0\n").unwrap_err();
        assert_eq!(e.line, Some(3));
        let e = parse_qdimacs("p cnf 1 1\ne 1 0\n5 0\n").unwrap_err();
        assert!(e.message.contains("out of range"), "{e}");
    }

    #[test]
    fn unquantified_and_headerless_inputs_are_typed_errors() {
        let e = parse_qdimacs("").unwrap_err();
        assert_eq!(e.line, None);
        assert!(e.message.contains("missing"), "{e}");
        let e = parse_qdimacs("p cnf 2 1\ne 1 0\n1 2 0\n").unwrap_err();
        assert!(e.message.contains("not quantified"), "{e}");
    }

    #[test]
    fn absurd_header_is_rejected_before_allocation() {
        let e = parse_qdimacs("p cnf 99999999999999 1\n").unwrap_err();
        assert!(e.message.contains("limit"), "{e}");
        let e = parse_qdimacs("p cnf 2 1\np cnf 2 1\n").unwrap_err();
        assert!(e.message.contains("duplicate"), "{e}");
    }
}
