//! A DPLL SAT solver with unit propagation and pure-literal elimination.
//!
//! Exact and dependency-free; instance sizes in this workspace are small
//! (reduction checking, workload generation), so clarity beats watched
//! literals. Every search node ticks a [`Meter`], so callers can bound
//! the exponential worst case with a [`pkgrec_guard::Budget`].

use pkgrec_guard::{Interrupted, Meter};

use crate::cnf::{CnfFormula, Lit};

/// Whether the formula is satisfiable.
pub fn is_satisfiable(f: &CnfFormula) -> bool {
    is_satisfiable_budgeted(f, &Meter::unlimited()).expect("unlimited budget")
}

/// Budgeted satisfiability: interrupts when the meter's budget runs out.
pub fn is_satisfiable_budgeted(f: &CnfFormula, meter: &Meter) -> Result<bool, Interrupted> {
    Ok(find_model_budgeted(f, meter)?.is_some())
}

/// A satisfying assignment, if one exists. Unconstrained variables are
/// set to `false`.
pub fn find_model(f: &CnfFormula) -> Option<Vec<bool>> {
    find_model_budgeted(f, &Meter::unlimited()).expect("unlimited budget")
}

/// Budgeted model search: interrupts when the meter's budget runs out.
pub fn find_model_budgeted(
    f: &CnfFormula,
    meter: &Meter,
) -> Result<Option<Vec<bool>>, Interrupted> {
    let _span = pkgrec_trace::span!("dpll.solve");
    let mut assignment: Vec<Option<bool>> = vec![None; f.num_vars];
    Ok(if dpll(f, &mut assignment, meter)? {
        Some(assignment.into_iter().map(|v| v.unwrap_or(false)).collect())
    } else {
        None
    })
}

fn dpll(
    f: &CnfFormula,
    assignment: &mut Vec<Option<bool>>,
    meter: &Meter,
) -> Result<bool, Interrupted> {
    meter.tick()?;
    // Unit propagation to fixpoint; remember what we forced so we can
    // undo on backtrack.
    let mut trail: Vec<usize> = Vec::new();
    loop {
        let mut changed = false;
        for c in &f.clauses {
            match c.eval_partial(assignment) {
                Some(true) => {}
                Some(false) => {
                    pkgrec_trace::counter!("dpll.conflicts");
                    for &v in &trail {
                        assignment[v] = None;
                    }
                    return Ok(false);
                }
                None => {
                    if let Some(unit) = c.unit_literal(assignment) {
                        pkgrec_trace::counter!("dpll.propagations");
                        assignment[unit.var] = Some(unit.positive);
                        trail.push(unit.var);
                        changed = true;
                    }
                }
            }
        }
        if !changed {
            break;
        }
    }

    // Pure literal elimination.
    {
        let mut seen_pos = vec![false; f.num_vars];
        let mut seen_neg = vec![false; f.num_vars];
        for c in &f.clauses {
            if c.eval_partial(assignment) == Some(true) {
                continue;
            }
            for l in &c.0 {
                if assignment[l.var].is_none() {
                    if l.positive {
                        seen_pos[l.var] = true;
                    } else {
                        seen_neg[l.var] = true;
                    }
                }
            }
        }
        for v in 0..f.num_vars {
            if assignment[v].is_none() && (seen_pos[v] ^ seen_neg[v]) {
                pkgrec_trace::counter!("dpll.pure_literals");
                assignment[v] = Some(seen_pos[v]);
                trail.push(v);
            }
        }
    }

    // Check state after propagation.
    let mut all_satisfied = true;
    let mut branch: Option<Lit> = None;
    for c in &f.clauses {
        match c.eval_partial(assignment) {
            Some(true) => {}
            Some(false) => {
                pkgrec_trace::counter!("dpll.conflicts");
                for &v in &trail {
                    assignment[v] = None;
                }
                return Ok(false);
            }
            None => {
                all_satisfied = false;
                if branch.is_none() {
                    branch = c
                        .0
                        .iter()
                        .find(|l| assignment[l.var].is_none())
                        .copied();
                }
            }
        }
    }
    if all_satisfied {
        return Ok(true);
    }

    let lit = branch.expect("an unresolved clause has an unassigned literal");
    let mut result = Ok(false);
    for value in [lit.positive, !lit.positive] {
        pkgrec_trace::counter!("dpll.decisions");
        assignment[lit.var] = Some(value);
        match dpll(f, assignment, meter) {
            Ok(true) => return Ok(true),
            Ok(false) => {}
            Err(cut) => {
                result = Err(cut);
                assignment[lit.var] = None;
                break;
            }
        }
        assignment[lit.var] = None;
    }
    for &v in &trail {
        assignment[v] = None;
    }
    result
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::assignments;
    use crate::cnf::Clause;
    use pkgrec_guard::{Budget, Resource};

    #[test]
    fn trivial_cases() {
        // Empty formula: satisfiable.
        assert!(is_satisfiable(&CnfFormula::new(0, Vec::<Clause>::new())));
        // x ∧ ¬x: unsatisfiable.
        let f = CnfFormula::new(
            1,
            vec![Clause::new(vec![Lit::pos(0)]), Clause::new(vec![Lit::neg(0)])],
        );
        assert!(!is_satisfiable(&f));
    }

    #[test]
    fn model_satisfies() {
        let f = CnfFormula::new(
            3,
            vec![
                Clause::new(vec![Lit::pos(0), Lit::neg(1), Lit::pos(2)]),
                Clause::new(vec![Lit::neg(0), Lit::pos(1), Lit::pos(2)]),
                Clause::new(vec![Lit::neg(2)]),
            ],
        );
        let m = find_model(&f).unwrap();
        assert!(f.eval(&m));
    }

    #[test]
    fn pigeonhole_2_into_1_unsat() {
        // Two pigeons, one hole: p0 ∧ p1 ∧ (¬p0 ∨ ¬p1).
        let f = CnfFormula::new(
            2,
            vec![
                Clause::new(vec![Lit::pos(0)]),
                Clause::new(vec![Lit::pos(1)]),
                Clause::new(vec![Lit::neg(0), Lit::neg(1)]),
            ],
        );
        assert!(!is_satisfiable(&f));
    }

    #[test]
    fn agrees_with_brute_force_on_small_formulas() {
        // Exhaustive check against truth tables on structured instances.
        let cases: Vec<CnfFormula> = vec![
            CnfFormula::new(
                4,
                vec![
                    Clause::new(vec![Lit::pos(0), Lit::pos(1)]),
                    Clause::new(vec![Lit::neg(1), Lit::pos(2)]),
                    Clause::new(vec![Lit::neg(2), Lit::neg(3)]),
                    Clause::new(vec![Lit::pos(3), Lit::neg(0)]),
                ],
            ),
            CnfFormula::new(
                3,
                vec![
                    Clause::new(vec![Lit::pos(0), Lit::pos(1), Lit::pos(2)]),
                    Clause::new(vec![Lit::neg(0), Lit::neg(1), Lit::neg(2)]),
                    Clause::new(vec![Lit::pos(0), Lit::neg(1)]),
                    Clause::new(vec![Lit::pos(1), Lit::neg(2)]),
                    Clause::new(vec![Lit::pos(2), Lit::neg(0)]),
                ],
            ),
        ];
        for f in cases {
            let brute = assignments(f.num_vars).any(|a| f.eval(&a));
            assert_eq!(is_satisfiable(&f), brute, "formula {f}");
        }
    }

    /// A hard pigeonhole instance: n+1 pigeons into n holes.
    fn pigeonhole(n: usize) -> CnfFormula {
        let var = |p: usize, h: usize| p * n + h;
        let mut clauses = Vec::new();
        for p in 0..=n {
            clauses.push(Clause::new(
                (0..n).map(|h| Lit::pos(var(p, h))).collect::<Vec<_>>(),
            ));
        }
        for h in 0..n {
            for p1 in 0..=n {
                for p2 in (p1 + 1)..=n {
                    clauses.push(Clause::new(vec![
                        Lit::neg(var(p1, h)),
                        Lit::neg(var(p2, h)),
                    ]));
                }
            }
        }
        CnfFormula::new((n + 1) * n, clauses)
    }

    #[test]
    fn budget_interrupts_hard_instance() {
        let f = pigeonhole(8);
        let meter = Budget::with_steps(50).meter();
        let err = is_satisfiable_budgeted(&f, &meter).unwrap_err();
        assert_eq!(err.resource, Resource::Steps { limit: 50 });
    }

    #[test]
    fn sufficient_budget_equals_unbounded() {
        let f = pigeonhole(3);
        let unbounded = is_satisfiable(&f);
        let generous = Budget::with_steps(1_000_000).meter();
        assert_eq!(
            is_satisfiable_budgeted(&f, &generous).unwrap(),
            unbounded
        );
    }
}
