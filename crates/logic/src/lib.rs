//! # pkgrec-logic — propositional and quantified-Boolean toolkit
//!
//! Every lower bound in the paper is a reduction from a Boolean
//! satisfiability-style problem:
//!
//! | Paper result | Source problem |
//! |---|---|
//! | Lemma 4.4, Thm 7.2/8.1 (data) | 3SAT |
//! | Lemma 4.2, Thm 4.1 | ∃*∀*3DNF (Σp₂) |
//! | Thm 4.5, Thm 5.2 (data) | SAT-UNSAT (DP) |
//! | Thm 5.1 | maximum Σp₂ / MAX-WEIGHT SAT |
//! | Thm 5.2 | ∃*∀*3DNF–∀*∃*3CNF (Dp₂) |
//! | Thm 5.3 | #SAT, #Σ₁SAT, #Π₁SAT |
//! | DATALOGnr/FO membership | Q3SAT (QBF) |
//!
//! To machine-check those reductions we need *direct* solvers for each
//! source problem. This crate implements them from scratch: CNF/DNF
//! formulas, a DPLL SAT solver, an exact model counter, an exact
//! weighted-MaxSAT solver, quantified formulas (Σ₂ forms, full QBF) and
//! the counting variants, plus random instance generators for property
//! tests and benchmarks.

mod cnf;
mod count;
mod dnf;
mod dpll;
pub mod gen;
mod maxsat;
mod qbf;
mod qdimacs;

pub use cnf::{Clause, CnfFormula, Lit};
pub use count::{
    count_models, count_models_budgeted, count_pi1, count_pi1_budgeted, count_sigma1,
    count_sigma1_budgeted,
};
pub use dnf::{Conjunct, DnfFormula};
pub use dpll::{find_model, find_model_budgeted, is_satisfiable, is_satisfiable_budgeted};
pub use maxsat::{max_weight_sat, max_weight_sat_budgeted, MaxWeightSat};
pub use qbf::{MaximumSigma2, Quant, QbfFormula, SatUnsat, Sigma2Dnf};
pub use qdimacs::{parse_qdimacs, QdimacsError};

/// Re-export of the budget/anytime vocabulary shared by every solver
/// layer, so `logic` callers need not depend on `pkgrec-guard` directly.
pub use pkgrec_guard as guard;
pub use pkgrec_guard::{Budget, CancelFlag, Interrupted, Meter, Outcome, Resource};

/// Iterate all truth assignments of `n` variables in ascending
/// lexicographic order of the tuple `(x1, ..., xn)` (variable 0 is the
/// most significant bit, matching the paper's "lexicographical ordering
/// on m-ary binary tuples" in Theorem 5.1).
pub fn assignments(n: usize) -> impl Iterator<Item = Vec<bool>> {
    assert!(n < 63, "assignment space too large to enumerate");
    (0u64..(1u64 << n)).map(move |i| {
        (0..n)
            .map(|bit| (i >> (n - 1 - bit)) & 1 == 1)
            .collect()
    })
}

/// The index of an assignment under the [`assignments`] order.
pub fn assignment_index(assignment: &[bool]) -> u64 {
    assignment
        .iter()
        .fold(0u64, |acc, &b| (acc << 1) | u64::from(b))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn assignment_enumeration_order() {
        let all: Vec<Vec<bool>> = assignments(2).collect();
        assert_eq!(
            all,
            vec![
                vec![false, false],
                vec![false, true],
                vec![true, false],
                vec![true, true]
            ]
        );
    }

    #[test]
    fn assignment_index_roundtrip() {
        for (i, a) in assignments(4).enumerate() {
            assert_eq!(assignment_index(&a), i as u64);
        }
    }

    #[test]
    fn zero_vars_has_one_assignment() {
        assert_eq!(assignments(0).count(), 1);
    }
}
