//! Random instance generators for property tests and benchmarks.

use rand::Rng;

use crate::cnf::{Clause, CnfFormula, Lit};
use crate::dnf::{Conjunct, DnfFormula};
use crate::maxsat::MaxWeightSat;
use crate::qbf::{Quant, QbfFormula, SatUnsat, Sigma2Dnf};

/// Pick a random literal over `num_vars` variables.
fn random_lit(rng: &mut impl Rng, num_vars: usize) -> Lit {
    Lit {
        var: rng.gen_range(0..num_vars),
        positive: rng.gen(),
    }
}

/// Three literals over distinct variables (when possible), for 3CNF/3DNF
/// shapes.
fn three_lits(rng: &mut impl Rng, num_vars: usize) -> Vec<Lit> {
    let mut lits: Vec<Lit> = Vec::with_capacity(3);
    let mut attempts = 0;
    while lits.len() < 3 {
        let l = random_lit(rng, num_vars);
        attempts += 1;
        if attempts > 100 || lits.iter().all(|m| m.var != l.var) {
            lits.push(l);
        }
    }
    lits
}

/// A random 3CNF formula.
pub fn random_3cnf(rng: &mut impl Rng, num_vars: usize, num_clauses: usize) -> CnfFormula {
    assert!(num_vars >= 1);
    CnfFormula::new(
        num_vars,
        (0..num_clauses)
            .map(|_| Clause::new(three_lits(rng, num_vars)))
            .collect::<Vec<_>>(),
    )
}

/// A random 3DNF formula.
pub fn random_3dnf(rng: &mut impl Rng, num_vars: usize, num_conjuncts: usize) -> DnfFormula {
    assert!(num_vars >= 1);
    DnfFormula::new(
        num_vars,
        (0..num_conjuncts)
            .map(|_| Conjunct::new(three_lits(rng, num_vars)))
            .collect::<Vec<_>>(),
    )
}

/// A random ∃X∀Y 3DNF instance.
pub fn random_sigma2(
    rng: &mut impl Rng,
    x_vars: usize,
    y_vars: usize,
    num_conjuncts: usize,
) -> Sigma2Dnf {
    Sigma2Dnf::new(x_vars, random_3dnf(rng, x_vars + y_vars, num_conjuncts))
}

/// A random SAT-UNSAT pair (uniform over both components — roughly a
/// quarter of draws are yes-instances at the right clause density).
pub fn random_sat_unsat(
    rng: &mut impl Rng,
    num_vars: usize,
    num_clauses: usize,
) -> SatUnsat {
    SatUnsat::new(
        random_3cnf(rng, num_vars, num_clauses),
        random_3cnf(rng, num_vars, num_clauses),
    )
}

/// A random MAX-WEIGHT SAT instance with weights in `1..=max_weight`.
pub fn random_max_weight_sat(
    rng: &mut impl Rng,
    num_vars: usize,
    num_clauses: usize,
    max_weight: u64,
) -> MaxWeightSat {
    let f = random_3cnf(rng, num_vars, num_clauses);
    let weights: Vec<u64> = (0..num_clauses)
        .map(|_| rng.gen_range(1..=max_weight))
        .collect();
    MaxWeightSat::new(f, weights)
}

/// Make any CNF unsatisfiable by appending the contradictory pair
/// `(x0 ∨ x0 ∨ x0) ∧ (¬x0 ∨ ¬x0 ∨ ¬x0)` — used to build guaranteed
/// no-instances in mixed samples.
pub fn force_unsat(phi: &CnfFormula) -> CnfFormula {
    assert!(phi.num_vars >= 1);
    let mut clauses = phi.clauses.clone();
    clauses.push(Clause::new(vec![Lit::pos(0); 3]));
    clauses.push(Clause::new(vec![Lit::neg(0); 3]));
    CnfFormula::new(phi.num_vars, clauses)
}

/// Make any ∃X∀Y 3DNF sentence true by appending the conjunct
/// `(x0 ∧ x0 ∧ x0)` — any X assignment with `x0 = 1` then satisfies ψ
/// for every Y. Used to build guaranteed yes-instances in mixed
/// samples.
pub fn force_true_sigma2(phi: &Sigma2Dnf) -> Sigma2Dnf {
    assert!(phi.x_vars >= 1);
    let mut conjuncts = phi.matrix.conjuncts.clone();
    conjuncts.push(crate::dnf::Conjunct::new(vec![Lit::pos(0); 3]));
    Sigma2Dnf::new(
        phi.x_vars,
        DnfFormula::new(phi.matrix.num_vars, conjuncts),
    )
}

/// A random QBF (Q3SAT) instance with a uniform quantifier prefix.
pub fn random_qbf(rng: &mut impl Rng, num_vars: usize, num_clauses: usize) -> QbfFormula {
    let quants: Vec<Quant> = (0..num_vars)
        .map(|_| {
            if rng.gen() {
                Quant::Exists
            } else {
                Quant::Forall
            }
        })
        .collect();
    QbfFormula::new(quants, random_3cnf(rng, num_vars, num_clauses))
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn generated_shapes_are_well_formed() {
        let mut rng = StdRng::seed_from_u64(7);
        let cnf = random_3cnf(&mut rng, 6, 10);
        assert!(cnf.is_3cnf());
        assert_eq!(cnf.clauses.len(), 10);

        let dnf = random_3dnf(&mut rng, 6, 10);
        assert!(dnf.is_3dnf());

        let s2 = random_sigma2(&mut rng, 3, 3, 5);
        assert_eq!(s2.x_vars, 3);
        assert_eq!(s2.y_vars(), 3);

        let mws = random_max_weight_sat(&mut rng, 5, 8, 10);
        assert_eq!(mws.weights.len(), 8);
        assert!(mws.weights.iter().all(|&w| (1..=10).contains(&w)));

        let qbf = random_qbf(&mut rng, 5, 6);
        assert_eq!(qbf.quants.len(), 5);
    }

    #[test]
    fn deterministic_under_seed() {
        let a = random_3cnf(&mut StdRng::seed_from_u64(42), 5, 5);
        let b = random_3cnf(&mut StdRng::seed_from_u64(42), 5, 5);
        assert_eq!(a, b);
    }
}
