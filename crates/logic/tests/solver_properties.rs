//! Property tests pitting every solver in the crate against a
//! brute-force truth-table reference on random formulas. These are the
//! ground truth the reduction checks rely on, so they get the heaviest
//! scrutiny.

use proptest::prelude::*;

use pkgrec_logic::{
    assignments, count_models, count_pi1, count_sigma1, find_model, gen, is_satisfiable,
    max_weight_sat, Clause, CnfFormula, Conjunct, DnfFormula, Lit, MaximumSigma2, MaxWeightSat,
    QbfFormula, Quant, Sigma2Dnf,
};

fn lit_strategy(num_vars: usize) -> impl Strategy<Value = Lit> {
    (0..num_vars, any::<bool>()).prop_map(|(var, positive)| Lit { var, positive })
}

fn cnf_strategy(num_vars: usize) -> impl Strategy<Value = CnfFormula> {
    prop::collection::vec(prop::collection::vec(lit_strategy(num_vars), 1..4), 0..8)
        .prop_map(move |clauses| {
            CnfFormula::new(num_vars, clauses.into_iter().map(Clause::new).collect::<Vec<_>>())
        })
}

fn dnf_strategy(num_vars: usize) -> impl Strategy<Value = DnfFormula> {
    prop::collection::vec(prop::collection::vec(lit_strategy(num_vars), 1..4), 0..6)
        .prop_map(move |cs| {
            DnfFormula::new(num_vars, cs.into_iter().map(Conjunct::new).collect::<Vec<_>>())
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn dpll_agrees_with_truth_tables(f in cnf_strategy(5)) {
        let brute = assignments(5).any(|a| f.eval(&a));
        prop_assert_eq!(is_satisfiable(&f), brute, "formula {}", f);
        if let Some(m) = find_model(&f) {
            prop_assert!(f.eval(&m), "returned model must satisfy {}", f);
        }
    }

    #[test]
    fn counter_agrees_with_truth_tables(f in cnf_strategy(5)) {
        let brute = assignments(5).filter(|a| f.eval(a)).count() as u128;
        prop_assert_eq!(count_models(&f), brute, "formula {}", f);
    }

    #[test]
    fn maxsat_agrees_with_truth_tables(f in cnf_strategy(4), weights in prop::collection::vec(1u64..9, 0..8)) {
        // Align weight count with clause count.
        let mut w = weights;
        w.resize(f.clauses.len(), 1);
        let inst = MaxWeightSat::new(f, w);
        let (best, assignment) = max_weight_sat(&inst);
        let brute = assignments(4).map(|a| inst.weight_of(&a)).max().unwrap_or(0);
        prop_assert_eq!(best, brute);
        prop_assert_eq!(inst.weight_of(&assignment), best);
    }

    #[test]
    fn sigma2_agrees_with_truth_tables(matrix in dnf_strategy(5), x in 1usize..4) {
        let phi = Sigma2Dnf::new(x, matrix);
        let y = phi.y_vars();
        let brute = assignments(x).any(|mx| {
            assignments(y).all(|my| {
                let full: Vec<bool> = mx.iter().chain(my.iter()).copied().collect();
                phi.matrix.eval(&full)
            })
        });
        prop_assert_eq!(phi.is_true(), brute, "∃X∀Y {}", phi.matrix);
    }

    #[test]
    fn maximum_sigma2_is_the_lexicographic_maximum(matrix in dnf_strategy(4), x in 1usize..4) {
        let phi = Sigma2Dnf::new(x, matrix);
        let answer = MaximumSigma2(phi.clone()).last_satisfying_x();
        let brute: Option<Vec<bool>> = assignments(x)
            .filter(|mx| phi.forall_y_holds(mx))
            .last(); // ascending order ⇒ last = lexicographic maximum
        prop_assert_eq!(answer, brute);
    }

    #[test]
    fn qbf_agrees_with_truth_tables(
        matrix in cnf_strategy(4),
        quants in prop::collection::vec(prop_oneof![Just(Quant::Exists), Just(Quant::Forall)], 4)
    ) {
        let qbf = QbfFormula::new(quants.clone(), matrix.clone());
        fn brute(quants: &[Quant], matrix: &CnfFormula, partial: &mut Vec<bool>) -> bool {
            if partial.len() == quants.len() {
                return matrix.eval(partial);
            }
            let results: Vec<bool> = [false, true]
                .iter()
                .map(|&v| {
                    partial.push(v);
                    let r = brute(quants, matrix, partial);
                    partial.pop();
                    r
                })
                .collect();
            match quants[partial.len()] {
                Quant::Exists => results.iter().any(|&r| r),
                Quant::Forall => results.iter().all(|&r| r),
            }
        }
        prop_assert_eq!(qbf.is_true(), brute(&quants, &matrix, &mut Vec::new()));
    }

    #[test]
    fn qbf_free_prefix_count_agrees(matrix in cnf_strategy(4), free in 1usize..4) {
        let quants = vec![Quant::Exists; 4]; // leading block ignored anyway
        let qbf = QbfFormula::new(quants, matrix);
        let brute = assignments(free)
            .filter(|x| {
                // Pin the free block; quantify the rest existentially.
                assignments(4 - free).any(|rest| {
                    let full: Vec<bool> = x.iter().chain(rest.iter()).copied().collect();
                    qbf.matrix.eval(&full)
                })
            })
            .count() as u128;
        prop_assert_eq!(qbf.count_free_prefix(free), brute);
    }

    #[test]
    fn sigma1_and_pi1_counters_agree_with_truth_tables(
        cnf in cnf_strategy(4),
        dnf in dnf_strategy(4),
        x in 1usize..4
    ) {
        let y = 4 - x;
        let brute_sigma = assignments(y)
            .filter(|my| {
                assignments(x).any(|mx| {
                    let full: Vec<bool> = mx.iter().chain(my.iter()).copied().collect();
                    cnf.eval(&full)
                })
            })
            .count() as u128;
        prop_assert_eq!(count_sigma1(&cnf, x), brute_sigma, "matrix {}", cnf);

        let brute_pi = assignments(y)
            .filter(|my| {
                assignments(x).all(|mx| {
                    let full: Vec<bool> = mx.iter().chain(my.iter()).copied().collect();
                    dnf.eval(&full)
                })
            })
            .count() as u128;
        prop_assert_eq!(count_pi1(&dnf, x), brute_pi, "matrix {}", dnf);
    }

    #[test]
    fn forcing_helpers_do_what_they_say(f in cnf_strategy(4), matrix in dnf_strategy(4), x in 1usize..4) {
        prop_assert!(!is_satisfiable(&gen::force_unsat(&f)));
        let phi = Sigma2Dnf::new(x, matrix);
        prop_assert!(gen::force_true_sigma2(&phi).is_true());
    }

    #[test]
    fn restriction_commutes_with_evaluation(f in cnf_strategy(5), prefix in prop::collection::vec(any::<bool>(), 2)) {
        match f.restrict_prefix(&prefix) {
            None => {
                // Some clause is already falsified: no extension satisfies f.
                let unsat_under_prefix = assignments(3).all(|rest| {
                    let full: Vec<bool> = prefix.iter().chain(rest.iter()).copied().collect();
                    !f.eval(&full)
                });
                prop_assert!(unsat_under_prefix);
            }
            Some(rest_f) => {
                for rest in assignments(3) {
                    let full: Vec<bool> = prefix.iter().chain(rest.iter()).copied().collect();
                    prop_assert_eq!(f.eval(&full), rest_f.eval(&rest));
                }
            }
        }
    }
}
