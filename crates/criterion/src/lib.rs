//! A self-contained subset of the `criterion` API, vendored so the
//! workspace's `harness = false` bench targets build and run without
//! network access. It keeps the bench *structure* (groups, parameterized
//! inputs, `b.iter(..)`) and prints simple best-of-N wall-clock timings
//! instead of criterion's full statistical analysis.

use std::fmt;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Top-level handle mirroring `criterion::Criterion`.
#[derive(Debug, Clone)]
pub struct Criterion {
    sample_size: usize,
    warm_up_time: Duration,
    measurement_time: Duration,
}

impl Default for Criterion {
    fn default() -> Criterion {
        Criterion {
            sample_size: 10,
            warm_up_time: Duration::from_millis(100),
            measurement_time: Duration::from_millis(500),
        }
    }
}

impl Criterion {
    pub fn sample_size(mut self, n: usize) -> Criterion {
        self.sample_size = n.max(1);
        self
    }

    pub fn warm_up_time(mut self, d: Duration) -> Criterion {
        self.warm_up_time = d;
        self
    }

    pub fn measurement_time(mut self, d: Duration) -> Criterion {
        self.measurement_time = d;
        self
    }

    pub fn configure_from_args(self) -> Criterion {
        self
    }

    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
        }
    }

    /// Hook point mirroring `Criterion::final_summary`; a no-op here.
    pub fn final_summary(&self) {}
}

/// Identifier for one parameterized bench case.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    pub fn new(function: impl Into<String>, parameter: impl fmt::Display) -> BenchmarkId {
        BenchmarkId {
            id: format!("{}/{}", function.into(), parameter),
        }
    }

    pub fn from_parameter(parameter: impl fmt::Display) -> BenchmarkId {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.id)
    }
}

/// A named group of related benches.
pub struct BenchmarkGroup<'a> {
    criterion: &'a Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    pub fn bench_function<F>(&mut self, id: impl fmt::Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher {
            config: self.criterion.clone(),
            best: Duration::MAX,
            iters: 0,
        };
        f(&mut b);
        b.report(&self.name, &id.to_string());
        self
    }

    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let mut b = Bencher {
            config: self.criterion.clone(),
            best: Duration::MAX,
            iters: 0,
        };
        f(&mut b, input);
        b.report(&self.name, &id.to_string());
        self
    }

    pub fn finish(self) {}
}

/// Timing driver handed to bench closures.
pub struct Bencher {
    config: Criterion,
    best: Duration,
    iters: u64,
}

impl Bencher {
    /// Run the routine repeatedly: a warm-up pass, then samples until
    /// the configured measurement time (or sample count) is spent,
    /// keeping the best observed iteration time.
    pub fn iter<R>(&mut self, mut routine: impl FnMut() -> R) {
        let warm_up_end = Instant::now() + self.config.warm_up_time;
        while Instant::now() < warm_up_end {
            black_box(routine());
        }
        let measure_end = Instant::now() + self.config.measurement_time;
        for _ in 0..self.config.sample_size.max(1) {
            let start = Instant::now();
            black_box(routine());
            let elapsed = start.elapsed();
            self.iters += 1;
            if elapsed < self.best {
                self.best = elapsed;
            }
            if Instant::now() >= measure_end {
                break;
            }
        }
    }

    fn report(&self, group: &str, id: &str) {
        if self.iters == 0 {
            println!("{group}/{id}: no samples");
        } else {
            println!("{group}/{id}: best {:?} over {} samples", self.best, self.iters);
        }
    }
}

/// Mirror of `criterion_group!`: both the simple and the configured
/// form produce a function that runs every target.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $($target(&mut criterion);)+
            criterion.final_summary();
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group! {
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        }
    };
}

/// Mirror of `criterion_main!`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn target(c: &mut Criterion) {
        let mut g = c.benchmark_group("demo");
        for n in [1u64, 2] {
            g.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
                b.iter(|| (0..n * 100).sum::<u64>())
            });
        }
        g.bench_function("fixed", |b| b.iter(|| black_box(3) + 4));
        g.finish();
    }

    criterion_group! {
        name = benches;
        config = Criterion::default()
            .sample_size(3)
            .warm_up_time(std::time::Duration::from_millis(1))
            .measurement_time(std::time::Duration::from_millis(5));
        targets = target
    }

    #[test]
    fn group_macro_runs() {
        benches();
    }
}
