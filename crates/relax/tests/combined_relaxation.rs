//! Integration tests for relaxations that mix all three parameter
//! kinds of Section 7.1 — atom constants (`E`), equality-builtin
//! constants (also `E`), and join occurrences (`X`) — in one spec.

use pkgrec_core::{Ext, PackageFn, RecInstance, SolveOptions};
use pkgrec_data::{tuple, AttrType, Database, Relation, RelationSchema};
use pkgrec_query::{
    AbsDiff, Builtin, ConjunctiveQuery, MetricSet, Query, RelAtom, TableMetric, Term,
};
use pkgrec_relax::{
    apply_relaxation, candidate_levels, qrpp, BuiltinRelaxParam, Level, QrppInstance,
    Relaxation, RelaxParam, RelaxSpec,
};

/// store(city, day, stock_key); stock(key, qty).
fn db() -> Database {
    let mut db = Database::new();
    let store = RelationSchema::new(
        "store",
        [
            ("city", AttrType::Str),
            ("day", AttrType::Int),
            ("key", AttrType::Int),
        ],
    )
    .unwrap();
    let stock =
        RelationSchema::new("stock", [("key", AttrType::Int), ("qty", AttrType::Int)]).unwrap();
    db.add_relation(
        Relation::from_tuples(
            store,
            [
                tuple!["ewr", 3, 10], // near nyc, wrong day, offset stock key
                tuple!["nyc", 1, 50], // right city & day, but key 50 is far from any stock
            ],
        )
        .unwrap(),
    )
    .unwrap();
    db.add_relation(Relation::from_tuples(stock, [tuple![12, 5]]).unwrap())
        .unwrap();
    db
}

fn metrics() -> MetricSet {
    MetricSet::new()
        .with("city", TableMetric::new().with("nyc", "ewr", 9))
        .with("num", AbsDiff)
}

/// Q(c, q) :- store(c, d, k), stock(k, q), d = 1, c = "nyc"
/// — with the base data this finds nothing; it takes relaxing the city
/// (atom constant), the day (builtin constant) and the stock join
/// simultaneously to surface the ewr row.
fn query() -> Query {
    Query::Cq(ConjunctiveQuery::new(
        vec![Term::v("c"), Term::v("q")],
        vec![
            RelAtom::new("store", vec![Term::v("c"), Term::v("d"), Term::v("k")]),
            RelAtom::new("stock", vec![Term::v("k"), Term::v("q")]),
        ],
        vec![
            Builtin::eq(Term::v("d"), Term::c(1)),
            Builtin::eq(Term::v("c"), Term::c("nyc")),
        ],
    ))
}

fn spec() -> RelaxSpec {
    RelaxSpec {
        constants: vec![],
        builtin_constants: vec![
            BuiltinRelaxParam::new(0, "num"),  // d = 1
            BuiltinRelaxParam::new(1, "city"), // c = "nyc"
        ],
        joins: vec![RelaxParam::new(1, 0, "num")], // the stock-key join
    }
}

fn instance(gap_budget: i64) -> QrppInstance {
    let base = RecInstance::new(db(), query())
        .with_budget(1.0)
        .with_val(PackageFn::constant(Ext::Finite(1.0)))
        .with_metrics(metrics());
    QrppInstance {
        base,
        spec: spec(),
        rating_bound: Ext::Finite(1.0),
        gap_budget,
    }
}

#[test]
fn all_three_kinds_relax_together() {
    // Needed: city gap 9 (nyc→ewr), day gap 2 (1→3), join gap 2 (10→12)
    // — total 13.
    let w = qrpp(&instance(13), &SolveOptions::default())
        .unwrap()
        .expect("13 suffices");
    assert_eq!(w.gap, 13);
    assert_eq!(w.relaxation.builtin_levels.len(), 2);
    assert_eq!(w.relaxation.join_levels, vec![Level::DistLe(2)]);

    // One unit less and no relaxation works.
    assert!(qrpp(&instance(12), &SolveOptions::default())
        .unwrap()
        .is_none());
}

#[test]
fn relaxed_query_shape() {
    let relaxation = Relaxation {
        const_levels: vec![],
        builtin_levels: vec![Level::DistLe(2), Level::DistLe(9)],
        join_levels: vec![Level::DistLe(2)],
    };
    let relaxed = apply_relaxation(&query(), &spec(), &relaxation).unwrap();
    let text = relaxed.to_string();
    assert!(text.contains("dist_num(d, 1) <= 2"), "{text}");
    assert!(text.contains("dist_city(c, \"nyc\") <= 9"), "{text}");
    assert!(text.contains("dist_num(__u0, k) <= 2"), "{text}");
    // And it finds the ewr row.
    let ans = relaxed.eval_with_metrics(&db(), &metrics()).unwrap();
    assert!(ans.contains(&tuple!["ewr", 5]));
}

#[test]
fn candidate_levels_stay_within_budget() {
    let levels = candidate_levels(&db(), &query(), &spec(), &metrics(), 5).unwrap();
    for group in levels
        .constants
        .iter()
        .chain(levels.builtins.iter())
        .chain(levels.joins.iter())
    {
        for l in group {
            assert!(l.gap() <= 5, "level {l:?} exceeds the gap budget");
        }
        assert_eq!(group[0], Level::Keep, "Keep is always the first option");
    }
}

#[test]
fn unknown_metric_is_an_error() {
    let bad = RelaxSpec {
        constants: vec![],
        builtin_constants: vec![BuiltinRelaxParam::new(0, "nope")],
        joins: vec![],
    };
    let r = candidate_levels(&db(), &query(), &bad, &metrics(), 5);
    assert!(r.is_err());
}

#[test]
fn step_budget_propagates_through_qrpp() {
    // QRPP is a strict decision problem: an exhausted budget cannot
    // certify "no relaxation works", so it surfaces as an error naming
    // the spent resource.
    let r = qrpp(&instance(13), &SolveOptions::limited(1));
    match r {
        Err(pkgrec_core::CoreError::SearchLimitExceeded { interrupted }) => {
            assert_eq!(
                interrupted.resource,
                pkgrec_core::Resource::Steps { limit: 1 }
            );
        }
        other => panic!("expected a budget error, got {other:?}"),
    }
}
