//! # pkgrec-relax — query relaxation recommendations (Section 7)
//!
//! When a selection query `Q` finds no sensible packages, the paper
//! proposes recommending a *relaxed* query `QΓ`: designated constants
//! are replaced by variables bounded in distance from the original
//! value, and designated join occurrences are split into fresh
//! variables likewise bounded (Section 7.1, following Chaudhuri's query
//! generalization rules). Each replacement carries a *level*
//! `gap(γ) ∈ {0 (kept), d (dist ≤ d)}`, and `gap(QΓ)` is the sum.
//!
//! **QRPP** (Section 7.2) asks: does a relaxation `QΓ` of `Q` with
//! `gap(QΓ) ≤ g` exist such that `k` distinct valid packages exist for
//! `(QΓ, D, Qc, cost(), val(), C, B)`?
//!
//! The solver enumerates relaxations only up to *D-equivalence* —
//! distance thresholds realized by active-domain value pairs — exactly
//! as the Theorem 7.2 upper-bound algorithm does, and reuses the
//! pkgrec-core validity machinery for the package-existence check.

use std::collections::BTreeSet;

use pkgrec_core::{CoreError, RecInstance, SolveOptions};
use pkgrec_data::Value;
use pkgrec_query::{Builtin, Query, RelAtom, Term};

/// Result alias (errors come from the core layer).
pub type Result<T> = std::result::Result<T, CoreError>;

/// A relaxable parameter of a query: either a constant occurrence (the
/// set `E` of Section 7.1) or a repeated-variable occurrence (the set
/// `X`). Atoms are indexed in the query's canonical visit order
/// ([`Query::visit_atoms`]); `position` is the argument position within
/// the atom.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RelaxParam {
    /// Index of the atom in visit order.
    pub atom: usize,
    /// Argument position within the atom.
    pub position: usize,
    /// Name of the distance function in Γ governing this parameter's
    /// attribute domain.
    pub metric: String,
}

impl RelaxParam {
    /// Build a parameter.
    pub fn new(atom: usize, position: usize, metric: impl AsRef<str>) -> RelaxParam {
        RelaxParam {
            atom,
            position,
            metric: metric.as_ref().to_string(),
        }
    }
}

/// A relaxable constant occurring in a comparison builtin `t = c`
/// (either side constant): relaxing it turns the equality into
/// `dist(t, c) ≤ d`, exactly the `ψw` predicates of Section 7.1.
/// Builtins are indexed in the query's canonical visit order
/// ([`Query::visit_builtins`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BuiltinRelaxParam {
    /// Index of the builtin in visit order; it must be an equality with
    /// exactly one constant side.
    pub builtin: usize,
    /// Name of the governing distance function in Γ.
    pub metric: String,
}

impl BuiltinRelaxParam {
    /// Build a parameter.
    pub fn new(builtin: usize, metric: impl AsRef<str>) -> BuiltinRelaxParam {
        BuiltinRelaxParam {
            builtin,
            metric: metric.as_ref().to_string(),
        }
    }
}

/// The relaxation specification: which parts of `Q` may be modified.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RelaxSpec {
    /// Constant occurrences in relation atoms that may be widened
    /// (part of `E`).
    pub constants: Vec<RelaxParam>,
    /// Constants in equality builtins that may be widened (the rest of
    /// `E`).
    pub builtin_constants: Vec<BuiltinRelaxParam>,
    /// Join occurrences that may be split (`X`). The occurrence listed
    /// here is replaced by a fresh variable; the variable's other
    /// occurrences keep their name.
    pub joins: Vec<RelaxParam>,
}

impl RelaxSpec {
    /// Total number of relaxable parameters.
    pub fn len(&self) -> usize {
        self.constants.len() + self.builtin_constants.len() + self.joins.len()
    }

    /// Whether the spec is empty (no relaxation possible).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// The relaxation level of one parameter (the predicate γ of
/// Section 7.1 and its `gap(γ)`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Level {
    /// Keep the original constant / join (`wc = c`), gap 0.
    Keep,
    /// Replace by a fresh variable `w` with `dist(w, orig) ≤ d`,
    /// gap `d`.
    DistLe(i64),
}

impl Level {
    /// The level's contribution to `gap(QΓ)`.
    pub fn gap(self) -> i64 {
        match self {
            Level::Keep => 0,
            Level::DistLe(d) => d,
        }
    }
}

/// A concrete relaxation: one level per spec parameter (constants
/// first, joins second, in spec order).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Relaxation {
    /// Levels for `spec.constants`.
    pub const_levels: Vec<Level>,
    /// Levels for `spec.builtin_constants`.
    pub builtin_levels: Vec<Level>,
    /// Levels for `spec.joins`.
    pub join_levels: Vec<Level>,
}

impl Relaxation {
    /// The identity relaxation (all parameters kept).
    pub fn identity(spec: &RelaxSpec) -> Relaxation {
        Relaxation {
            const_levels: vec![Level::Keep; spec.constants.len()],
            builtin_levels: vec![Level::Keep; spec.builtin_constants.len()],
            join_levels: vec![Level::Keep; spec.joins.len()],
        }
    }

    /// `gap(QΓ)`: the sum of all levels.
    pub fn gap(&self) -> i64 {
        self.const_levels
            .iter()
            .chain(&self.builtin_levels)
            .chain(&self.join_levels)
            .map(|l| l.gap())
            .sum()
    }
}

/// Apply a relaxation to a query, producing `QΓ`.
///
/// Fresh variables are named `__w{i}` (constants) and `__u{i}` (joins);
/// the original query must not use these names. Kept parameters leave
/// the query unchanged (`wc = c` simplified away).
pub fn apply_relaxation(query: &Query, spec: &RelaxSpec, relax: &Relaxation) -> Result<Query> {
    if relax.const_levels.len() != spec.constants.len()
        || relax.builtin_levels.len() != spec.builtin_constants.len()
        || relax.join_levels.len() != spec.joins.len()
    {
        return Err(CoreError::Invalid(
            "relaxation levels do not match the spec".into(),
        ));
    }
    let mut out = query.clone();
    let mut new_builtins: Vec<Builtin> = Vec::new();

    // Collect the rewrites first, then apply them in a single pass.
    struct Rewrite {
        atom: usize,
        position: usize,
        fresh: String,
        metric: String,
        bound: i64,
        expect_const: bool,
    }
    let mut rewrites: Vec<Rewrite> = Vec::new();
    for (i, (param, level)) in spec.constants.iter().zip(&relax.const_levels).enumerate() {
        if let Level::DistLe(d) = level {
            rewrites.push(Rewrite {
                atom: param.atom,
                position: param.position,
                fresh: format!("__w{i}"),
                metric: param.metric.clone(),
                bound: *d,
                expect_const: true,
            });
        }
    }
    for (i, (param, level)) in spec.joins.iter().zip(&relax.join_levels).enumerate() {
        if let Level::DistLe(d) = level {
            rewrites.push(Rewrite {
                atom: param.atom,
                position: param.position,
                fresh: format!("__u{i}"),
                metric: param.metric.clone(),
                bound: *d,
                expect_const: false,
            });
        }
    }

    let mut atom_index = 0usize;
    let mut error: Option<CoreError> = None;
    out.visit_atoms_mut(&mut |a: &mut RelAtom| {
        for rw in rewrites.iter().filter(|r| r.atom == atom_index) {
            let Some(term) = a.terms.get_mut(rw.position) else {
                error = Some(CoreError::Invalid(format!(
                    "relax position {} out of range for atom {}",
                    rw.position, atom_index
                )));
                continue;
            };
            let original = term.clone();
            match (&original, rw.expect_const) {
                (Term::Const(_), true) | (Term::Var(_), false) => {}
                _ => {
                    error = Some(CoreError::Invalid(format!(
                        "relax parameter at atom {} position {} does not match the term kind",
                        atom_index, rw.position
                    )));
                    continue;
                }
            }
            *term = Term::v(&rw.fresh);
            new_builtins.push(Builtin::dist_le(
                &rw.metric,
                Term::v(&rw.fresh),
                original,
                rw.bound,
            ));
        }
        atom_index += 1;
    });
    if let Some(e) = error {
        return Err(e);
    }

    // Builtin-constant relaxation: `t = c` becomes `dist(t, c) ≤ d`.
    let mut builtin_index = 0usize;
    out.visit_builtins_mut(&mut |b: &mut Builtin| {
        for (param, level) in spec.builtin_constants.iter().zip(&relax.builtin_levels) {
            if param.builtin != builtin_index {
                continue;
            }
            let Level::DistLe(d) = level else { continue };
            match b {
                Builtin::Cmp(c) if c.op == pkgrec_query::CmpOp::Eq => {
                    let (var_side, const_side) = match (&c.left, &c.right) {
                        (l @ Term::Var(_), r @ Term::Const(_)) => (l.clone(), r.clone()),
                        (l @ Term::Const(_), r @ Term::Var(_)) => (r.clone(), l.clone()),
                        _ => {
                            error = Some(CoreError::Invalid(format!(
                                "builtin relax parameter {builtin_index} needs one variable and one constant"
                            )));
                            continue;
                        }
                    };
                    *b = Builtin::dist_le(&param.metric, var_side, const_side, *d);
                }
                _ => {
                    error = Some(CoreError::Invalid(format!(
                        "builtin relax parameter {builtin_index} is not an equality comparison"
                    )));
                }
            }
        }
        builtin_index += 1;
    });
    if let Some(e) = error {
        return Err(e);
    }
    out.add_builtins(new_builtins);
    Ok(out)
}

/// Candidate distance thresholds for each parameter, up to
/// D-equivalence: only distances realized between the parameter's
/// original value(s) and values in the relevant relation column can
/// change `QΓ(D)`, so only those (plus `Keep`) need enumerating
/// (Theorem 7.2 upper-bound argument).
/// Candidate level sets per parameter group, aligned with the spec.
#[derive(Debug, Clone, Default)]
pub struct CandidateLevels {
    /// Per `spec.constants` parameter.
    pub constants: Vec<Vec<Level>>,
    /// Per `spec.builtin_constants` parameter.
    pub builtins: Vec<Vec<Level>>,
    /// Per `spec.joins` parameter.
    pub joins: Vec<Vec<Level>>,
}

pub fn candidate_levels(
    db: &pkgrec_data::Database,
    query: &Query,
    spec: &RelaxSpec,
    metrics: &pkgrec_query::MetricSet,
    gap_budget: i64,
) -> Result<CandidateLevels> {
    // Snapshot the atoms in visit order.
    let mut atoms: Vec<RelAtom> = Vec::new();
    query.visit_atoms(&mut |a| atoms.push(a.clone()));

    let column_values = |atom: usize, position: usize| -> Result<BTreeSet<Value>> {
        let a = atoms.get(atom).ok_or_else(|| {
            CoreError::Invalid(format!("relax atom index {atom} out of range"))
        })?;
        if position >= a.terms.len() {
            return Err(CoreError::Invalid(format!(
                "relax position {position} out of range for atom {atom}"
            )));
        }
        // IDB atoms (Datalog) have no stored column; fall back to the
        // whole active domain.
        match db.relation(&a.relation) {
            Some(r) => Ok(r.column_values(position)),
            None => Ok(db.active_domain().iter().cloned().collect()),
        }
    };

    let levels_for = |param: &RelaxParam, origin: &BTreeSet<Value>| -> Result<Vec<Level>> {
        let metric = metrics
            .get(&param.metric)
            .ok_or_else(|| CoreError::Invalid(format!("unknown metric `{}`", param.metric)))?;
        let targets = column_values(param.atom, param.position)?;
        let mut ds: BTreeSet<i64> = BTreeSet::new();
        for o in origin {
            for t in &targets {
                if let Some(d) = metric.distance(t, o) {
                    if d > 0 && d <= gap_budget {
                        ds.insert(d);
                    }
                }
            }
        }
        let mut levels = vec![Level::Keep];
        levels.extend(ds.into_iter().map(Level::DistLe));
        Ok(levels)
    };

    let mut const_levels = Vec::with_capacity(spec.constants.len());
    for p in &spec.constants {
        let a = atoms.get(p.atom).ok_or_else(|| {
            CoreError::Invalid(format!("relax atom index {} out of range", p.atom))
        })?;
        let origin: BTreeSet<Value> = match a.terms.get(p.position) {
            Some(Term::Const(c)) => [c.clone()].into(),
            _ => {
                return Err(CoreError::Invalid(format!(
                    "constant relax parameter at atom {} position {} is not a constant",
                    p.atom, p.position
                )))
            }
        };
        const_levels.push(levels_for(p, &origin)?);
    }
    let mut join_levels = Vec::with_capacity(spec.joins.len());
    for p in &spec.joins {
        // The "origin" of a join parameter is the set of values the
        // variable's *other* occurrences can take: the columns where the
        // same variable appears elsewhere in the query.
        let a = atoms.get(p.atom).ok_or_else(|| {
            CoreError::Invalid(format!("relax atom index {} out of range", p.atom))
        })?;
        let var = match a.terms.get(p.position) {
            Some(Term::Var(v)) => v.clone(),
            _ => {
                return Err(CoreError::Invalid(format!(
                    "join relax parameter at atom {} position {} is not a variable",
                    p.atom, p.position
                )))
            }
        };
        let mut origin: BTreeSet<Value> = BTreeSet::new();
        for (ai, atom) in atoms.iter().enumerate() {
            for (pos, t) in atom.terms.iter().enumerate() {
                if (ai, pos) != (p.atom, p.position) && t.as_var() == Some(&var) {
                    origin.extend(column_values(ai, pos)?);
                }
            }
        }
        join_levels.push(levels_for(p, &origin)?);
    }

    // Builtin constants: the variable side ranges over the active
    // domain, so candidate distances are those from the constant to any
    // active-domain value (plus query constants would add nothing new
    // beyond distance 0).
    let adom: BTreeSet<Value> = db.active_domain().iter().cloned().collect();
    let mut builtins_snapshot: Vec<pkgrec_query::Builtin> = Vec::new();
    query.visit_builtins(&mut |b| builtins_snapshot.push(b.clone()));
    let mut builtin_levels = Vec::with_capacity(spec.builtin_constants.len());
    for p in &spec.builtin_constants {
        let b = builtins_snapshot.get(p.builtin).ok_or_else(|| {
            CoreError::Invalid(format!("builtin relax index {} out of range", p.builtin))
        })?;
        let Builtin::Cmp(c) = b else {
            return Err(CoreError::Invalid(format!(
                "builtin relax parameter {} is not a comparison",
                p.builtin
            )));
        };
        let origin_value = match (&c.left, &c.right) {
            (Term::Const(v), Term::Var(_)) | (Term::Var(_), Term::Const(v)) => v.clone(),
            _ => {
                return Err(CoreError::Invalid(format!(
                    "builtin relax parameter {} needs one variable and one constant",
                    p.builtin
                )))
            }
        };
        let metric = metrics
            .get(&p.metric)
            .ok_or_else(|| CoreError::Invalid(format!("unknown metric `{}`", p.metric)))?;
        let mut ds: BTreeSet<i64> = BTreeSet::new();
        for t in &adom {
            if let Some(d) = metric.distance(t, &origin_value) {
                if d > 0 && d <= gap_budget {
                    ds.insert(d);
                }
            }
        }
        let mut levels = vec![Level::Keep];
        levels.extend(ds.into_iter().map(Level::DistLe));
        builtin_levels.push(levels);
    }

    Ok(CandidateLevels {
        constants: const_levels,
        builtins: builtin_levels,
        joins: join_levels,
    })
}

/// Enumerate relaxations with `gap ≤ gap_budget` in ascending gap
/// order (identity first). Levels per parameter come from
/// [`candidate_levels`].
fn enumerate_relaxations(levels: &CandidateLevels, gap_budget: i64) -> Vec<Relaxation> {
    let mut out: Vec<Relaxation> = Vec::new();
    let n_const = levels.constants.len();
    let n_builtin = levels.builtins.len();
    let all: Vec<&Vec<Level>> = levels
        .constants
        .iter()
        .chain(levels.builtins.iter())
        .chain(levels.joins.iter())
        .collect();
    let mut current: Vec<Level> = Vec::with_capacity(all.len());

    fn go(
        all: &[&Vec<Level>],
        idx: usize,
        gap_left: i64,
        current: &mut Vec<Level>,
        splits: (usize, usize),
        out: &mut Vec<Relaxation>,
    ) {
        if idx == all.len() {
            let (n_const, n_builtin) = splits;
            out.push(Relaxation {
                const_levels: current[..n_const].to_vec(),
                builtin_levels: current[n_const..n_const + n_builtin].to_vec(),
                join_levels: current[n_const + n_builtin..].to_vec(),
            });
            return;
        }
        for &level in all[idx] {
            if level.gap() <= gap_left {
                current.push(level);
                go(all, idx + 1, gap_left - level.gap(), current, splits, out);
                current.pop();
            }
        }
    }
    go(
        &all,
        0,
        gap_budget,
        &mut current,
        (n_const, n_builtin),
        &mut out,
    );
    out.sort_by_key(|r| r.gap());
    out
}

/// A QRPP instance: the base recommendation instance (whose `query` is
/// the unrelaxed `Q` and whose `metrics` hold Γ), the relaxation spec
/// `(E, X)`, the rating bound `B`, and the gap budget `g`.
#[derive(Debug, Clone)]
pub struct QrppInstance {
    /// Base instance `(Q, D, Qc, cost(), val(), C, k)` with Γ in
    /// `metrics`.
    pub base: RecInstance,
    /// What may be relaxed.
    pub spec: RelaxSpec,
    /// The rating bound `B` packages must reach.
    pub rating_bound: pkgrec_core::Ext,
    /// The gap budget `g`.
    pub gap_budget: i64,
}

/// A positive QRPP answer: the witness relaxation and the resulting
/// query.
#[derive(Debug, Clone)]
pub struct RelaxationWitness {
    /// The chosen levels.
    pub relaxation: Relaxation,
    /// The relaxed query `QΓ`.
    pub query: Query,
    /// Its gap.
    pub gap: i64,
}

/// Decide QRPP and return a *minimum-gap* witness relaxation when the
/// answer is yes (`None` = no relaxation within budget works).
pub fn qrpp(inst: &QrppInstance, opts: &SolveOptions) -> Result<Option<RelaxationWitness>> {
    let _span = pkgrec_trace::span!("qrpp.solve");
    let metrics = inst.base.metrics.as_ref().ok_or_else(|| {
        CoreError::Invalid("QRPP requires a metric set Γ on the base instance".into())
    })?;
    let levels = candidate_levels(
        &inst.base.db,
        &inst.base.query,
        &inst.spec,
        metrics,
        inst.gap_budget,
    )?;
    for relaxation in enumerate_relaxations(&levels, inst.gap_budget) {
        pkgrec_trace::counter!("qrpp.relaxations");
        pkgrec_trace::flight::record(pkgrec_trace::flight::FlightEvent::Candidate {
            label: "qrpp.relaxation",
        });
        let relaxed = apply_relaxation(&inst.base.query, &inst.spec, &relaxation)?;
        let candidate = {
            let mut c = inst.base.clone();
            c.query = relaxed.clone();
            c
        };
        if has_k_valid_packages(&candidate, inst.rating_bound, opts)? {
            let gap = relaxation.gap();
            return Ok(Some(RelaxationWitness {
                relaxation,
                query: relaxed,
                gap,
            }));
        }
    }
    Ok(None)
}

/// L1-style check: do `k` distinct valid packages rated `≥ B` exist?
/// Delegates to MBP's L1 decision, which threads `opts.jobs` through to
/// the (possibly parallel) package-space engine and keeps the strictness
/// contract: the k-th found package certifies "yes" regardless of the
/// budget, but an interrupted search cannot certify "no".
fn has_k_valid_packages(
    inst: &RecInstance,
    bound: pkgrec_core::Ext,
    opts: &SolveOptions,
) -> Result<bool> {
    pkgrec_core::problems::mbp::is_bound(inst, bound, opts)
}

/// QRPP for items (Corollary 7.3): relax `Q` so that at least `k`
/// distinct items of `QΓ(D)` have utility `≥ B`.
#[allow(clippy::too_many_arguments)]
pub fn qrpp_items(
    db: &pkgrec_data::Database,
    query: &Query,
    spec: &RelaxSpec,
    metrics: &pkgrec_query::MetricSet,
    utility: &pkgrec_core::ItemUtility,
    k: usize,
    rating_bound: f64,
    gap_budget: i64,
) -> Result<Option<RelaxationWitness>> {
    let _span = pkgrec_trace::span!("qrpp.items");
    let levels = candidate_levels(db, query, spec, metrics, gap_budget)?;
    for relaxation in enumerate_relaxations(&levels, gap_budget) {
        pkgrec_trace::counter!("qrpp.relaxations");
        pkgrec_trace::flight::record(pkgrec_trace::flight::FlightEvent::Candidate {
            label: "qrpp.relaxation",
        });
        let relaxed = apply_relaxation(query, spec, &relaxation)?;
        let answers = relaxed
            .eval_with_metrics(db, metrics)
            .map_err(CoreError::from)?;
        let hits = answers
            .iter()
            .filter(|t| utility.eval(t) >= rating_bound)
            .count();
        if hits >= k {
            let gap = relaxation.gap();
            return Ok(Some(RelaxationWitness {
                relaxation,
                query: relaxed,
                gap,
            }));
        }
    }
    Ok(None)
}

#[cfg(test)]
mod tests {
    use super::*;
    use pkgrec_core::{Ext, PackageFn};
    use pkgrec_data::{tuple, AttrType, Database, Relation, RelationSchema};
    use pkgrec_query::{AbsDiff, ConjunctiveQuery, MetricSet, TableMetric};

    /// flight(fno, to, price): direct flights to a destination column.
    fn flight_db() -> Database {
        let mut db = Database::new();
        let schema = RelationSchema::new(
            "flight",
            [
                ("fno", AttrType::Int),
                ("to", AttrType::Str),
                ("price", AttrType::Int),
            ],
        )
        .unwrap();
        db.add_relation(
            Relation::from_tuples(
                schema,
                [
                    tuple![1, "ewr", 300],
                    tuple![2, "jfk", 450],
                    tuple![3, "bos", 200],
                ],
            )
            .unwrap(),
        )
        .unwrap();
        db
    }

    fn metrics() -> MetricSet {
        MetricSet::new()
            .with(
                "city",
                TableMetric::new()
                    .with("nyc", "ewr", 9)
                    .with("nyc", "jfk", 12)
                    .with("nyc", "bos", 190),
            )
            .with("days", AbsDiff)
    }

    /// Q(f, p) :- flight(f, "nyc", p): no direct flights to nyc exist.
    fn q_nyc() -> Query {
        Query::Cq(ConjunctiveQuery::new(
            vec![Term::v("f"), Term::v("p")],
            vec![RelAtom::new(
                "flight",
                vec![Term::v("f"), Term::c("nyc"), Term::v("p")],
            )],
            vec![],
        ))
    }

    fn spec() -> RelaxSpec {
        RelaxSpec {
            constants: vec![RelaxParam::new(0, 1, "city")],
            builtin_constants: vec![],
            joins: vec![],
        }
    }

    fn qrpp_inst(gap_budget: i64, k: usize) -> QrppInstance {
        let base = RecInstance::new(flight_db(), q_nyc())
            .with_budget(1.0)
            .with_val(PackageFn::constant(Ext::Finite(1.0)))
            .with_k(k)
            .with_metrics(metrics());
        QrppInstance {
            base,
            spec: spec(),
            rating_bound: Ext::Finite(1.0),
            gap_budget,
        }
    }

    #[test]
    fn relaxation_within_15_miles_finds_ewr_and_jfk() {
        // Example 7.1: dist ≤ 15 admits ewr (9) and jfk (12).
        let w = qrpp(&qrpp_inst(15, 1), &SolveOptions::default())
            .unwrap()
            .unwrap();
        assert_eq!(w.gap, 9); // minimal gap: just far enough for ewr
        assert_eq!(w.relaxation.const_levels, vec![Level::DistLe(9)]);
        // The relaxed query finds the ewr flight.
        let ans = w
            .query
            .eval_with_metrics(&flight_db(), &metrics())
            .unwrap();
        assert!(ans.contains(&tuple![1, 300]));
    }

    #[test]
    fn no_relaxation_within_tiny_budget() {
        assert!(qrpp(&qrpp_inst(5, 1), &SolveOptions::default())
            .unwrap()
            .is_none());
    }

    #[test]
    fn k_2_needs_a_larger_gap() {
        // Two valid packages need two distinct items ⇒ both ewr and jfk
        // must be reachable ⇒ gap 12.
        let w = qrpp(&qrpp_inst(15, 2), &SolveOptions::default())
            .unwrap()
            .unwrap();
        assert_eq!(w.gap, 12);
    }

    #[test]
    fn identity_relaxation_wins_when_query_already_works() {
        // Query for ewr directly: no relaxation needed, gap 0.
        let q = Query::Cq(ConjunctiveQuery::new(
            vec![Term::v("f"), Term::v("p")],
            vec![RelAtom::new(
                "flight",
                vec![Term::v("f"), Term::c("ewr"), Term::v("p")],
            )],
            vec![],
        ));
        let mut inst = qrpp_inst(15, 1);
        inst.base.query = q;
        let w = qrpp(&inst, &SolveOptions::default()).unwrap().unwrap();
        assert_eq!(w.gap, 0);
        assert_eq!(w.relaxation, Relaxation::identity(&inst.spec));
    }

    #[test]
    fn join_relaxation_splits_equijoin() {
        // r(x, y), s(y, z) joined on y; relaxing the s-side occurrence
        // with the numeric metric lets nearby keys match.
        let mut db = Database::new();
        let r =
            RelationSchema::new("r", [("a", AttrType::Int), ("k", AttrType::Int)]).unwrap();
        let s =
            RelationSchema::new("s", [("k", AttrType::Int), ("b", AttrType::Int)]).unwrap();
        db.add_relation(Relation::from_tuples(r, [tuple![1, 10]]).unwrap())
            .unwrap();
        db.add_relation(Relation::from_tuples(s, [tuple![12, 7]]).unwrap())
            .unwrap();
        let q = Query::Cq(ConjunctiveQuery::new(
            vec![Term::v("a"), Term::v("b")],
            vec![
                RelAtom::new("r", vec![Term::v("a"), Term::v("y")]),
                RelAtom::new("s", vec![Term::v("y"), Term::v("b")]),
            ],
            vec![],
        ));
        let spec = RelaxSpec {
            constants: vec![],
            builtin_constants: vec![],
            joins: vec![RelaxParam::new(1, 0, "days")],
        };
        let base = RecInstance::new(db, q)
            .with_budget(1.0)
            .with_val(PackageFn::constant(Ext::Finite(1.0)))
            .with_metrics(metrics());
        let inst = QrppInstance {
            base,
            spec,
            rating_bound: Ext::Finite(1.0),
            gap_budget: 5,
        };
        let w = qrpp(&inst, &SolveOptions::default()).unwrap().unwrap();
        assert_eq!(w.gap, 2); // |10 − 12|
    }

    #[test]
    fn qrpp_items_variant() {
        let utility = pkgrec_core::ItemUtility::new("cheap", |t| {
            -(t[1].as_numeric().unwrap() as f64)
        });
        let w = qrpp_items(
            &flight_db(),
            &q_nyc(),
            &spec(),
            &metrics(),
            &utility,
            1,
            -400.0, // price ≤ 400
            15,
        )
        .unwrap()
        .unwrap();
        assert_eq!(w.gap, 9); // ewr at 300 qualifies
        assert!(qrpp_items(
            &flight_db(),
            &q_nyc(),
            &spec(),
            &metrics(),
            &utility,
            1,
            -100.0, // nothing is that cheap
            15,
        )
        .unwrap()
        .is_none());
    }

    #[test]
    fn apply_relaxation_validates_spec() {
        let bad_spec = RelaxSpec {
            constants: vec![RelaxParam::new(0, 0, "city")], // position 0 is a variable
            builtin_constants: vec![],
            joins: vec![],
        };
        let r = Relaxation {
            const_levels: vec![Level::DistLe(1)],
            builtin_levels: vec![],
            join_levels: vec![],
        };
        assert!(apply_relaxation(&q_nyc(), &bad_spec, &r).is_err());
        // Mismatched level count.
        let r2 = Relaxation {
            const_levels: vec![],
            builtin_levels: vec![],
            join_levels: vec![],
        };
        assert!(apply_relaxation(&q_nyc(), &spec(), &r2).is_err());
    }

    #[test]
    fn gap_enumeration_is_ascending() {
        let levels = candidate_levels(
            &flight_db(),
            &q_nyc(),
            &spec(),
            &metrics(),
            200,
        )
        .unwrap();
        let rs = enumerate_relaxations(&levels, 200);
        let gaps: Vec<i64> = rs.iter().map(Relaxation::gap).collect();
        let mut sorted = gaps.clone();
        sorted.sort();
        assert_eq!(gaps, sorted);
        // Candidate gaps up to D-equivalence: 0 (keep), 9, 12, 190.
        assert_eq!(gaps, vec![0, 9, 12, 190]);
    }
}
