//! Flight-recorder contracts across the whole stack: sequential and
//! parallel engines produce bit-identical merged recordings on
//! completed runs, interrupted runs end their black box with the
//! tripping event, the attributed `enumerate.pruned.*` counters agree
//! with the recorded prune events, and the live progress estimate is
//! monotone and exact.
//!
//! Flight recording (like tracing) is per-thread, and the test harness
//! runs each test on its own thread, so enabling it here cannot
//! contaminate other tests' rings.

use std::sync::Arc;

use pkgrec::core::{
    problems::cpp, problems::frp, Constraint, Ext, PackageFn, Progress, RecInstance, SolveOptions,
};
use pkgrec::data::{tuple, AttrType, Database, Relation, RelationSchema};
use pkgrec::query::{Builtin, CmpOp, ConjunctiveQuery, Query, RelAtom, Term};
use pkgrec_trace::flight::{self, FlightEvent};

const JOBS_LEVELS: [usize; 3] = [2, 4, 8];

/// The golden workload family of `parallel_equivalence`: items with
/// groups and scores, budget 2 items, val = total score.
fn instance(scores: &[(i64, i64)], qc: Qc) -> RecInstance {
    let schema = RelationSchema::new(
        "item",
        [("id", AttrType::Int), ("grp", AttrType::Int), ("score", AttrType::Int)],
    )
    .expect("valid schema");
    let rel = Relation::from_tuples(
        schema,
        scores
            .iter()
            .enumerate()
            .map(|(i, &(g, s))| tuple![i as i64, g, s]),
    )
    .expect("schema-conformant");
    let mut db = Database::new();
    db.add_relation(rel).expect("fresh db");
    let inst = RecInstance::new(db, Query::Cq(ConjunctiveQuery::identity("item", 3)))
        .with_budget(2.0)
        .with_val(PackageFn::sum_col(2, true));
    match qc {
        Qc::None => inst,
        Qc::Ptime => inst.with_qc(Constraint::ptime("distinct groups", |p, _| {
            let mut seen = std::collections::BTreeSet::new();
            p.iter().all(|t| seen.insert(t[1].clone()))
        })),
        // Qc() :- RQ(id,g,s), RQ(id',g,s'), id != id' — "no two items
        // share a group", as a CQ and therefore anti-monotone.
        Qc::Cq => inst.with_qc(Constraint::Query(Query::Cq(ConjunctiveQuery::new(
            Vec::<Term>::new(),
            vec![
                RelAtom::new(
                    pkgrec::core::ANSWER_RELATION,
                    vec![Term::v("i1"), Term::v("g"), Term::v("s1")],
                ),
                RelAtom::new(
                    pkgrec::core::ANSWER_RELATION,
                    vec![Term::v("i2"), Term::v("g"), Term::v("s2")],
                ),
            ],
            vec![Builtin::cmp(Term::v("i1"), CmpOp::Neq, Term::v("i2"))],
        )))),
    }
}

#[derive(Clone, Copy)]
enum Qc {
    None,
    Ptime,
    Cq,
}

const GOLDEN: [(&[(i64, i64)], Qc); 4] = [
    (&[(0, 10), (1, 20), (2, 30), (0, 40)], Qc::None),
    (&[(0, 10), (1, 20), (2, 30), (0, 40), (1, 5)], Qc::Ptime),
    (&[(0, 7), (0, 9), (1, 3), (2, 30), (2, 2), (1, 11)], Qc::Cq),
    (&[(1, 1)], Qc::None),
];

/// Completed runs: the merged parallel recording is bit-identical to
/// the sequential one at every jobs level, for every golden workload.
#[test]
fn parallel_recordings_match_sequential_bit_for_bit() {
    let _on = flight::scoped();
    for (scores, qc) in GOLDEN {
        let inst = instance(scores, qc);
        flight::reset();
        let seq_out = frp::top_k(&inst, &SolveOptions::default().with_jobs(1)).unwrap();
        let seq = flight::take_recording();
        assert!(!seq.events.is_empty(), "the sequential run recorded events");
        for jobs in JOBS_LEVELS {
            flight::reset();
            let par_out = frp::top_k(&inst, &SolveOptions::default().with_jobs(jobs)).unwrap();
            let par = flight::take_recording();
            assert_eq!(par_out, seq_out, "jobs {jobs}");
            assert_eq!(par.events, seq.events, "jobs {jobs}");
            assert_eq!(par.dropped, seq.dropped, "jobs {jobs}");
        }
    }
}

/// A budget-interrupted run's recording ends with the tripping event —
/// every `SearchLimitExceeded` comes with its black box — in both
/// engines.
#[test]
fn interrupted_recordings_end_with_the_tripping_event() {
    let _on = flight::scoped();
    let inst = instance(GOLDEN[1].0, GOLDEN[1].1);
    for jobs in [1usize, 2, 4] {
        flight::reset();
        let out = frp::top_k(&inst, &SolveOptions::limited(3).with_jobs(jobs)).unwrap();
        assert!(out.interrupted.is_some(), "3 steps cannot finish");
        let rec = flight::take_recording();
        let last = rec.events.last().expect("events were recorded").event;
        assert!(
            matches!(last, FlightEvent::Interrupted { resource: "steps", .. }),
            "jobs {jobs}: recording must end at the cut, got {last:?}"
        );
        // Exactly one interruption survives the merge (latch-racing
        // workers above the floor are discarded).
        let cuts = rec
            .events
            .iter()
            .filter(|r| matches!(r.event, FlightEvent::Interrupted { .. }))
            .count();
        assert_eq!(cuts, 1, "jobs {jobs}");
    }
}

/// The attributed counters and the recorded events tell the same
/// story: `enumerate.pruned.cost + enumerate.pruned.compat` equals the
/// number of `Prune` records, and every recorded reason has its
/// counter.
#[test]
fn pruned_counters_agree_with_recorded_events() {
    let _on = flight::scoped();
    let _trace = pkgrec_trace::scoped();
    for (scores, qc) in GOLDEN {
        let inst = instance(scores, qc);
        flight::reset();
        pkgrec_trace::reset();
        cpp::count_valid(&inst, Ext::NegInf, &SolveOptions::default().with_jobs(1)).unwrap();
        let report = pkgrec_trace::take();
        let rec = flight::take_recording();
        let counted: u64 = report
            .counters
            .iter()
            .filter(|(name, _)| {
                name.as_str() == "enumerate.pruned.cost"
                    || name.as_str() == "enumerate.pruned.compat"
            })
            .map(|(_, &n)| n)
            .sum();
        let mut by_reason = std::collections::BTreeMap::new();
        for r in &rec.events {
            if let FlightEvent::Prune { reason, .. } = r.event {
                *by_reason.entry(reason.counter_name()).or_insert(0u64) += 1;
            }
        }
        let recorded: u64 = by_reason.values().sum();
        assert_eq!(counted, recorded, "counters and events must agree");
        for (name, n) in by_reason {
            assert_eq!(report.counters.get(name), Some(&n), "{name}");
        }
        assert!(
            !report.counters.contains_key("enumerate.pruned"),
            "the lump-sum counter is gone"
        );
    }
}

/// Recordings serialize to JSONL that the bundled validator accepts,
/// line by line.
#[test]
fn recordings_serialize_to_valid_jsonl() {
    let _on = flight::scoped();
    flight::reset();
    let inst = instance(GOLDEN[2].0, GOLDEN[2].1);
    frp::top_k(&inst, &SolveOptions::limited(20).with_jobs(2)).unwrap();
    let jsonl = flight::take_recording().to_jsonl();
    assert!(!jsonl.is_empty());
    for line in jsonl.lines() {
        pkgrec_trace::json::validate_object(line).unwrap_or_else(|e| panic!("{line}: {e}"));
    }
}

/// The progress estimate is monotone in the budget (a longer prefix
/// never reports less progress), stays below 1.0 while interrupted,
/// and pins to exactly 1.0 on completed runs — including through the
/// shared handle a CLI monitor would poll.
#[test]
fn progress_is_monotone_and_exact() {
    let inst = instance(GOLDEN[1].0, GOLDEN[1].1);
    let mut last = 0.0f64;
    for budget in 1..40u64 {
        let progress = Arc::new(Progress::new());
        let opts = SolveOptions::limited(budget)
            .with_jobs(1)
            .with_progress(Arc::clone(&progress));
        let out = cpp::count_valid(&inst, Ext::NegInf, &opts).unwrap();
        match out.stats.progress_at_interrupt {
            Some(frac) => {
                assert!((0.0..1.0).contains(&frac), "budget {budget}: {frac}");
                assert!(frac >= last, "budget {budget}: {frac} < {last}");
                assert!((frac - progress.fraction()).abs() < 1e-9);
                last = frac;
            }
            None => {
                assert!(out.stats.interrupted.is_none());
                assert_eq!(progress.fraction(), 1.0, "exact completion pins to 1.0");
                let (done, total) = progress.units();
                assert_eq!(done, total);
                return;
            }
        }
    }
    panic!("40 steps should have exhausted the golden workload");
}

/// Parallel completed runs also pin the shared estimate to 1.0.
#[test]
fn parallel_progress_reaches_one() {
    let inst = instance(GOLDEN[0].0, GOLDEN[0].1);
    for jobs in JOBS_LEVELS {
        let progress = Arc::new(Progress::new());
        let opts = SolveOptions::default()
            .with_jobs(jobs)
            .with_progress(Arc::clone(&progress));
        cpp::count_valid(&inst, Ext::NegInf, &opts).unwrap();
        assert_eq!(progress.fraction(), 1.0, "jobs {jobs}");
    }
}
