//! Randomized equivalence between the compiled-plan evaluator and the
//! interpreter: for random databases and queries across every language
//! (CQ, UCQ, ∃FO⁺, FO with negation, DATALOGnr/DATALOG),
//! `CompiledPlan` must produce exactly the interpreter's answers — for
//! full evaluation, pre-bound membership probes, budget-interrupted
//! runs (bit-identical tick accounting), and dynamic-relation overlays
//! versus materializing the relation with `Database::with_relation`.

use std::collections::BTreeSet;

use proptest::prelude::*;

use pkgrec::data::{tuple, AttrType, Database, Relation, RelationSchema, Tuple};
use pkgrec::query::rewrite::{cq_to_datalog, cq_to_fo, ucq_to_fo};
use pkgrec::query::{
    Budget, Builtin, CmpOp, ConjunctiveQuery, EvalContext, Formula, FoQuery, Query, QueryError,
    RelAtom, Term, UnionQuery,
};

/// A small random database over two relations r(a, b) and s(a).
fn db_strategy() -> impl Strategy<Value = Database> {
    let r_rows = prop::collection::btree_set((0i64..4, 0i64..4), 0..8);
    let s_rows = prop::collection::btree_set(0i64..4, 0..4);
    (r_rows, s_rows).prop_map(|(r_rows, s_rows)| {
        let r = RelationSchema::new("r", [("a", AttrType::Int), ("b", AttrType::Int)])
            .expect("valid schema");
        let s = RelationSchema::new("s", [("a", AttrType::Int)]).expect("valid schema");
        let mut db = Database::new();
        db.add_relation(
            Relation::from_tuples(r, r_rows.into_iter().map(|(a, b)| tuple![a, b]))
                .expect("schema-conformant"),
        )
        .expect("fresh db");
        db.add_relation(
            Relation::from_tuples(s, s_rows.into_iter().map(|a| tuple![a]))
                .expect("schema-conformant"),
        )
        .expect("fresh db");
        db
    })
}

/// A random term over a small variable pool and small constants.
fn term_strategy() -> impl Strategy<Value = Term> {
    prop_oneof![
        (0usize..4).prop_map(|i| Term::v(format!("v{i}"))),
        (0i64..4).prop_map(Term::c),
    ]
}

/// Close a random atom list into a safe CQ: head = two variables that
/// occur in some atom, plus up to two comparisons over atom variables.
fn close_cq(
    atoms: Vec<RelAtom>,
    cmps: Vec<(CmpOp, i64)>,
) -> Option<ConjunctiveQuery> {
    let vars: Vec<_> = atoms
        .iter()
        .flat_map(|a| a.variables())
        .collect::<BTreeSet<_>>()
        .into_iter()
        .collect();
    if vars.is_empty() {
        return None;
    }
    let head = vec![
        Term::Var(vars[0].clone()),
        Term::Var(vars[vars.len() / 2].clone()),
    ];
    let builtins: Vec<Builtin> = cmps
        .into_iter()
        .enumerate()
        .map(|(i, (op, c))| Builtin::cmp(Term::Var(vars[i % vars.len()].clone()), op, Term::c(c)))
        .collect();
    Some(ConjunctiveQuery::new(head, atoms, builtins))
}

fn cmp_op_strategy() -> impl Strategy<Value = CmpOp> {
    prop_oneof![
        Just(CmpOp::Eq),
        Just(CmpOp::Neq),
        Just(CmpOp::Lt),
        Just(CmpOp::Leq),
        Just(CmpOp::Gt),
        Just(CmpOp::Geq)
    ]
}

/// A random safe CQ over the base relations r/s (1–3 atoms).
fn cq_strategy() -> impl Strategy<Value = ConjunctiveQuery> {
    let atom = prop_oneof![
        (term_strategy(), term_strategy()).prop_map(|(a, b)| RelAtom::new("r", vec![a, b])),
        term_strategy().prop_map(|a| RelAtom::new("s", vec![a])),
    ];
    (
        prop::collection::vec(atom, 1..4),
        prop::collection::vec((cmp_op_strategy(), 0i64..4), 0..3),
    )
        .prop_filter_map("need at least one variable", |(atoms, cmps)| {
            close_cq(atoms, cmps)
        })
}

/// A random safe CQ that also reads the dynamic relation p(a, b).
fn dyn_cq_strategy() -> impl Strategy<Value = ConjunctiveQuery> {
    let base_atom = prop_oneof![
        (term_strategy(), term_strategy()).prop_map(|(a, b)| RelAtom::new("r", vec![a, b])),
        term_strategy().prop_map(|a| RelAtom::new("s", vec![a])),
    ];
    let dyn_atom =
        (term_strategy(), term_strategy()).prop_map(|(a, b)| RelAtom::new("p", vec![a, b]));
    (
        prop::collection::vec(dyn_atom, 1..3),
        prop::collection::vec(base_atom, 0..3),
        prop::collection::vec((cmp_op_strategy(), 0i64..4), 0..3),
    )
        .prop_filter_map("need at least one variable", |(dyns, bases, cmps)| {
            let mut atoms = dyns;
            atoms.extend(bases);
            close_cq(atoms, cmps)
        })
}

/// The query forms exercised per random CQ: the CQ itself, a UCQ, its
/// ∃FO⁺ embedding, and its Datalog embedding (`cq_to_datalog` emits a
/// non-recursive program, which `Query::language` classifies as
/// DATALOGnr; the Datalog engine runs both).
fn embeddings(cq: &ConjunctiveQuery, other: &ConjunctiveQuery) -> Vec<Query> {
    let ucq = UnionQuery::new(vec![cq.clone(), other.clone()]).expect("same arity");
    vec![
        Query::Cq(cq.clone()),
        Query::Ucq(ucq.clone()),
        Query::Fo(cq_to_fo(cq)),
        Query::Fo(ucq_to_fo(&ucq)),
        Query::Datalog(cq_to_datalog(cq)),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Full evaluation: `CompiledPlan::eval` ≡ `Query::eval` across
    /// every language, including full FO with negation.
    #[test]
    fn compiled_eval_matches_interpreter(
        db in db_strategy(),
        a in cq_strategy(),
        b in cq_strategy(),
    ) {
        let db = std::sync::Arc::new(db);
        for q in embeddings(&a, &b) {
            let interpreted = q.eval(&db).unwrap();
            let plan = q.compile(&db).unwrap();
            prop_assert_eq!(&interpreted, &plan.eval(None, None).unwrap(), "on {}", q);
        }
        // Full FO: the negated body over the active domain.
        let fo = cq_to_fo(&a);
        let neg = Query::Fo(FoQuery::new(fo.head.clone(), Formula::not(fo.body.clone())));
        let interpreted = neg.eval(&db).unwrap();
        let plan = neg.compile(&db).unwrap();
        prop_assert_eq!(&interpreted, &plan.eval(None, None).unwrap(), "on {}", neg);
    }

    /// Membership mode: `eval_pre_bound` returns exactly the matching
    /// answers and `contains` agrees with the interpreter's membership
    /// test, for answers and for out-of-domain tuples alike.
    #[test]
    fn pre_bound_probes_match_interpreter(
        db in db_strategy(),
        a in cq_strategy(),
        b in cq_strategy(),
    ) {
        let db = std::sync::Arc::new(db);
        for q in embeddings(&a, &b) {
            let answers = q.eval(&db).unwrap();
            let plan = q.compile(&db).unwrap();
            for t in answers.iter().take(4) {
                let bound = plan.eval_pre_bound(t, None, None).unwrap();
                prop_assert_eq!(&bound, &BTreeSet::from([t.clone()]), "on {}", q);
                prop_assert!(plan.contains(t, None, None).unwrap(), "on {}", q);
            }
            let foreign = tuple![99, 99];
            prop_assert!(plan.eval_pre_bound(&foreign, None, None).unwrap().is_empty());
            prop_assert_eq!(
                plan.contains(&foreign, None, None).unwrap(),
                q.contains(&db, &foreign).unwrap(),
                "on {}", q
            );
        }
    }

    /// Budget parity: the compiled static path charges the same ticks
    /// in the same sequence as the interpreter, so under any step
    /// budget both either finish with equal answers or trip
    /// `Interrupted` together.
    #[test]
    fn budget_interruption_is_bit_identical(db in db_strategy(), cq in cq_strategy()) {
        let db = std::sync::Arc::new(db);
        let queries = [
            Query::Cq(cq.clone()),
            Query::Fo(cq_to_fo(&cq)),
            Query::Datalog(cq_to_datalog(&cq)),
        ];
        for q in &queries {
            let unlimited = Budget::with_steps(u64::MAX).meter();
            let full = q
                .eval_ctx(EvalContext::new(&db).with_meter(&unlimited))
                .unwrap();
            let used = unlimited.spent();
            let plan = q.compile(&db).unwrap();
            for steps in [used.saturating_sub(1), used] {
                let im = Budget::with_steps(steps).meter();
                let pm = Budget::with_steps(steps).meter();
                let lhs = q.eval_ctx(EvalContext::new(&db).with_meter(&im));
                let rhs = plan.eval(None, Some(&pm));
                match (lhs, rhs) {
                    (Ok(l), Ok(r)) => {
                        prop_assert_eq!(&l, &r, "on {} with {} steps", q, steps);
                        prop_assert_eq!(&l, &full, "on {} with {} steps", q, steps);
                    }
                    (Err(QueryError::Interrupted(_)), Err(QueryError::Interrupted(_))) => {}
                    (l, r) => prop_assert!(
                        false,
                        "divergent outcomes on {} with {} steps: {:?} vs {:?}",
                        q, steps, l, r
                    ),
                }
            }
        }
    }

    /// Dynamic overlays: binding random items to the open relation `p`
    /// answers exactly like materializing `p` with
    /// `Database::with_relation`, across the CQ, FO and Datalog paths.
    #[test]
    fn dynamic_overlay_matches_with_relation(
        db in db_strategy(),
        cq in dyn_cq_strategy(),
        items in prop::collection::btree_set((0i64..4, 0i64..4), 0..4),
    ) {
        let tuples: Vec<Tuple> = items.iter().map(|&(a, b)| tuple![a, b]).collect();
        let schema = RelationSchema::new("p", [("c0", AttrType::Int), ("c1", AttrType::Int)])
            .expect("valid schema");
        let db = std::sync::Arc::new(db);
        let rel = Relation::from_tuples_unchecked(schema, tuples.iter().cloned());
        let extended = db.with_relation(rel);
        let queries = [
            Query::Cq(cq.clone()),
            Query::Fo(cq_to_fo(&cq)),
            Query::Datalog(cq_to_datalog(&cq)),
        ];
        for q in &queries {
            let interpreted = q.eval(&extended).unwrap();
            let plan = q.compile_with_dynamic(&db, "p", 2).unwrap();
            prop_assert_eq!(
                &interpreted,
                &plan.eval_dynamic(tuples.iter(), None, None).unwrap(),
                "on {}", q
            );
            prop_assert_eq!(
                !interpreted.is_empty(),
                plan.has_answer_dynamic(tuples.iter(), None, None).unwrap(),
                "on {}", q
            );
        }
    }
}
