//! Property fuzz of every parser entry point that faces external
//! bytes: the text database format, both query grammars, QDIMACS, the
//! JSON validator/parser, the chaos spec, and the serve request
//! decoder. The invariant under test is *totality*: arbitrary input
//! produces `Ok` or a typed `Err` — never a panic, never an abort
//! (e.g. via an absurd allocation), never a hang.
//!
//! Two input distributions per entry point: arbitrary bytes decoded
//! lossily (exercises the lexer edges), and strings over each
//! grammar's own alphabet (gets past the first token and deep into
//! the grammar, where the interesting bugs live).

use proptest::prelude::*;

use pkgrec::data::text::parse_database;
use pkgrec::logic::parse_qdimacs;
use pkgrec::query::parser::{parse_fo, parse_query};
use pkgrec::serve::parse_solve_request;
use pkgrec::trace::json;

fn lossy(bytes: &[u8]) -> String {
    String::from_utf8_lossy(bytes).into_owned()
}

fn raw_bytes() -> impl Strategy<Value = Vec<u8>> {
    proptest::collection::vec(any::<u8>(), 0..300)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn database_text_parser_is_total(bytes in raw_bytes()) {
        let _ = parse_database(&lossy(&bytes));
    }

    #[test]
    fn database_text_parser_survives_its_own_tokens(
        input in "[relation item(d: ,pricestbol)0-9#\n\t]{0,200}"
    ) {
        let _ = parse_database(&input);
    }

    #[test]
    fn query_parsers_are_total(bytes in raw_bytes()) {
        let input = lossy(&bytes);
        let _ = parse_query(&input);
        let _ = parse_fo(&input);
    }

    #[test]
    fn query_parsers_survive_their_own_tokens(
        input in "[qxyz(), :.!=<>\"&|existforalu0-9_\n-]{0,200}"
    ) {
        let _ = parse_query(&input);
        let _ = parse_fo(&input);
    }

    #[test]
    fn qdimacs_parser_is_total(bytes in raw_bytes()) {
        let _ = parse_qdimacs(&lossy(&bytes));
    }

    #[test]
    fn qdimacs_parser_survives_its_own_tokens(
        input in "[pcnf ea0-9\n\t-]{0,200}"
    ) {
        // Includes hostile headers like `p cnf 99999999 1`; the parser
        // must reject them *before* allocating (no OOM abort).
        let _ = parse_qdimacs(&input);
    }

    #[test]
    fn json_parser_and_validator_are_total_and_agree(bytes in raw_bytes()) {
        let input = lossy(&bytes);
        let parsed = json::parse(&input);
        let validated = json::validate(&input);
        prop_assert_eq!(
            parsed.is_ok(),
            validated.is_ok(),
            "parse and validate disagree on {:?}",
            input
        );
    }

    #[test]
    fn json_survives_its_own_tokens(
        // `]` cannot be a class member in the vendored pattern syntax;
        // `<` stands in for it and is substituted below.
        soup in "[{}\\[<\":,0-9.eE+u123abfnrt nulse\\\\-]{0,150}"
    ) {
        let input = soup.replace('<', "]");
        let parsed = json::parse(&input);
        prop_assert_eq!(parsed.is_ok(), json::validate(&input).is_ok());
    }

    #[test]
    fn solve_request_decoder_is_total(bytes in raw_bytes()) {
        let _ = parse_solve_request(&bytes);
    }

    #[test]
    fn solve_request_decoder_survives_near_valid_bodies(
        db in "[shop\" ]{0,12}",
        problem in "[evaltopkboundc\" ]{0,12}",
        k in any::<i64>(),
        deadline in any::<i64>(),
    ) {
        let body = format!(
            r#"{{"db":"{db}","problem":"{problem}","query":"q(x) :- item(x).","k":{k},"deadline_ms":{deadline}}}"#
        );
        let _ = parse_solve_request(body.as_bytes());
    }

    #[test]
    fn chaos_spec_parser_is_total(input in "[panicdelydrop@:,0-9a-z ]{0,60}") {
        // arm() rejects bad specs with Err; disarm unconditionally so a
        // rare valid spec cannot leak into other tests.
        let _ = pkgrec::trace::chaos::arm(&input);
        pkgrec::trace::chaos::disarm();
    }
}

/// Adversarial nesting must hit the depth cap, not the stack guard.
#[test]
fn json_depth_bomb_is_rejected() {
    let bomb = "[".repeat(100_000);
    assert!(json::parse(&bomb).is_err());
    assert!(json::validate(&bomb).is_err());
    let deep = format!("{}1{}", "[".repeat(600), "]".repeat(600));
    assert!(json::parse(&deep).is_err(), "deeper than MAX_DEPTH");
}

/// The QDIMACS variable cap fires before the quantifier allocation.
#[test]
fn qdimacs_allocation_bomb_is_rejected() {
    let e = parse_qdimacs("p cnf 18446744073709551615 1\n").unwrap_err();
    assert!(e.message.contains("header") || e.message.contains("limit"), "{e}");
    let e = parse_qdimacs("p cnf 999999999999 3\n").unwrap_err();
    assert!(e.message.contains("limit"), "{e}");
}
