//! End-to-end test of the request-scoped observability contract: the
//! id the server mints for a request is returned in the
//! `x-pkgrec-request-id` response header and must correlate, for that
//! same request, the response body, the `/debug/slow` ring entry, the
//! structured access-log line, and the flight-recorder export — one
//! id, four places, zero ambiguity about which request did what.
//!
//! The flight recorder's enable flag is process-global, so tests that
//! arm it serialize on the same lock the chaos tests use.

use std::io::{Read, Write};
use std::net::TcpStream;
use std::path::PathBuf;
use std::sync::{Mutex, MutexGuard};
use std::time::Duration;

use pkgrec::data::text::parse_database;
use pkgrec::serve::server::REQUEST_ID_HEADER;
use pkgrec::serve::{start, AccessLog, ServerConfig, ServerHandle, Service, ServiceConfig};
use pkgrec::trace::flight;
use pkgrec::trace::json::{self, Json};

static SERIAL: Mutex<()> = Mutex::new(());

fn serial() -> MutexGuard<'static, ()> {
    SERIAL.lock().unwrap_or_else(|e| e.into_inner())
}

const DB: &str = "\
relation item(id: int, price: int)
1, 10
2, 20
3, 30
4, 40
";

const QUERY: &str = "q(x, p) :- item(x, p).";

/// A scratch directory that cleans up after itself even on panic.
struct Scratch(PathBuf);

impl Scratch {
    fn new(tag: &str) -> Scratch {
        let dir = std::env::temp_dir().join(format!("pkgrec-obs-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).expect("create scratch dir");
        Scratch(dir)
    }

    fn join(&self, name: &str) -> PathBuf {
        self.0.join(name)
    }
}

impl Drop for Scratch {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

/// One request on a fresh connection; returns (status, headers, body).
/// Unlike the robustness tests' reader this keeps the raw header block
/// so the `x-pkgrec-request-id` header can be inspected.
fn request(handle: &ServerHandle, method: &str, path: &str, body: &str) -> (u16, String, String) {
    let mut stream = TcpStream::connect(handle.addr()).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    let msg = format!(
        "{method} {path} HTTP/1.1\r\nHost: t\r\nConnection: close\r\n\
         Content-Length: {}\r\n\r\n{body}",
        body.len()
    );
    stream.write_all(msg.as_bytes()).expect("write request");

    let mut buf = Vec::new();
    let mut chunk = [0u8; 4096];
    let head_end = loop {
        if let Some(i) = buf.windows(4).position(|w| w == b"\r\n\r\n") {
            break i;
        }
        match stream.read(&mut chunk) {
            Ok(0) | Err(_) => panic!("connection died before a full response"),
            Ok(n) => buf.extend_from_slice(&chunk[..n]),
        }
    };
    let head = String::from_utf8_lossy(&buf[..head_end]).to_string();
    let status: u16 = head
        .split(' ')
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or_else(|| panic!("bad status line in {head}"));
    let content_length: usize = head
        .lines()
        .find_map(|l| l.strip_prefix("Content-Length: "))
        .and_then(|v| v.parse().ok())
        .expect("Content-Length header");
    let mut body = buf[head_end + 4..].to_vec();
    while body.len() < content_length {
        match stream.read(&mut chunk) {
            Ok(0) | Err(_) => panic!("connection died mid-body"),
            Ok(n) => body.extend_from_slice(&chunk[..n]),
        }
    }
    body.truncate(content_length);
    (status, head, String::from_utf8_lossy(&body).to_string())
}

/// The value of `header` in a raw header block, case-insensitive name.
fn header_value(head: &str, header: &str) -> Option<String> {
    head.lines().find_map(|l| {
        let (name, value) = l.split_once(':')?;
        name.eq_ignore_ascii_case(header)
            .then(|| value.trim().to_string())
    })
}

#[test]
fn request_id_correlates_header_body_slow_ring_access_log_and_flight() {
    let _s = serial();
    let scratch = Scratch::new("correlate");
    let log_path = scratch.join("access.jsonl");
    let flight_dir = scratch.join("flight");
    std::fs::create_dir_all(&flight_dir).unwrap();

    let mut service = Service::new(ServiceConfig {
        slow_threshold_ms: 0, // everything lands in the slow ring
        ..ServiceConfig::default()
    });
    service.add_db("shop", parse_database(DB).expect("fixture db parses"));
    service.set_access_log(AccessLog::open(&log_path).expect("open access log"));
    service.set_flight_dir(&flight_dir);
    flight::enable();
    let handle = start(ServerConfig::default(), service).expect("bind loopback");

    // A counting solve enumerates packages, so the flight recorder has
    // events to export for this request.
    let body = format!(r#"{{"db":"shop","problem":"count","query":"{QUERY}","max_size":4}}"#);
    let (status, head, text) = request(&handle, "POST", "/solve", &body);
    flight::disable();
    assert_eq!(status, 200, "{text}");

    // The header id and the body id are the same id.
    let id = header_value(&head, REQUEST_ID_HEADER)
        .unwrap_or_else(|| panic!("missing {REQUEST_ID_HEADER} in {head}"));
    assert!(id.starts_with("req-"), "unexpected id format `{id}`");
    let resp = json::parse(&text).expect("solve body is JSON");
    assert_eq!(resp.get("request_id").and_then(Json::as_str), Some(&*id));

    // The same id names the request's entry in the slow ring.
    let (status, _, slow_text) = request(&handle, "GET", "/debug/slow", "");
    assert_eq!(status, 200);
    let slow = json::parse(&slow_text).expect("/debug/slow is JSON");
    let entries = slow.get("slow").and_then(Json::as_array).expect("slow array");
    let entry = entries
        .iter()
        .find(|e| e.get("request_id").and_then(Json::as_str) == Some(&*id))
        .unwrap_or_else(|| panic!("id {id} not in slow ring: {slow_text}"));
    assert_eq!(entry.get("db").and_then(Json::as_str), Some("shop"));
    assert_eq!(entry.get("outcome").and_then(Json::as_str), Some("exact"));
    assert_eq!(entry.get("status").and_then(Json::as_u64), Some(200));

    // The same id names the flight-recorder export, and the export is
    // well-formed JSONL with at least one search event.
    let flight_path = flight_dir.join(format!("{id}.flight.jsonl"));
    let recording = std::fs::read_to_string(&flight_path)
        .unwrap_or_else(|e| panic!("flight export {} missing: {e}", flight_path.display()));
    let lines: Vec<&str> = recording.lines().collect();
    assert!(!lines.is_empty(), "flight export must not be empty");
    for line in &lines {
        json::parse(line).unwrap_or_else(|e| panic!("bad flight JSONL line `{line}`: {e}"));
    }

    // Shutdown flushes the access log; the same id tags its line.
    handle.shutdown();
    let log = std::fs::read_to_string(&log_path).expect("read access log");
    let line = log
        .lines()
        .find(|l| l.contains(&format!(r#""request_id":"{id}""#)))
        .unwrap_or_else(|| panic!("id {id} not in access log:\n{log}"));
    let record = json::parse(line).expect("access-log line is JSON");
    assert_eq!(record.get("db").and_then(Json::as_str), Some("shop"));
    assert_eq!(record.get("problem").and_then(Json::as_str), Some("count"));
    assert_eq!(record.get("outcome").and_then(Json::as_str), Some("exact"));
    assert_eq!(record.get("status").and_then(Json::as_u64), Some(200));
    assert!(record.get("total_us").and_then(Json::as_u64).is_some());
    assert!(record.get("solve_us").and_then(Json::as_u64).is_some());
}

#[test]
fn tail_sampled_profile_reaches_debug_profile_and_disk_keyed_by_request_id() {
    let _s = serial();
    let scratch = Scratch::new("profile");
    let flight_dir = scratch.join("flight");
    std::fs::create_dir_all(&flight_dir).unwrap();

    let mut service = Service::new(ServiceConfig {
        profile_slow_ms: Some(0), // tail-sample every request
        ..ServiceConfig::default()
    });
    service.add_db("shop", parse_database(DB).expect("fixture db parses"));
    service.set_flight_dir(&flight_dir);
    let handle = start(ServerConfig::default(), service).expect("bind loopback");

    let body = format!(r#"{{"db":"shop","problem":"count","query":"{QUERY}","max_size":4}}"#);
    let (status, head, text) = request(&handle, "POST", "/solve", &body);
    assert_eq!(status, 200, "{text}");
    let id = header_value(&head, REQUEST_ID_HEADER).expect("request id header");

    // The same id names the request's entry in the profile ring, and
    // the entry carries a timeline summary with real phases.
    let (status, _, prof_text) = request(&handle, "GET", "/debug/profile", "");
    assert_eq!(status, 200);
    let prof = json::parse(&prof_text).expect("/debug/profile is JSON");
    assert_eq!(prof.get("profile_slow_ms").and_then(Json::as_u64), Some(0));
    let entries = prof
        .get("profiled")
        .and_then(Json::as_array)
        .expect("profiled array");
    let entry = entries
        .iter()
        .find(|e| e.get("request_id").and_then(Json::as_str) == Some(&*id))
        .unwrap_or_else(|| panic!("id {id} not in profile ring: {prof_text}"));
    assert_eq!(entry.get("status").and_then(Json::as_u64), Some(200));
    assert_eq!(entry.get("outcome").and_then(Json::as_str), Some("exact"));
    let timeline = entry.get("timeline").expect("timeline summary");
    let phases = timeline
        .get("phases")
        .and_then(Json::as_array)
        .expect("phase totals");
    assert!(
        phases
            .iter()
            .any(|p| p.get("name").and_then(Json::as_str) == Some("compile")),
        "no compile phase in {prof_text}"
    );

    // The same id names the on-disk Chrome trace next to the flight
    // exports, and that file is a self-identifying valid trace.
    let profile_path = flight_dir.join(format!("{id}.profile.json"));
    let trace = std::fs::read_to_string(&profile_path)
        .unwrap_or_else(|e| panic!("profile export {} missing: {e}", profile_path.display()));
    let parsed = json::parse(&trace).expect("profile export is JSON");
    assert_eq!(parsed.get("request_id").and_then(Json::as_str), Some(&*id));
    assert!(
        parsed
            .get("traceEvents")
            .and_then(Json::as_array)
            .is_some_and(|evs| !evs.is_empty()),
        "empty traceEvents in {trace}"
    );
    handle.shutdown();
}

#[test]
fn error_responses_carry_the_request_id_in_header_and_body() {
    let _s = serial();
    let mut service = Service::new(ServiceConfig::default());
    service.add_db("shop", parse_database(DB).unwrap());
    let handle = start(ServerConfig::default(), service).unwrap();

    // A typed solve error still gets an id in header and body.
    let (status, head, text) = request(
        &handle,
        "POST",
        "/solve",
        r#"{"db":"void","problem":"eval","query":"q(x, p) :- item(x, p)."}"#,
    );
    assert_eq!(status, 404);
    let id = header_value(&head, REQUEST_ID_HEADER).expect("id on error response");
    let resp = json::parse(&text).unwrap();
    assert_eq!(resp.get("request_id").and_then(Json::as_str), Some(&*id));
    assert_eq!(
        resp.get("error").and_then(|e| e.get("kind")).and_then(Json::as_str),
        Some("unknown_db")
    );

    // Unknown routes too: every response names its request.
    let (status, head, text) = request(&handle, "GET", "/nope", "");
    assert_eq!(status, 404);
    let id = header_value(&head, REQUEST_ID_HEADER).expect("id on 404 route");
    assert!(text.contains(&id), "{text}");

    // Distinct requests get distinct ids.
    let (_, head_a, _) = request(&handle, "GET", "/health", "");
    let (_, head_b, _) = request(&handle, "GET", "/health", "");
    let a = header_value(&head_a, REQUEST_ID_HEADER);
    let b = header_value(&head_b, REQUEST_ID_HEADER);
    assert!(a.is_some() && b.is_some() && a != b, "{a:?} vs {b:?}");
    handle.shutdown();
}

#[test]
fn prometheus_exposition_and_explain_answer_over_http() {
    let _s = serial();
    let mut service = Service::new(ServiceConfig::default());
    service.add_db("shop", parse_database(DB).unwrap());
    let handle = start(ServerConfig::default(), service).unwrap();

    let body = format!(r#"{{"db":"shop","problem":"count","query":"{QUERY}","max_size":3}}"#);
    let (status, _, _) = request(&handle, "POST", "/solve", &body);
    assert_eq!(status, 200);

    // Prometheus text format on the same /metrics path, content-typed
    // as text/plain, with the serve counters present.
    let (status, head, text) = request(&handle, "GET", "/metrics?format=prometheus", "");
    assert_eq!(status, 200);
    let ctype = header_value(&head, "content-type").expect("content type");
    assert!(ctype.starts_with("text/plain"), "{ctype}");
    assert!(text.contains("# TYPE pkgrec_serve_requests_total counter"), "{text}");
    assert!(text.contains("pkgrec_serve_requests_total 1"), "{text}");
    assert!(text.contains("pkgrec_build_info{"), "{text}");
    let (status, _, _) = request(&handle, "GET", "/metrics?format=sideways", "");
    assert_eq!(status, 400, "unknown format is a typed error");

    // EXPLAIN over HTTP: the compiled plan for a query, without
    // solving anything.
    let (status, _, text) = request(&handle, "POST", "/explain?db=shop", QUERY);
    assert_eq!(status, 200, "{text}");
    let resp = json::parse(&text).unwrap();
    assert_eq!(resp.get("status").and_then(Json::as_str), Some("ok"));
    let plan = resp.get("plan").expect("plan report");
    assert_eq!(plan.get("kind").and_then(Json::as_str), Some("cq"));
    assert_eq!(plan.get("arity").and_then(Json::as_u64), Some(2));

    let (status, _, text) = request(&handle, "POST", "/explain?db=void", QUERY);
    assert_eq!(status, 404, "{text}");
    handle.shutdown();
}
