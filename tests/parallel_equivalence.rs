//! Parallel-engine equivalence: the prefix-partitioned multi-worker
//! search must be *bit-identical* to the sequential walk on completed
//! runs — same packages, same ratings, same statistics — for every
//! jobs level, and budget-interrupted parallel runs must still satisfy
//! the anytime contracts (certified lower bounds, charged steps within
//! the budget).

use proptest::prelude::*;

use pkgrec::core::{
    problems::cpp, problems::frp, problems::mbp, problems::rpp, Constraint, Ext, PackageFn,
    RecInstance, SolveOptions,
};
use pkgrec::data::{tuple, AttrType, Database, Relation, RelationSchema};
use pkgrec::query::{ConjunctiveQuery, Query};

const JOBS_LEVELS: [usize; 3] = [2, 4, 8];

/// Same generator as `solver_invariants`: items with groups and scores,
/// budget 2 items, val = total score, optional PTIME constraint.
fn instance(scores: Vec<(i64, i64)>, with_qc: bool, k: usize) -> RecInstance {
    let schema = RelationSchema::new(
        "item",
        [("id", AttrType::Int), ("grp", AttrType::Int), ("score", AttrType::Int)],
    )
    .expect("valid schema");
    let rel = Relation::from_tuples(
        schema,
        scores
            .iter()
            .enumerate()
            .map(|(i, &(g, s))| tuple![i as i64, g, s]),
    )
    .expect("schema-conformant");
    let mut db = Database::new();
    db.add_relation(rel).expect("fresh db");
    let mut inst = RecInstance::new(db, Query::Cq(ConjunctiveQuery::identity("item", 3)))
        .with_budget(2.0)
        .with_val(PackageFn::sum_col(2, true))
        .with_k(k);
    if with_qc {
        inst = inst.with_qc(Constraint::ptime("distinct groups", |p, _| {
            let mut seen = std::collections::BTreeSet::new();
            p.iter().all(|t| seen.insert(t[1].clone()))
        }));
    }
    inst
}

fn scores_strategy() -> impl Strategy<Value = Vec<(i64, i64)>> {
    prop::collection::vec((0i64..3, 1i64..50), 1..8)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Completed runs are bit-identical across engines: the whole FRP
    /// outcome (selection, exactness, statistics), the MBP maximum
    /// bound, the CPP count, and the RPP verdict all match jobs=1
    /// exactly at every jobs level.
    #[test]
    fn all_solvers_agree_across_jobs_levels(
        scores in scores_strategy(),
        with_qc in any::<bool>(),
        k in 1usize..4,
    ) {
        let inst = instance(scores, with_qc, k);
        let seq = SolveOptions::default().with_jobs(1);
        let topk_seq = frp::top_k(&inst, &seq).unwrap();
        let mb_seq = mbp::maximum_bound(&inst, &seq).unwrap();
        let count_seq = cpp::count_valid(&inst, Ext::Finite(10.0), &seq).unwrap();
        let rpp_seq = topk_seq
            .value
            .as_ref()
            .map(|sel| rpp::is_top_k(&inst, sel, &seq).unwrap());
        for jobs in JOBS_LEVELS {
            let par = SolveOptions::default().with_jobs(jobs);
            prop_assert_eq!(&frp::top_k(&inst, &par).unwrap(), &topk_seq, "jobs {}", jobs);
            prop_assert_eq!(&mbp::maximum_bound(&inst, &par).unwrap(), &mb_seq, "jobs {}", jobs);
            prop_assert_eq!(
                &cpp::count_valid(&inst, Ext::Finite(10.0), &par).unwrap(),
                &count_seq,
                "jobs {}", jobs
            );
            let rpp_par = topk_seq
                .value
                .as_ref()
                .map(|sel| rpp::is_top_k(&inst, sel, &par).unwrap());
            prop_assert_eq!(&rpp_par, &rpp_seq, "jobs {}", jobs);
        }
    }

    /// A budget-interrupted parallel run keeps the anytime contracts:
    /// the partial count is a certified lower bound on the exact count,
    /// never exceeds the steps actually charged, the charged steps stay
    /// within the budget, and non-exactness always names the cut-off.
    #[test]
    fn interrupted_parallel_runs_honor_anytime_contracts(
        scores in scores_strategy(),
        with_qc in any::<bool>(),
        budget in 1u64..30,
        jobs_idx in 0usize..3,
    ) {
        let inst = instance(scores, with_qc, 1);
        let jobs = JOBS_LEVELS[jobs_idx];
        let exact = cpp::count_valid(&inst, Ext::NegInf, &SolveOptions::default().with_jobs(jobs))
            .unwrap();
        prop_assert!(exact.exact);
        let bounded = cpp::count_valid(
            &inst,
            Ext::NegInf,
            &SolveOptions::limited(budget).with_jobs(jobs),
        )
        .unwrap();
        prop_assert_eq!(bounded.exact, bounded.stats.interrupted.is_none());
        prop_assert!(bounded.value <= exact.value);
        prop_assert!(bounded.value <= u128::from(bounded.stats.packages_enumerated));
        prop_assert!(bounded.stats.packages_enumerated <= budget);
        if bounded.exact {
            prop_assert_eq!(bounded.value, exact.value);
        }

        // FRP under the same cut: a *finished* budgeted parallel run is
        // the unbounded answer, and an unfinished one says so.
        let full = frp::top_k(&inst, &SolveOptions::default().with_jobs(jobs)).unwrap();
        let cut = frp::top_k(&inst, &SolveOptions::limited(budget).with_jobs(jobs)).unwrap();
        if cut.exact {
            prop_assert_eq!(&cut.value, &full.value);
        } else {
            prop_assert!(cut.interrupted.is_some());
        }
    }
}

/// The refutation search breaks on the canonically *first* dominating
/// package, so even the explanation of a "no" answer is engine-
/// independent.
#[test]
fn refutations_are_deterministic_across_engines() {
    // Items {1,2,3}, budget 2 items, val = sum: {1} (val 1) is beaten
    // first by {1,2} in canonical subset order.
    let mut db = Database::new();
    let r = RelationSchema::new("r", [("a", AttrType::Int)]).unwrap();
    db.add_relation(Relation::from_tuples(r, [tuple![1], tuple![2], tuple![3]]).unwrap())
        .unwrap();
    let inst = RecInstance::new(db, Query::Cq(ConjunctiveQuery::identity("r", 1)))
        .with_budget(2.0)
        .with_val(PackageFn::sum_col(0, true));
    let sel = vec![pkgrec::core::Package::new([tuple![1]])];
    let seq = rpp::check_top_k(&inst, &sel, &SolveOptions::default().with_jobs(1))
        .unwrap()
        .unwrap_err();
    assert!(matches!(
        &seq,
        rpp::RppRefutation::Dominated { better, .. } if *better == pkgrec::core::Package::new([tuple![1], tuple![2]])
    ));
    for jobs in JOBS_LEVELS {
        let par = rpp::check_top_k(&inst, &sel, &SolveOptions::default().with_jobs(jobs))
            .unwrap()
            .unwrap_err();
        assert_eq!(par, seq, "jobs {jobs}");
    }
}
