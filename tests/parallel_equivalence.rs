//! Parallel-engine equivalence: the prefix-partitioned multi-worker
//! search must be *bit-identical* to the sequential walk on completed
//! runs — same packages, same ratings, same statistics — for every
//! jobs level, and budget-interrupted parallel runs must still satisfy
//! the anytime contracts (certified lower bounds, charged steps within
//! the budget).

use proptest::prelude::*;

use pkgrec::core::{
    problems::cpp, problems::frp, problems::mbp, problems::rpp, Budget, CancelFlag, Constraint,
    Ext, PackageFn, RecInstance, SolveOptions,
};
use pkgrec::data::{tuple, AttrType, Database, Relation, RelationSchema};
use pkgrec::query::{ConjunctiveQuery, Query};

const JOBS_LEVELS: [usize; 3] = [2, 4, 8];

/// Same generator as `solver_invariants`: items with groups and scores,
/// budget 2 items, val = total score, optional PTIME constraint.
fn instance(scores: Vec<(i64, i64)>, with_qc: bool, k: usize) -> RecInstance {
    let schema = RelationSchema::new(
        "item",
        [("id", AttrType::Int), ("grp", AttrType::Int), ("score", AttrType::Int)],
    )
    .expect("valid schema");
    let rel = Relation::from_tuples(
        schema,
        scores
            .iter()
            .enumerate()
            .map(|(i, &(g, s))| tuple![i as i64, g, s]),
    )
    .expect("schema-conformant");
    let mut db = Database::new();
    db.add_relation(rel).expect("fresh db");
    let mut inst = RecInstance::new(db, Query::Cq(ConjunctiveQuery::identity("item", 3)))
        .with_budget(2.0)
        .with_val(PackageFn::sum_col(2, true))
        .with_k(k);
    if with_qc {
        inst = inst.with_qc(Constraint::ptime("distinct groups", |p, _| {
            let mut seen = std::collections::BTreeSet::new();
            p.iter().all(|t| seen.insert(t[1].clone()))
        }));
    }
    inst
}

fn scores_strategy() -> impl Strategy<Value = Vec<(i64, i64)>> {
    prop::collection::vec((0i64..3, 1i64..50), 1..8)
}

/// Like [`instance`] but with no item-count budget: the full 2^n
/// package space is enumerated, so for large enough n the search is
/// guaranteed to cross the amortized (per-worker) deadline and
/// cancellation polls.
fn wide_instance(scores: Vec<(i64, i64)>) -> RecInstance {
    let schema = RelationSchema::new(
        "item",
        [("id", AttrType::Int), ("grp", AttrType::Int), ("score", AttrType::Int)],
    )
    .expect("valid schema");
    let rel = Relation::from_tuples(
        schema,
        scores
            .iter()
            .enumerate()
            .map(|(i, &(g, s))| tuple![i as i64, g, s]),
    )
    .expect("schema-conformant");
    let mut db = Database::new();
    db.add_relation(rel).expect("fresh db");
    RecInstance::new(db, Query::Cq(ConjunctiveQuery::identity("item", 3)))
        .with_val(PackageFn::sum_col(2, true))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Completed runs are bit-identical across engines: the whole FRP
    /// outcome (selection, exactness, statistics), the MBP maximum
    /// bound, the CPP count, and the RPP verdict all match jobs=1
    /// exactly at every jobs level.
    #[test]
    fn all_solvers_agree_across_jobs_levels(
        scores in scores_strategy(),
        with_qc in any::<bool>(),
        k in 1usize..4,
    ) {
        let inst = instance(scores, with_qc, k);
        let seq = SolveOptions::default().with_jobs(1);
        let topk_seq = frp::top_k(&inst, &seq).unwrap();
        let mb_seq = mbp::maximum_bound(&inst, &seq).unwrap();
        let count_seq = cpp::count_valid(&inst, Ext::Finite(10.0), &seq).unwrap();
        let rpp_seq = topk_seq
            .value
            .as_ref()
            .map(|sel| rpp::is_top_k(&inst, sel, &seq).unwrap());
        for jobs in JOBS_LEVELS {
            let par = SolveOptions::default().with_jobs(jobs);
            prop_assert_eq!(&frp::top_k(&inst, &par).unwrap(), &topk_seq, "jobs {}", jobs);
            prop_assert_eq!(&mbp::maximum_bound(&inst, &par).unwrap(), &mb_seq, "jobs {}", jobs);
            prop_assert_eq!(
                &cpp::count_valid(&inst, Ext::Finite(10.0), &par).unwrap(),
                &count_seq,
                "jobs {}", jobs
            );
            let rpp_par = topk_seq
                .value
                .as_ref()
                .map(|sel| rpp::is_top_k(&inst, sel, &par).unwrap());
            prop_assert_eq!(&rpp_par, &rpp_seq, "jobs {}", jobs);
        }
    }

    /// A budget-interrupted parallel run keeps the anytime contracts:
    /// the partial count is a certified lower bound on the exact count,
    /// never exceeds the steps actually charged, the charged steps stay
    /// within the budget, and non-exactness always names the cut-off.
    #[test]
    fn interrupted_parallel_runs_honor_anytime_contracts(
        scores in scores_strategy(),
        with_qc in any::<bool>(),
        budget in 1u64..30,
        jobs_idx in 0usize..3,
    ) {
        let inst = instance(scores, with_qc, 1);
        let jobs = JOBS_LEVELS[jobs_idx];
        let exact = cpp::count_valid(&inst, Ext::NegInf, &SolveOptions::default().with_jobs(jobs))
            .unwrap();
        prop_assert!(exact.exact);
        let bounded = cpp::count_valid(
            &inst,
            Ext::NegInf,
            &SolveOptions::limited(budget).with_jobs(jobs),
        )
        .unwrap();
        prop_assert_eq!(bounded.exact, bounded.stats.interrupted.is_none());
        prop_assert!(bounded.value <= exact.value);
        prop_assert!(bounded.value <= u128::from(bounded.stats.packages_enumerated));
        prop_assert!(bounded.stats.packages_enumerated <= budget);
        if bounded.exact {
            prop_assert_eq!(bounded.value, exact.value);
        }

        // FRP under the same cut: a *finished* budgeted parallel run is
        // the unbounded answer, and an unfinished one says so.
        let full = frp::top_k(&inst, &SolveOptions::default().with_jobs(jobs)).unwrap();
        let cut = frp::top_k(&inst, &SolveOptions::limited(budget).with_jobs(jobs)).unwrap();
        if cut.exact {
            prop_assert_eq!(&cut.value, &full.value);
        } else {
            prop_assert!(cut.interrupted.is_some());
        }
    }

    /// Cutting the same search at ever-later ticks refines the answer
    /// monotonically: sequentially (jobs=1, canonical enumeration
    /// order — the first b steps are a prefix of the first 2b) the
    /// partial count and the reported progress fraction never shrink
    /// as the budget grows. Parallel cuts at the same budgets are
    /// scheduling-dependent in *which* packages get the ticks, so they
    /// promise only the anytime bounds: a valid undercount and a
    /// progress fraction in [0, 1].
    #[test]
    fn progress_is_monotone_across_step_cuts(
        scores in scores_strategy(),
        with_qc in any::<bool>(),
        base in 1u64..20,
        jobs_idx in 0usize..3,
    ) {
        let inst = instance(scores, with_qc, 1);
        let jobs = JOBS_LEVELS[jobs_idx];
        let exact = cpp::count_valid(&inst, Ext::NegInf, &SolveOptions::default()).unwrap();
        let mut prev_count = 0u128;
        let mut prev_progress = 0.0f64;
        for budget in [base, base * 2, base * 4, base * 8] {
            // jobs=1 explicitly: a PKGREC_JOBS override must not turn
            // the sequential-monotonicity half into a parallel run
            // (work stealing makes parallel cuts anytime-only).
            let out =
                cpp::count_valid(&inst, Ext::NegInf, &SolveOptions::limited(budget).with_jobs(1))
                    .unwrap();
            prop_assert!(out.value <= exact.value);
            prop_assert!(out.value >= prev_count, "count shrank as budget grew");
            prev_count = out.value;
            match out.stats.progress_at_interrupt {
                Some(p) => {
                    prop_assert!(!out.exact);
                    prop_assert!((0.0..=1.0).contains(&p), "progress {p} out of range");
                    prop_assert!(
                        p >= prev_progress,
                        "progress receded: {p} < {prev_progress}"
                    );
                    prev_progress = p;
                }
                None => {
                    prop_assert!(out.exact);
                    prop_assert_eq!(out.value, exact.value);
                }
            }

            let par = cpp::count_valid(
                &inst,
                Ext::NegInf,
                &SolveOptions::limited(budget).with_jobs(jobs),
            )
            .unwrap();
            prop_assert!(par.value <= exact.value);
            if let Some(p) = par.stats.progress_at_interrupt {
                prop_assert!(!par.exact);
                prop_assert!((0.0..=1.0).contains(&p), "parallel progress {p} out of range");
            } else {
                prop_assert!(par.exact);
                prop_assert_eq!(par.value, exact.value);
            }
        }
    }

    /// Cancellation raised while a large search is in flight degrades
    /// to a best-so-far partial naming `cancelled` as the cut-off —
    /// never an error, never a wrong (over-counted) answer. The flag is
    /// raised before the solve, but polling is amortized *per worker*
    /// (every 1024 of a worker's own steps), so the search only
    /// notices mid-enumeration — and with 2^14+ packages across at
    /// most 8 workers, some worker is guaranteed to reach its poll.
    #[test]
    fn cancel_mid_search_degrades_to_a_partial(
        scores in prop::collection::vec((0i64..3, 1i64..50), 14..16),
        jobs_idx in 0usize..3,
    ) {
        let n = scores.len() as u32;
        let inst = wide_instance(scores);
        let jobs = JOBS_LEVELS[jobs_idx];
        let flag = CancelFlag::new();
        flag.cancel();
        let opts = SolveOptions::with_budget(Budget::default().cancellable(&flag)).with_jobs(jobs);
        let out = cpp::count_valid(&inst, Ext::NegInf, &opts).unwrap();
        prop_assert!(!out.exact);
        let cut = out.interrupted.as_ref().expect("cancelled run is interrupted");
        prop_assert_eq!(cut.resource.label(), "cancelled");
        prop_assert!(out.value < 1u128 << n, "partial must be a strict undercount");
        let p = out.stats.progress_at_interrupt.expect("interrupted run reports progress");
        prop_assert!((0.0..1.0).contains(&p));

        // Same cut through FRP. Its bound-pruned search may finish
        // before the first amortized poll; the contract is "exact, or
        // a typed cancellation" — never an error or a silent partial.
        let topk = frp::top_k(&inst, &opts).unwrap();
        if !topk.exact {
            prop_assert_eq!(
                topk.interrupted.as_ref().expect("interrupted").resource.label(),
                "cancelled"
            );
        }
    }

    /// An already-expired deadline behaves exactly like cancellation:
    /// the search runs to its first poll, then returns a partial that
    /// names `deadline`.
    #[test]
    fn expired_deadline_degrades_to_a_partial(
        scores in prop::collection::vec((0i64..3, 1i64..50), 14..16),
        jobs_idx in 0usize..3,
    ) {
        let inst = wide_instance(scores);
        let jobs = JOBS_LEVELS[jobs_idx];
        let opts = SolveOptions::with_budget(Budget::with_timeout(std::time::Duration::ZERO))
            .with_jobs(jobs);
        let out = cpp::count_valid(&inst, Ext::NegInf, &opts).unwrap();
        prop_assert!(!out.exact);
        prop_assert_eq!(
            out.interrupted.as_ref().expect("interrupted").resource.label(),
            "deadline"
        );
        let p = out.stats.progress_at_interrupt.expect("interrupted run reports progress");
        prop_assert!((0.0..1.0).contains(&p));
    }
}

/// The refutation search breaks on the canonically *first* dominating
/// package, so even the explanation of a "no" answer is engine-
/// independent.
#[test]
fn refutations_are_deterministic_across_engines() {
    // Items {1,2,3}, budget 2 items, val = sum: {1} (val 1) is beaten
    // first by {1,2} in canonical subset order.
    let mut db = Database::new();
    let r = RelationSchema::new("r", [("a", AttrType::Int)]).unwrap();
    db.add_relation(Relation::from_tuples(r, [tuple![1], tuple![2], tuple![3]]).unwrap())
        .unwrap();
    let inst = RecInstance::new(db, Query::Cq(ConjunctiveQuery::identity("r", 1)))
        .with_budget(2.0)
        .with_val(PackageFn::sum_col(0, true));
    let sel = vec![pkgrec::core::Package::new([tuple![1]])];
    let seq = rpp::check_top_k(&inst, &sel, &SolveOptions::default().with_jobs(1))
        .unwrap()
        .unwrap_err();
    assert!(matches!(
        &seq,
        rpp::RppRefutation::Dominated { better, .. } if *better == pkgrec::core::Package::new([tuple![1], tuple![2]])
    ));
    for jobs in JOBS_LEVELS {
        let par = rpp::check_top_k(&inst, &sel, &SolveOptions::default().with_jobs(jobs))
            .unwrap()
            .unwrap_err();
        assert_eq!(par, seq, "jobs {jobs}");
    }
}
