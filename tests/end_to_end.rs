//! End-to-end integration tests spanning all the workspace crates:
//! parse a query from text, run the full recommendation pipeline on a
//! domain workload, relax a failing query, adjust a deficient catalog,
//! and replay the paper's Example 1.1 shape.

use pkgrec::adjust::{arpp, ArppInstance};
use pkgrec::core::{
    problems::cpp, problems::frp, problems::mbp, problems::rpp, Constraint, Ext, PackageFn,
    RecInstance, SizeBound, SolveOptions,
};
use pkgrec::data::{tuple, Database, Relation};
use pkgrec::query::parser::{parse_fo, parse_query};
use pkgrec::query::{MetricSet, QueryLanguage, TableMetric};
use pkgrec::relax::{qrpp, QrppInstance, RelaxParam, RelaxSpec};
use pkgrec::workloads::{courses, teams, travel};
use rand::rngs::StdRng;
use rand::SeedableRng;

const OPTS: SolveOptions = SolveOptions::unbounded();

fn travel_db() -> Database {
    let mut flights = Relation::empty(travel::flight_schema());
    for row in [
        tuple![1, "edi", "nyc", 1, 420],
        tuple![2, "edi", "nyc", 1, 310],
        tuple![3, "edi", "bos", 1, 200],
    ] {
        flights.insert(row).unwrap();
    }
    let mut pois = Relation::empty(travel::poi_schema());
    for row in [
        tuple!["met", "nyc", "museum", 25, 120],
        tuple!["moma", "nyc", "museum", 25, 90],
        tuple!["guggenheim", "nyc", "museum", 25, 60],
        tuple!["broadway", "nyc", "theater", 90, 150],
        tuple!["high line", "nyc", "park", 0, 45],
    ] {
        pois.insert(row).unwrap();
    }
    let mut db = Database::new();
    db.add_relation(flights).unwrap();
    db.add_relation(pois).unwrap();
    db
}

#[test]
fn example_1_1_full_pipeline() {
    // FRP → RPP certification → MBP consistency → CPP sanity.
    let inst = travel::travel_instance(travel_db(), "edi", "nyc", 1, 300.0, 2);
    let sel = frp::top_k(&inst, &OPTS).unwrap().value.expect("plans exist");
    assert!(rpp::is_top_k(&inst, &sel, &OPTS).unwrap());

    // Compatibility: ≤ 2 museums, single flight per package.
    for pkg in &sel {
        let museums = pkg
            .iter()
            .filter(|t| t[3].as_str() == Some("museum"))
            .count();
        assert!(museums <= 2);
        let fnos: std::collections::BTreeSet<_> = pkg.iter().map(|t| t[0].clone()).collect();
        assert_eq!(fnos.len(), 1);
    }

    let bound = mbp::maximum_bound(&inst, &OPTS).unwrap().value.expect("bound exists");
    assert_eq!(bound, inst.val.eval(&sel[1]), "bound = rating of the k-th best");
    assert!(cpp::count_valid(&inst, bound, &OPTS).unwrap().value >= 2);
}

#[test]
fn parsed_query_drives_the_solver() {
    // Build the selection query from text instead of AST constructors.
    let q = parse_query(
        "q(f, p, n, t, k, m) :- flight(f, \"edi\", c, 1, p), poi(n, c, t, k, m), c = \"nyc\".",
    )
    .expect("parses");
    assert_eq!(q.language(), QueryLanguage::Cq);
    let inst = RecInstance::new(travel_db(), q)
        .with_qc(travel::travel_constraints())
        .with_cost(travel::visit_time_cost())
        .with_budget(300.0)
        .with_val(travel::travel_rating())
        .with_k(1);
    let sel = frp::top_k(&inst, &OPTS).unwrap().value.expect("plans exist");
    // Same top package as the AST-built instance.
    let ast_inst = travel::travel_instance(travel_db(), "edi", "nyc", 1, 300.0, 1);
    let ast_sel = frp::top_k(&ast_inst, &OPTS).unwrap().value.unwrap();
    assert_eq!(sel, ast_sel);
}

#[test]
fn parsed_fo_constraint_matches_builtin() {
    // The course prerequisite constraint, written in the FO surface
    // syntax, behaves like the programmatic one.
    let q = parse_fo(
        "qc() = exists c, a1, k1, r1, n. (rq(c, a1, k1, r1) & prereq(c, n) & \
         !(exists a2, k2, r2. rq(n, a2, k2, r2)))",
    )
    .expect("parses");
    let mut db = Database::new();
    let mut course_rel = Relation::empty(courses::course_schema());
    course_rel.insert(tuple![0, "db", 2, 3]).unwrap();
    course_rel.insert(tuple![1, "db", 2, 5]).unwrap();
    let mut prereq_rel = Relation::empty(courses::prereq_schema());
    prereq_rel.insert(tuple![1, 0]).unwrap();
    db.add_relation(course_rel).unwrap();
    db.add_relation(prereq_rel).unwrap();

    // `rq` vs the crate's ANSWER_RELATION name: rename by rebuilding the
    // constraint around the parsed query is overkill — instead compare
    // the semantics through instances by renaming the atom.
    let mut q = q;
    q.visit_atoms_mut(&mut |a| {
        if &*a.relation == "rq" {
            *a = pkgrec::query::RelAtom::new(pkgrec::core::ANSWER_RELATION, a.terms.clone());
        }
    });
    let parsed = Constraint::Query(q);
    let builtin = courses::prereq_constraint();

    let lone_advanced = pkgrec::core::Package::new([tuple![1, "db", 2, 5]]);
    let closed = pkgrec::core::Package::new([tuple![0, "db", 2, 3], tuple![1, "db", 2, 5]]);
    for pkg in [&lone_advanced, &closed] {
        assert_eq!(
            parsed.satisfied(pkg, &db, 4, None).unwrap(),
            builtin.satisfied(pkg, &db, 4, None).unwrap(),
        );
    }
}

#[test]
fn relaxation_pipeline_on_travel() {
    // Ask for flights to a city with no direct service; the relaxation
    // recommends widening the destination.
    let metrics = MetricSet::new().with(
        "city",
        TableMetric::new().with("jfk", "nyc", 12).with("bos", "nyc", 190),
    );
    let q = parse_query("q(f, p) :- flight(f, \"edi\", \"jfk\", 1, p).").expect("parses");
    let mut db = travel_db();
    db.remove_relation("poi");
    let base = RecInstance::new(db, q)
        .with_budget(1.0)
        .with_val(PackageFn::constant(Ext::Finite(1.0)))
        .with_metrics(metrics);
    let inst = QrppInstance {
        base,
        spec: RelaxSpec {
            constants: vec![RelaxParam::new(0, 2, "city")],
            builtin_constants: vec![],
            joins: vec![],
        },
        rating_bound: Ext::Finite(1.0),
        gap_budget: 50,
    };
    let w = qrpp(&inst, &OPTS).unwrap().expect("nyc is within 12 of jfk");
    assert_eq!(w.gap, 12);
}

#[test]
fn adjustment_pipeline_on_teams() {
    let mut rng = StdRng::seed_from_u64(4242);
    let db = teams::team_db(&mut rng, &teams::TeamConfig::default());
    // Demand a skill no generated expert can have, then allow hiring
    // from a pool that covers it.
    let inst = teams::team_instance(db.clone(), &["rust", "ml", "quantum"], 4.0, 1);
    let mut pool_rel = Relation::empty(teams::expert_schema());
    pool_rel.insert(tuple![99, "rust", 5, 10]).unwrap();
    pool_rel.insert(tuple![98, "ml", 5, 10]).unwrap();
    pool_rel.insert(tuple![97, "quantum", 5, 10]).unwrap();
    let mut pool = Database::new();
    pool.add_relation(pool_rel).unwrap();
    let arpp_inst = ArppInstance {
        base: inst,
        pool,
        rating_bound: Ext::NegInf,
        max_ops: 3,
    };
    let w = arpp(&arpp_inst, &OPTS).unwrap().expect("three hires always fix it");
    assert!(!w.adjustment.is_empty(), "nobody knows quantum computing yet");
    // The witness is minimal: one fewer operation admits no witness at
    // all (any witness under the smaller budget would contradict the
    // ascending-size search order).
    let smaller = ArppInstance {
        max_ops: w.adjustment.len() - 1,
        ..arpp_inst.clone()
    };
    assert!(arpp(&smaller, &OPTS).unwrap().is_none());
}

#[test]
fn size_bound_regimes_agree_where_they_overlap() {
    // With max package size ≥ |items| the constant bound is vacuous, so
    // both regimes give the same top-1.
    let inst_poly = travel::travel_instance(travel_db(), "edi", "nyc", 1, 200.0, 1);
    let inst_const = travel::travel_instance(travel_db(), "edi", "nyc", 1, 200.0, 1)
        .with_size_bound(SizeBound::Constant(100));
    assert_eq!(
        frp::top_k(&inst_poly, &OPTS).unwrap().value,
        frp::top_k(&inst_const, &OPTS).unwrap().value
    );
}

#[test]
fn step_budget_guards_the_search() {
    // FRP is anytime: an exhausted budget yields a partial outcome that
    // records which resource ran out, never a hang or a panic.
    let inst = travel::travel_instance(travel_db(), "edi", "nyc", 1, 500.0, 1);
    let out = frp::top_k(&inst, &SolveOptions::limited(5)).unwrap();
    assert!(!out.exact);
    let cut = out.stats.interrupted.expect("budget was exhausted");
    assert_eq!(cut.resource, pkgrec::core::Resource::Steps { limit: 5 });
    assert!(out.stats.packages_enumerated <= 5);

    // RPP is strict: it cannot certify an answer under the same budget,
    // so it reports the cut-off as an error instead of guessing.
    let full = frp::top_k(&inst, &OPTS).unwrap().value.expect("plans exist");
    let r = rpp::is_top_k(&inst, &full, &SolveOptions::limited(2));
    assert!(matches!(
        r,
        Err(pkgrec::core::CoreError::SearchLimitExceeded { .. })
    ));
}
