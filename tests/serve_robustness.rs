//! Integration tests for `pkgrec serve`'s robustness contract: under
//! injected faults — worker panics (in the HTTP handler *and* deep in
//! the search), delays past the deadline, severed connections,
//! overload, malformed input — the server returns a correct result or
//! a typed error, and keeps serving. Never a wrong answer, never a
//! hang, never a crash.
//!
//! The chaos harness is process-global, so every test that arms it (or
//! that must not see someone else's directives) takes the `SERIAL`
//! lock. Tests talk to the server over real loopback sockets with a
//! tiny hand-rolled HTTP/1.1 client.

use std::io::{Read, Write};
use std::net::TcpStream;
use std::sync::atomic::Ordering;
use std::sync::{Mutex, MutexGuard};
use std::time::Duration;

use pkgrec::data::text::parse_database;
use pkgrec::serve::{start, ServerConfig, ServerHandle, Service, ServiceConfig};
use pkgrec::trace::chaos;
use pkgrec::trace::json::{self, Json};

static SERIAL: Mutex<()> = Mutex::new(());

fn serial() -> MutexGuard<'static, ()> {
    SERIAL.lock().unwrap_or_else(|e| e.into_inner())
}

const DB: &str = "\
relation item(id: int, price: int)
1, 10
2, 20
3, 30
4, 40
";

const QUERY: &str = "q(x, p) :- item(x, p).";

fn server_with(server_cfg: ServerConfig, service_cfg: ServiceConfig) -> ServerHandle {
    let mut service = Service::new(service_cfg);
    service.add_db("shop", parse_database(DB).expect("fixture db parses"));
    start(server_cfg, service).expect("bind loopback")
}

fn server() -> ServerHandle {
    server_with(ServerConfig::default(), ServiceConfig::default())
}

/// Send one request on a fresh connection; return (status, body).
fn request(handle: &ServerHandle, method: &str, path: &str, body: &str) -> (u16, String) {
    let mut stream = TcpStream::connect(handle.addr()).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    send(&mut stream, method, path, body, false);
    read_response(&mut stream).expect("server must answer")
}

fn solve(handle: &ServerHandle, body: &str) -> (u16, Json) {
    let (status, text) = request(handle, "POST", "/solve", body);
    let parsed = json::parse(&text).unwrap_or_else(|e| panic!("invalid JSON `{text}`: {e}"));
    (status, parsed)
}

fn send(stream: &mut TcpStream, method: &str, path: &str, body: &str, keep_alive: bool) {
    let connection = if keep_alive { "keep-alive" } else { "close" };
    let msg = format!(
        "{method} {path} HTTP/1.1\r\nHost: t\r\nConnection: {connection}\r\n\
         Content-Length: {}\r\n\r\n{body}",
        body.len()
    );
    stream.write_all(msg.as_bytes()).expect("write request");
}

/// Minimal HTTP/1.1 response reader: status line, Content-Length, body.
/// Returns `None` when the connection dies before a full response — the
/// observable effect of a chaos `drop` directive.
fn read_response(stream: &mut TcpStream) -> Option<(u16, String)> {
    let mut buf = Vec::new();
    let mut chunk = [0u8; 4096];
    let head_end = loop {
        if let Some(i) = buf.windows(4).position(|w| w == b"\r\n\r\n") {
            break i;
        }
        match stream.read(&mut chunk) {
            Ok(0) | Err(_) => return None,
            Ok(n) => buf.extend_from_slice(&chunk[..n]),
        }
    };
    let head = String::from_utf8_lossy(&buf[..head_end]).to_string();
    let status: u16 = head.split(' ').nth(1)?.parse().ok()?;
    let content_length: usize = head
        .lines()
        .find_map(|l| l.strip_prefix("Content-Length: "))
        .and_then(|v| v.parse().ok())?;
    let mut body = buf[head_end + 4..].to_vec();
    while body.len() < content_length {
        match stream.read(&mut chunk) {
            Ok(0) | Err(_) => return None,
            Ok(n) => body.extend_from_slice(&chunk[..n]),
        }
    }
    body.truncate(content_length);
    Some((status, String::from_utf8_lossy(&body).to_string()))
}

fn error_kind(resp: &Json) -> Option<&str> {
    resp.get("error")?.get("kind")?.as_str()
}

#[test]
fn solves_all_problems_and_keeps_the_connection_alive() {
    let _s = serial();
    let handle = server();

    let (status, resp) = solve(
        &handle,
        &format!(r#"{{"db":"shop","problem":"count","query":"{QUERY}","max_size":4}}"#),
    );
    assert_eq!(status, 200, "{resp:?}");
    assert_eq!(resp.get("exact").and_then(Json::as_bool), Some(true));
    assert_eq!(resp.get("result").and_then(Json::as_u64), Some(16));

    // Keep-alive: two requests, one socket.
    let mut stream = TcpStream::connect(handle.addr()).unwrap();
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    let body = format!(r#"{{"db":"shop","problem":"eval","query":"{QUERY}"}}"#);
    send(&mut stream, "POST", "/solve", &body, true);
    let (status, _) = read_response(&mut stream).expect("first response");
    assert_eq!(status, 200);
    send(&mut stream, "POST", "/solve", &body, false);
    let (status, text) = read_response(&mut stream).expect("second response on same socket");
    assert_eq!(status, 200);
    let resp = json::parse(&text).unwrap();
    assert_eq!(
        resp.get("result").and_then(Json::as_array).map(<[Json]>::len),
        Some(4)
    );

    let (status, text) = request(&handle, "GET", "/health", "");
    assert_eq!(status, 200);
    assert!(text.contains("ok"));

    // The plan cache served the repeated (db, query, params) key.
    let service = handle.service();
    assert!(service.metrics.plan_cache_hits.load(Ordering::Relaxed) >= 1);
    handle.shutdown();
}

#[test]
fn handler_panic_is_contained_and_typed() {
    let _s = serial();
    let handle = server();
    // `serve.requests` is hit once per handled solve; panic on the 1st.
    chaos::arm("panic@serve.requests:1").unwrap();
    let (status, resp) = solve(
        &handle,
        &format!(r#"{{"db":"shop","problem":"eval","query":"{QUERY}"}}"#),
    );
    chaos::disarm();
    assert_eq!(status, 500, "{resp:?}");
    assert_eq!(error_kind(&resp), Some("internal_panic"));
    assert_eq!(
        handle.service().metrics.worker_panics.load(Ordering::Relaxed),
        1
    );
    // The worker survived: the very next request succeeds.
    let (status, resp) = solve(
        &handle,
        &format!(r#"{{"db":"shop","problem":"eval","query":"{QUERY}"}}"#),
    );
    assert_eq!(status, 200, "{resp:?}");
    handle.shutdown();
}

#[test]
fn search_panic_surfaces_as_typed_worker_panic() {
    let _s = serial();
    let handle = server();
    // `enumerate.nodes` fires per enumerated package, deep inside the
    // search: the engine's own catch_unwind fence converts the panic
    // to a typed CoreError::WorkerPanic, which serves as HTTP 500
    // `worker_panic` — not a dead worker, not a dead server.
    chaos::arm("panic@enumerate.nodes:2").unwrap();
    let (status, resp) = solve(
        &handle,
        &format!(r#"{{"db":"shop","problem":"count","query":"{QUERY}","max_size":4}}"#),
    );
    chaos::disarm();
    assert_eq!(status, 500, "{resp:?}");
    assert_eq!(error_kind(&resp), Some("worker_panic"));
    let (status, resp) = solve(
        &handle,
        &format!(r#"{{"db":"shop","problem":"count","query":"{QUERY}","max_size":4}}"#),
    );
    assert_eq!(status, 200, "{resp:?}");
    assert_eq!(resp.get("result").and_then(Json::as_u64), Some(16));
    handle.shutdown();
}

#[test]
fn injected_delay_past_the_deadline_degrades_to_a_partial() {
    let _s = serial();
    // Deadlines are polled every `pkgrec::core::Budget` CHECK_INTERVAL
    // (1024) steps, so the space must be big enough to reach a poll:
    // 11 items → 2^11 = 2048 packages.
    let mut txt = String::from("relation item(id: int, price: int)\n");
    for i in 0..11 {
        txt.push_str(&format!("{i}, {}\n", 10 * i));
    }
    let mut service = Service::new(ServiceConfig::default());
    service.add_db("big", parse_database(&txt).unwrap());
    let handle = start(ServerConfig::default(), service).unwrap();
    // Sleep 150 ms at the 5th enumerated package while the request
    // allows 40 ms: the deadline trips mid-search and the server
    // returns the best-so-far partial answer, not an error.
    chaos::arm("delay@enumerate.nodes:5:150").unwrap();
    let (status, resp) = solve(
        &handle,
        &format!(r#"{{"db":"big","problem":"count","query":"{QUERY}","deadline_ms":40}}"#),
    );
    chaos::disarm();
    assert_eq!(status, 200, "{resp:?}");
    assert_eq!(resp.get("exact").and_then(Json::as_bool), Some(false));
    let cut = resp.get("interrupted").expect("interruption is reported");
    assert_eq!(cut.get("resource").and_then(Json::as_str), Some("deadline"));
    // The partial count is a valid lower bound on the true 2048.
    let partial = resp.get("result").and_then(Json::as_u64).unwrap();
    assert!(partial < 2048, "partial {partial} must be a strict prefix");
    assert_eq!(
        handle
            .service()
            .metrics
            .deadline_partial
            .load(Ordering::Relaxed),
        1
    );
    handle.shutdown();
}

#[test]
fn dropped_connection_severs_cleanly_and_server_lives() {
    let _s = serial();
    let handle = server();
    chaos::arm("drop@serve.request:1").unwrap();
    let mut stream = TcpStream::connect(handle.addr()).unwrap();
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    let body = format!(r#"{{"db":"shop","problem":"eval","query":"{QUERY}"}}"#);
    send(&mut stream, "POST", "/solve", &body, false);
    // The chaos drop directive severs before any response: clean EOF,
    // not a hang.
    assert!(read_response(&mut stream).is_none(), "connection must die");
    chaos::disarm();
    let (status, _) = solve(&handle, &body);
    assert_eq!(status, 200, "server must survive the severed connection");
    handle.shutdown();
}

#[test]
fn overload_sheds_with_typed_503_and_retry_after() {
    let _s = serial();
    let handle = server_with(
        ServerConfig {
            workers: 1,
            queue_cap: 1,
            ..ServerConfig::default()
        },
        ServiceConfig::default(),
    );
    // Occupy the single worker with an open connection it is reading
    // from, fill the queue of one with a second, then watch the third
    // get shed with a typed answer instead of a silent drop.
    let _busy = TcpStream::connect(handle.addr()).unwrap();
    std::thread::sleep(Duration::from_millis(100));
    let _queued = TcpStream::connect(handle.addr()).unwrap();
    std::thread::sleep(Duration::from_millis(100));
    let mut shed = TcpStream::connect(handle.addr()).unwrap();
    shed.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
    let (status, text) = read_response(&mut shed).expect("shed connection gets an answer");
    assert_eq!(status, 503, "{text}");
    let resp = json::parse(&text).unwrap();
    assert_eq!(error_kind(&resp), Some("overloaded"));
    assert!(
        resp.get("error")
            .and_then(|e| e.get("retry_after_ms"))
            .and_then(Json::as_u64)
            .is_some(),
        "{text}"
    );
    assert!(
        handle
            .service()
            .metrics
            .rejected_overload
            .load(Ordering::Relaxed)
            >= 1
    );
    handle.shutdown();
}

#[test]
fn malformed_inputs_get_typed_errors_not_crashes() {
    let _s = serial();
    let handle = server();

    // Broken JSON body.
    let (status, resp) = solve(&handle, "{this is not json");
    assert_eq!(status, 400);
    assert_eq!(error_kind(&resp), Some("bad_request"));

    // Unknown database.
    let (status, resp) = solve(
        &handle,
        &format!(r#"{{"db":"void","problem":"eval","query":"{QUERY}"}}"#),
    );
    assert_eq!(status, 404);
    assert_eq!(error_kind(&resp), Some("unknown_db"));

    // Unparseable query.
    let (status, resp) = solve(&handle, r#"{"db":"shop","problem":"eval","query":"q(x :-("}"#);
    assert_eq!(status, 400);
    assert_eq!(error_kind(&resp), Some("parse_error"));

    // Broken HTTP framing.
    let mut stream = TcpStream::connect(handle.addr()).unwrap();
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    stream.write_all(b"NONSENSE\r\n\r\n").unwrap();
    let (status, text) = read_response(&mut stream).expect("typed framing error");
    assert_eq!(status, 400, "{text}");

    // Body bigger than the cap is refused up front.
    let mut stream = TcpStream::connect(handle.addr()).unwrap();
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    stream
        .write_all(b"POST /solve HTTP/1.1\r\nContent-Length: 99999999\r\n\r\n")
        .unwrap();
    let (status, _) = read_response(&mut stream).expect("typed too-large error");
    assert_eq!(status, 413);

    // GET of a bad route.
    let (status, _) = request(&handle, "GET", "/nope", "");
    assert_eq!(status, 404);

    // The server is still healthy after all of that.
    let (status, _) = request(&handle, "GET", "/health", "");
    assert_eq!(status, 200);
    handle.shutdown();
}

#[test]
fn metrics_endpoint_reports_the_ledger_as_valid_json() {
    let _s = serial();
    let handle = server();
    let body = format!(r#"{{"db":"shop","problem":"count","query":"{QUERY}","max_size":3}}"#);
    solve(&handle, &body);
    solve(&handle, &body);
    let (status, text) = request(&handle, "GET", "/metrics", "");
    assert_eq!(status, 200);
    let m = json::parse(&text).unwrap_or_else(|e| panic!("metrics not JSON: {e}\n{text}"));
    let serve = m.get("serve").expect("serve section");
    assert_eq!(serve.get("requests").and_then(Json::as_u64), Some(2));
    assert_eq!(serve.get("ok").and_then(Json::as_u64), Some(2));
    assert_eq!(serve.get("plan_cache_misses").and_then(Json::as_u64), Some(1));
    assert_eq!(serve.get("plan_cache_hits").and_then(Json::as_u64), Some(1));
    let latency = m.get("latency_us").expect("latency section");
    assert_eq!(latency.get("count").and_then(Json::as_u64), Some(2));
    assert!(m.get("trace").is_some(), "merged trace report present");
    assert_eq!(
        m.get("dbs").and_then(Json::as_array).map(<[Json]>::len),
        Some(1)
    );
    handle.shutdown();
}
