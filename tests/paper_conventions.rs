//! Tests pinning the paper's Section 2 conventions to the API — the
//! definitional details that are easy to get subtly wrong and that the
//! reductions depend on.

use pkgrec::core::{
    problems::cpp, problems::frp, problems::mbp, problems::rpp, Constraint, Ext, Package,
    PackageFn, RecInstance, SizeBound, SolveOptions,
};
use pkgrec::data::{tuple, AttrType, Database, Relation, RelationSchema};
use pkgrec::query::{ConjunctiveQuery, Query};

const OPTS: SolveOptions = SolveOptions::unbounded();

fn db(n: i64) -> Database {
    let schema = RelationSchema::new("r", [("a", AttrType::Int)]).unwrap();
    let rel = Relation::from_tuples(schema, (0..n).map(|i| tuple![i])).unwrap();
    let mut db = Database::new();
    db.add_relation(rel).unwrap();
    db
}

fn base(n: i64) -> RecInstance {
    RecInstance::new(db(n), Query::Cq(ConjunctiveQuery::identity("r", 1)))
        .with_val(PackageFn::sum_col(0, true))
}

/// Section 2: `cost(∅) = ∞` means the empty package is never selected
/// under any finite budget.
#[test]
fn empty_package_is_excluded_by_the_cost_convention() {
    let inst = base(2).with_budget(1e12);
    let sel = frp::top_k(&inst, &OPTS).unwrap().value.unwrap();
    assert!(!sel[0].is_empty());
    // And {∅} is not a top-1 selection.
    assert!(!rpp::is_top_k(&inst, &[Package::empty()], &OPTS).unwrap());
}

/// Section 2, condition (5): *every* member of a top-k selection must
/// weakly dominate *every* valid outsider — not just the weakest member.
#[test]
fn condition_5_compares_against_the_minimum_member() {
    // Items 0..4, packages limited to singletons; vals are 0,1,2,3.
    let inst = base(4).with_budget(1.0).with_k(2);
    // {3, 2} is the top-2; {3, 1} is not, because 2 > 1 is valid and
    // outside.
    let good = vec![Package::new([tuple![3]]), Package::new([tuple![2]])];
    let bad = vec![Package::new([tuple![3]]), Package::new([tuple![1]])];
    assert!(rpp::is_top_k(&inst, &good, &OPTS).unwrap());
    assert!(!rpp::is_top_k(&inst, &bad, &OPTS).unwrap());
}

/// Section 2, condition (6): the k packages must be pairwise distinct —
/// but ties in *rating* are fine.
#[test]
fn distinctness_is_by_package_not_by_rating() {
    let inst = base(3)
        .with_budget(1.0)
        .with_val(PackageFn::constant(Ext::Finite(1.0)))
        .with_k(3);
    let sel = frp::top_k(&inst, &OPTS).unwrap().value.unwrap();
    assert_eq!(sel.len(), 3);
    let distinct: std::collections::BTreeSet<_> = sel.iter().collect();
    assert_eq!(distinct.len(), 3);
    // All three ratings are equal.
    assert!(sel.iter().all(|p| inst.val.eval(p) == Ext::Finite(1.0)));
}

/// Section 5: the maximum bound is unique when it exists, and it is a
/// bound while nothing larger is.
#[test]
fn maximum_bound_uniqueness() {
    let inst = base(4).with_budget(2.0).with_k(3);
    let b = mbp::maximum_bound(&inst, &OPTS).unwrap().value.unwrap();
    assert!(mbp::is_maximum_bound(&inst, b, &OPTS).unwrap());
    for delta in [-1.0, -0.5, 0.5, 1.0] {
        let other = Ext::Finite(b.as_finite().unwrap() + delta);
        assert!(
            !mbp::is_maximum_bound(&inst, other, &OPTS).unwrap(),
            "B = {other} must not also be maximum"
        );
    }
}

/// Section 5 validity: the CPP count at `B = −∞` equals the number of
/// packages passing conditions (a)–(c) alone, and the empty package is
/// counted exactly when its cost allows.
#[test]
fn cpp_counts_match_manual_enumeration() {
    let inst = base(3).with_budget(2.0);
    // Nonempty subsets of 3 items with ≤ 2 elements: 3 + 3 = 6.
    assert_eq!(cpp::count_valid(&inst, Ext::NegInf, &OPTS).unwrap().value, 6);
    // With a cost that admits ∅ (cardinality: |∅| = 0 ≤ 2), ∅ joins in.
    let lenient = base(3).with_budget(2.0).with_cost(PackageFn::cardinality());
    assert_eq!(cpp::count_valid(&lenient, Ext::NegInf, &OPTS).unwrap().value, 7);
}

/// Section 6: a constant bound `Bp = 1` plus absent `Qc` is exactly the
/// item-recommendation regime — packages degenerate to singletons.
#[test]
fn constant_bound_one_yields_singletons() {
    let inst = base(4)
        .with_budget(1e9)
        .with_size_bound(SizeBound::Constant(1))
        .with_k(2);
    let sel = frp::top_k(&inst, &OPTS).unwrap().value.unwrap();
    assert!(sel.iter().all(|p| p.len() == 1));
}

/// Corollary 6.3: a PTIME `Qc` and the equivalent query `Qc` accept the
/// same selections.
#[test]
fn ptime_and_query_constraints_agree_end_to_end() {
    use pkgrec::core::ANSWER_RELATION;
    use pkgrec::query::{Builtin, CmpOp, RelAtom, Term};
    // "no two items whose values differ by exactly 1".
    let query_qc = Constraint::Query(Query::Cq(ConjunctiveQuery::new(
        Vec::<Term>::new(),
        vec![
            RelAtom::new(ANSWER_RELATION, vec![Term::v("x")]),
            RelAtom::new(ANSWER_RELATION, vec![Term::v("y")]),
        ],
        vec![Builtin::cmp(Term::v("x"), CmpOp::Lt, Term::v("y")), {
            // y = x + 1 is inexpressible with pure comparisons over two
            // variables; use dist ≤ 1 with the numeric metric instead.
            Builtin::dist_le("num", Term::v("x"), Term::v("y"), 1)
        }],
    )));
    let ptime_qc = Constraint::ptime("no adjacent values", |p, _| {
        let vals: Vec<i64> = p.iter().map(|t| t[0].as_int().unwrap()).collect();
        !vals
            .iter()
            .any(|a| vals.iter().any(|b| (a - b).abs() == 1))
    });
    let metrics = pkgrec::query::MetricSet::new().with("num", pkgrec::query::AbsDiff);

    let with_query = base(4)
        .with_budget(3.0)
        .with_qc(query_qc)
        .with_metrics(metrics)
        .with_k(2);
    let with_ptime = base(4).with_budget(3.0).with_qc(ptime_qc).with_k(2);
    assert_eq!(
        frp::top_k(&with_query, &OPTS).unwrap().value,
        frp::top_k(&with_ptime, &OPTS).unwrap().value
    );
}
