//! Randomized equivalence for the columnar evaluation layer:
//!
//! * `ItemBitset` against a `BTreeSet<u32>` model — every mutating and
//!   combining op must agree with ordinary set semantics;
//! * the bitset fast path against the row path — the same compiled
//!   plan with bitsets on and off must produce identical answers for
//!   full evaluation, membership probes and antimonotone-Qc dynamic
//!   probes, across CQ and UCQ workloads;
//! * metered runs — a budget meter forces the fast plan onto the row
//!   path, so tick accounting stays bit-identical to the row plan
//!   (the parity `tests/plan_equivalence.rs` pins against the
//!   interpreter).

use std::collections::BTreeSet;
use std::sync::Arc;

use proptest::prelude::*;

use pkgrec::data::{tuple, AttrType, Database, ItemBitset, Relation, RelationSchema, Tuple};
use pkgrec::query::{Budget, ConjunctiveQuery, Query, RelAtom, Term, UnionQuery};

// ---------------------------------------------------------------------
// ItemBitset vs BTreeSet<u32> model
// ---------------------------------------------------------------------

/// One step of a random op sequence against the model.
#[derive(Debug, Clone)]
enum Op {
    Insert(u32),
    Remove(u32),
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        (0u32..200).prop_map(Op::Insert),
        (0u32..200).prop_map(Op::Remove),
    ]
}

fn id_set_strategy() -> impl Strategy<Value = BTreeSet<u32>> {
    prop::collection::btree_set(0u32..200, 0..40)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Mutating ops agree with the model step for step, and the final
    /// set reads back identically through every accessor.
    #[test]
    fn bitset_ops_match_btreeset_model(ops in prop::collection::vec(op_strategy(), 0..60)) {
        let mut bits = ItemBitset::new();
        let mut model: BTreeSet<u32> = BTreeSet::new();
        for op in ops {
            match op {
                Op::Insert(id) => {
                    prop_assert_eq!(bits.insert(id), model.insert(id));
                }
                Op::Remove(id) => {
                    prop_assert_eq!(bits.remove(id), model.remove(&id));
                }
            }
        }
        prop_assert_eq!(bits.count_ones(), model.len());
        prop_assert_eq!(bits.is_empty(), model.is_empty());
        for id in 0..200 {
            prop_assert_eq!(bits.contains(id), model.contains(&id));
        }
        prop_assert_eq!(bits.iter_ones().collect::<Vec<_>>(),
                        model.iter().copied().collect::<Vec<_>>());
    }

    /// Combining ops are ordinary set algebra: ∧ is intersection, ∨ is
    /// union, ∧¬ is difference; the in-place forms agree with the
    /// owned forms, and the emptiness probes agree with the results.
    #[test]
    fn bitset_algebra_matches_set_algebra(a in id_set_strategy(), b in id_set_strategy()) {
        let ba: ItemBitset = a.iter().copied().collect();
        let bb: ItemBitset = b.iter().copied().collect();

        let and_model: Vec<u32> = a.intersection(&b).copied().collect();
        let or_model: Vec<u32> = a.union(&b).copied().collect();
        let andnot_model: Vec<u32> = a.difference(&b).copied().collect();
        prop_assert_eq!(ba.and(&bb).iter_ones().collect::<Vec<_>>(), and_model.clone());
        prop_assert_eq!(ba.or(&bb).iter_ones().collect::<Vec<_>>(), or_model.clone());
        prop_assert_eq!(ba.andnot(&bb).iter_ones().collect::<Vec<_>>(), andnot_model.clone());

        let mut inplace = ba.clone();
        inplace.and_assign(&bb);
        prop_assert_eq!(inplace.iter_ones().collect::<Vec<_>>(), and_model.clone());
        let mut inplace = ba.clone();
        inplace.or_assign(&bb);
        prop_assert_eq!(inplace.iter_ones().collect::<Vec<_>>(), or_model.clone());
        let mut inplace = ba.clone();
        inplace.andnot_assign(&bb);
        prop_assert_eq!(inplace.iter_ones().collect::<Vec<_>>(), andnot_model.clone());

        prop_assert_eq!(ba.intersects(&bb), !and_model.is_empty());
        prop_assert_eq!(
            ItemBitset::intersection_nonempty(&[&ba, &bb]),
            !and_model.is_empty()
        );
        prop_assert_eq!(ItemBitset::intersection_nonempty(&[&ba]), !a.is_empty());
    }
}

// ---------------------------------------------------------------------
// Bitset fast path vs row path on compiled plans
// ---------------------------------------------------------------------

/// A small random database over r(a, b) and s(a) — dense values so
/// fully-bound probes regularly hit populated bitsets.
fn db_strategy() -> impl Strategy<Value = Database> {
    let r_rows = prop::collection::btree_set((0i64..4, 0i64..4), 0..10);
    let s_rows = prop::collection::btree_set(0i64..4, 0..4);
    (r_rows, s_rows).prop_map(|(r_rows, s_rows)| {
        let r = RelationSchema::new("r", [("a", AttrType::Int), ("b", AttrType::Int)])
            .expect("valid schema");
        let s = RelationSchema::new("s", [("a", AttrType::Int)]).expect("valid schema");
        let mut db = Database::new();
        db.add_relation(
            Relation::from_tuples(r, r_rows.into_iter().map(|(a, b)| tuple![a, b]))
                .expect("schema-conformant"),
        )
        .expect("fresh db");
        db.add_relation(
            Relation::from_tuples(s, s_rows.into_iter().map(|a| tuple![a]))
                .expect("schema-conformant"),
        )
        .expect("fresh db");
        db
    })
}

fn term_strategy() -> impl Strategy<Value = Term> {
    prop_oneof![
        (0usize..3).prop_map(|i| Term::v(format!("v{i}"))),
        (0i64..4).prop_map(Term::c),
    ]
}

/// A random safe CQ over r/s whose head repeats body variables — the
/// shape where membership probes bind every atom and the bitset
/// existence steps engage.
fn cq_strategy() -> impl Strategy<Value = ConjunctiveQuery> {
    let atom = prop_oneof![
        (term_strategy(), term_strategy()).prop_map(|(a, b)| RelAtom::new("r", vec![a, b])),
        term_strategy().prop_map(|a| RelAtom::new("s", vec![a])),
    ];
    prop::collection::vec(atom, 1..4).prop_filter_map("need at least one variable", |atoms| {
        let vars: Vec<_> = atoms
            .iter()
            .flat_map(|a| a.variables())
            .collect::<BTreeSet<_>>()
            .into_iter()
            .collect();
        if vars.is_empty() {
            return None;
        }
        let head = vec![
            Term::Var(vars[0].clone()),
            Term::Var(vars[vars.len() / 2].clone()),
        ];
        Some(ConjunctiveQuery::new(head, atoms, vec![]))
    })
}

/// An antimonotone-Qc shape over the dynamic relation p(a, b): both
/// the pairwise-conflict form `Qc() :- p(x1,c1), p(x2,c2), r(c1,c2)`
/// and the banned-combination form `Qc() :- p(c1,c2), r(c1,c2)` (the
/// latter compiles to a fully-bound bitset existence step; the former
/// stays on the row path — both must agree with bitsets disabled).
fn qc_strategy() -> impl Strategy<Value = ConjunctiveQuery> {
    prop_oneof![
        Just(ConjunctiveQuery::new(
            Vec::<Term>::new(),
            vec![
                RelAtom::new("p", vec![Term::v("x1"), Term::v("c1")]),
                RelAtom::new("p", vec![Term::v("x2"), Term::v("c2")]),
                RelAtom::new("r", vec![Term::v("c1"), Term::v("c2")]),
            ],
            vec![],
        )),
        Just(ConjunctiveQuery::new(
            Vec::<Term>::new(),
            vec![
                RelAtom::new("p", vec![Term::v("c1"), Term::v("c2")]),
                RelAtom::new("r", vec![Term::v("c1"), Term::v("c2")]),
            ],
            vec![],
        )),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// CQ and UCQ: the same plan with bitsets on and off answers full
    /// evaluation and membership probes identically, for answers and
    /// out-of-domain tuples alike.
    #[test]
    fn bitset_path_matches_row_path(
        db in db_strategy(),
        a in cq_strategy(),
        b in cq_strategy(),
    ) {
        let db = Arc::new(db);
        let ucq = UnionQuery::new(vec![a.clone(), b.clone()]).expect("same arity");
        for q in [Query::Cq(a.clone()), Query::Ucq(ucq)] {
            let fast = q.compile(&db).unwrap();
            let slow = q.compile(&db).unwrap().with_bitsets(false);
            let answers = fast.eval(None, None).unwrap();
            prop_assert_eq!(&answers, &slow.eval(None, None).unwrap(), "on {}", q);
            let probes: Vec<Tuple> = answers
                .iter()
                .take(4)
                .cloned()
                .chain([tuple![0, 0], tuple![3, 1], tuple![99, 99]])
                .collect();
            for t in &probes {
                prop_assert_eq!(
                    fast.contains(t, None, None).unwrap(),
                    slow.contains(t, None, None).unwrap(),
                    "membership of {} on {}", t, q
                );
                prop_assert_eq!(
                    fast.eval_pre_bound(t, None, None).unwrap(),
                    slow.eval_pre_bound(t, None, None).unwrap(),
                    "pre-bound {} on {}", t, q
                );
            }
        }
    }

    /// Antimonotone-Qc dynamic probes: emptiness and full dynamic
    /// evaluation agree between the two paths for random packages.
    #[test]
    fn qc_dynamic_probes_match_row_path(
        db in db_strategy(),
        qc in qc_strategy(),
        items in prop::collection::btree_set((0i64..4, 0i64..4), 0..5),
    ) {
        let db = Arc::new(db);
        let tuples: Vec<Tuple> = items.iter().map(|&(a, b)| tuple![a, b]).collect();
        let q = Query::Cq(qc);
        let fast = q.compile_with_dynamic(&db, "p", 2).unwrap();
        let slow = q.compile_with_dynamic(&db, "p", 2).unwrap().with_bitsets(false);
        prop_assert_eq!(
            fast.has_answer_dynamic(tuples.iter(), None, None).unwrap(),
            slow.has_answer_dynamic(tuples.iter(), None, None).unwrap(),
            "on {}", q
        );
        prop_assert_eq!(
            fast.eval_dynamic(tuples.iter(), None, None).unwrap(),
            slow.eval_dynamic(tuples.iter(), None, None).unwrap(),
            "on {}", q
        );
    }

    /// Metered probes: a budget meter disables the bitset shortcut, so
    /// the fast plan charges exactly the row plan's ticks — same
    /// outcome and same spent count at every cutoff.
    #[test]
    fn metered_probes_stay_tick_identical(db in db_strategy(), cq in cq_strategy()) {
        let db = Arc::new(db);
        let q = Query::Cq(cq);
        let fast = q.compile(&db).unwrap();
        let slow = q.compile(&db).unwrap().with_bitsets(false);
        let unlimited = Budget::with_steps(u64::MAX).meter();
        let full = slow.eval(None, Some(&unlimited)).unwrap();
        let used = unlimited.spent();
        for steps in [used.saturating_sub(1), used] {
            let fm = Budget::with_steps(steps).meter();
            let sm = Budget::with_steps(steps).meter();
            let lhs = fast.eval(None, Some(&fm));
            let rhs = slow.eval(None, Some(&sm));
            match (&lhs, &rhs) {
                (Ok(l), Ok(r)) => {
                    prop_assert_eq!(l, r, "on {} with {} steps", q, steps);
                    prop_assert_eq!(l, &full, "on {} with {} steps", q, steps);
                }
                (Err(_), Err(_)) => {}
                _ => prop_assert!(
                    false,
                    "divergent outcomes on {} with {} steps: {:?} vs {:?}",
                    q, steps, lhs, rhs
                ),
            }
            prop_assert_eq!(fm.spent(), sm.spent(), "tick drift on {} at {}", q, steps);
        }
    }
}
