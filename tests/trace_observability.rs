//! Cross-crate observability tests: the counter names emitted by a
//! solve are a stable public contract (dashboards and the bench report
//! key on them), interrupted searches name the span that tripped the
//! budget, and the CLI's JSONL records are valid JSON.
//!
//! Tracing state is global-enable + thread-local collection, and the
//! test harness runs each test on its own thread, so enabling tracing
//! here cannot contaminate other tests' collectors.

use pkgrec::core::{
    problems::frp, problems::rpp, Package, PackageFn, RecInstance, SolveOptions,
};
use pkgrec::data::{tuple, AttrType, Database, Relation, RelationSchema};
use pkgrec::query::{ConjunctiveQuery, Query};

/// Items {1, 2, 3}; val = sum of items; cost = |N|; budget 2.
fn small_instance() -> RecInstance {
    let mut db = Database::new();
    let r = RelationSchema::new("r", [("a", AttrType::Int)]).unwrap();
    db.add_relation(Relation::from_tuples(r, [tuple![1], tuple![2], tuple![3]]).unwrap())
        .unwrap();
    RecInstance::new(db, Query::Cq(ConjunctiveQuery::identity("r", 1)))
        .with_budget(2.0)
        .with_val(PackageFn::sum_col(0, true))
}

/// Golden test: the exact counter and span names a small RPP solve
/// emits. A rename here breaks `report --stats` consumers and saved
/// JSONL traces, so it must be deliberate — update the registry table
/// in `crates/trace/src/lib.rs`, DESIGN.md and this list together.
#[test]
fn rpp_solve_emits_the_documented_counter_names() {
    let _scope = pkgrec_trace::scoped();
    pkgrec_trace::reset();
    let inst = small_instance();
    let sel = vec![Package::new([tuple![2], tuple![3]])];
    // jobs=1: the golden span list is the sequential engine's (the
    // parallel engine adds enumerate.par/enumerate.worker spans).
    assert!(rpp::is_top_k(&inst, &sel, &SolveOptions::default().with_jobs(1)).unwrap());
    let report = pkgrec_trace::take();

    let counters: Vec<&str> = report.counters.keys().map(String::as_str).collect();
    assert_eq!(
        counters,
        [
            "core.arity_derivations",
            "cq.join_candidates",
            "enumerate.nodes",
            "enumerate.pruned.cost",
            "enumerate.valid",
            "query.bitset_probes",
            "query.index_builds",
            "query.plan_compiles",
            "query.plan_probes"
        ],
        "counter names are a stable contract; see the registry in pkgrec-trace"
    );
    let spans: Vec<&str> = report.spans.keys().map(String::as_str).collect();
    assert_eq!(
        spans,
        [
            "rpp.check_top_k",
            "rpp.check_top_k/cq.eval",
            "rpp.check_top_k/enumerate.dfs"
        ]
    );
    // The probes carry real measurements, not just names.
    assert!(report.counters["enumerate.nodes"] > 0);
    assert!(report.spans["rpp.check_top_k"].total_ns > 0);
    assert!(report.spans["rpp.check_top_k/enumerate.dfs"].steps > 0);
}

/// Golden test for the compiled-plan counters: one solve compiles `Q`
/// exactly once and answers every item-pool evaluation and membership
/// probe through the plan. A drift here means per-package work crept
/// back into the hot path (e.g. a `tuples()` clone or a re-compile).
#[test]
fn rpp_solve_pins_compiled_plan_counters() {
    let _scope = pkgrec_trace::scoped();
    pkgrec_trace::reset();
    let inst = small_instance();
    let sel = vec![Package::new([tuple![2], tuple![3]])];
    assert!(rpp::is_top_k(&inst, &sel, &SolveOptions::default().with_jobs(1)).unwrap());
    let report = pkgrec_trace::take();

    // One plan per solve: Q compiled once, Qc is empty (no plan).
    assert_eq!(report.counters["query.plan_compiles"], 1);
    // Probes: 1 item-pool evaluation + 2 membership checks for the
    // candidate selection's items {2, 3}.
    assert_eq!(report.counters["query.plan_probes"], 3);
}

/// An FRP search cut off mid-enumeration reports *where* the budget
/// tripped: the interruption is tagged with the innermost open span.
#[test]
fn interrupted_frp_solve_names_the_enumeration_span() {
    let _scope = pkgrec_trace::scoped();
    pkgrec_trace::reset();
    // jobs=1: the parallel engine trips inside enumerate.worker.
    let out = frp::top_k(&small_instance(), &SolveOptions::limited(3).with_jobs(1)).unwrap();
    assert!(!out.exact);
    let cut = out.interrupted.expect("3 steps cannot finish the search");
    assert_eq!(cut.span, Some("enumerate.dfs"));
    assert!(
        cut.to_string().ends_with("in enumerate.dfs"),
        "Display names the tripping span: {cut}"
    );
}

/// Without tracing enabled the same interruption carries no span — the
/// disabled probes stay invisible.
#[test]
fn interruption_span_is_absent_when_tracing_is_off() {
    let out = frp::top_k(&small_instance(), &SolveOptions::limited(3).with_jobs(1)).unwrap();
    let cut = out.interrupted.expect("3 steps cannot finish the search");
    assert_eq!(cut.span, None);
}

/// The report serializes to valid JSON (one JSONL record), checked by
/// the same validator the `jsonl_check` CI tool uses.
#[test]
fn trace_report_serializes_to_valid_json() {
    let _scope = pkgrec_trace::scoped();
    pkgrec_trace::reset();
    let sel = vec![Package::new([tuple![2], tuple![3]])];
    rpp::is_top_k(&small_instance(), &sel, &SolveOptions::default().with_jobs(1)).unwrap();
    let json = pkgrec_trace::take().to_json();
    assert!(!json.contains('\n'), "JSONL records are single-line");
    pkgrec_trace::json::validate_object(&json).expect("valid JSON object");
}
