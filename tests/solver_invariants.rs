//! Cross-crate property tests: on randomly generated recommendation
//! instances, the solvers must satisfy the defining invariants of
//! Sections 2–5 — every FRP answer passes RPP, MBP's decision and
//! function versions agree, CPP's count is antitone in the bound, and
//! the item fast path matches the Section 2 package embedding.

use proptest::prelude::*;

use pkgrec::core::{
    problems::cpp, problems::frp, problems::mbp, problems::rpp, Constraint, Ext, ItemInstance,
    ItemUtility, PackageFn, RecInstance, SizeBound, SolveOptions,
};
use pkgrec::data::{tuple, AttrType, Database, Relation, RelationSchema, Tuple};
use pkgrec::query::{ConjunctiveQuery, Query};

/// A small random instance: items 0..n with scores, budget 2 items,
/// val = total score, optional no-duplicate-group PTIME constraint.
fn instance(scores: Vec<(i64, i64)>, with_qc: bool, k: usize) -> RecInstance {
    let schema = RelationSchema::new(
        "item",
        [("id", AttrType::Int), ("grp", AttrType::Int), ("score", AttrType::Int)],
    )
    .expect("valid schema");
    let rel = Relation::from_tuples(
        schema,
        scores
            .iter()
            .enumerate()
            .map(|(i, &(g, s))| tuple![i as i64, g, s]),
    )
    .expect("schema-conformant");
    let mut db = Database::new();
    db.add_relation(rel).expect("fresh db");
    let mut inst = RecInstance::new(db, Query::Cq(ConjunctiveQuery::identity("item", 3)))
        .with_budget(2.0)
        .with_val(PackageFn::sum_col(2, true))
        .with_k(k);
    if with_qc {
        inst = inst.with_qc(Constraint::ptime("distinct groups", |p, _| {
            let mut seen = std::collections::BTreeSet::new();
            p.iter().all(|t| seen.insert(t[1].clone()))
        }));
    }
    inst
}

fn scores_strategy() -> impl Strategy<Value = Vec<(i64, i64)>> {
    prop::collection::vec((0i64..3, 1i64..50), 1..8)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Every FRP answer is certified by RPP (the function problem's
    /// output satisfies the decision problem's definition).
    #[test]
    fn frp_output_passes_rpp(scores in scores_strategy(), with_qc in any::<bool>(), k in 1usize..4) {
        let inst = instance(scores, with_qc, k);
        let opts = SolveOptions::default();
        if let Some(sel) = frp::top_k(&inst, &opts).unwrap().value {
            prop_assert!(rpp::is_top_k(&inst, &sel, &opts).unwrap());
            prop_assert_eq!(sel.len(), k);
            // Ratings are non-increasing in rank.
            for w in sel.windows(2) {
                prop_assert!(inst.val.eval(&w[0]) >= inst.val.eval(&w[1]));
            }
        }
    }

    /// The enumerating solver and the paper's oracle-loop solver agree.
    #[test]
    fn frp_oracle_agrees(scores in scores_strategy(), with_qc in any::<bool>(), k in 1usize..4) {
        let inst = instance(scores, with_qc, k);
        let opts = SolveOptions::default();
        prop_assert_eq!(
            frp::top_k(&inst, &opts).unwrap().value,
            frp::top_k_via_oracle(&inst, &opts).unwrap()
        );
    }

    /// `maximum_bound` and `is_maximum_bound` are two views of one
    /// number, and nothing above it is a bound (the L1 ∩ L2 split).
    #[test]
    fn mbp_function_and_decision_agree(scores in scores_strategy(), with_qc in any::<bool>(), k in 1usize..4) {
        let inst = instance(scores, with_qc, k);
        let opts = SolveOptions::default();
        match mbp::maximum_bound(&inst, &opts).unwrap().value {
            Some(b) => {
                prop_assert!(mbp::is_maximum_bound(&inst, b, &opts).unwrap());
                let above = Ext::Finite(b.as_finite().unwrap() + 0.5);
                prop_assert!(!mbp::is_bound(&inst, above, &opts).unwrap());
            }
            None => {
                // No top-k selection ⇒ FRP agrees.
                prop_assert!(frp::top_k(&inst, &opts).unwrap().value.is_none());
            }
        }
    }

    /// CPP is antitone in the rating bound and consistent with MBP: at
    /// the maximum bound there are at least k valid packages.
    #[test]
    fn cpp_antitone_and_consistent(scores in scores_strategy(), with_qc in any::<bool>()) {
        let inst = instance(scores, with_qc, 1);
        let opts = SolveOptions::default();
        let c_low = cpp::count_valid(&inst, Ext::Finite(0.0), &opts).unwrap().value;
        let c_mid = cpp::count_valid(&inst, Ext::Finite(30.0), &opts).unwrap().value;
        let c_high = cpp::count_valid(&inst, Ext::Finite(1e9), &opts).unwrap().value;
        prop_assert!(c_low >= c_mid && c_mid >= c_high);
        if let Some(b) = mbp::maximum_bound(&inst, &opts).unwrap().value {
            prop_assert!(cpp::count_valid(&inst, b, &opts).unwrap().value >= 1);
        }
    }

    /// Constant size bounds only shrink the candidate space: the
    /// constrained maximum bound never exceeds the unconstrained one.
    #[test]
    fn constant_bound_is_a_restriction(scores in scores_strategy()) {
        let opts = SolveOptions::default();
        let free = instance(scores.clone(), false, 1);
        let capped = instance(scores, false, 1).with_size_bound(SizeBound::Constant(1));
        let mb_free = mbp::maximum_bound(&free, &opts).unwrap().value;
        let mb_capped = mbp::maximum_bound(&capped, &opts).unwrap().value;
        if let (Some(f), Some(c)) = (mb_free, mb_capped) {
            prop_assert!(c <= f);
        }
    }

    /// A search that *finishes* within a step budget returns exactly
    /// the unbounded answer: budgets only cut work short, they never
    /// change a completed result.
    #[test]
    fn finished_budgeted_run_equals_unbounded(
        scores in scores_strategy(),
        with_qc in any::<bool>(),
        k in 1usize..4,
        budget in 1u64..40,
    ) {
        let inst = instance(scores, with_qc, k);
        let unbounded = frp::top_k(&inst, &SolveOptions::default()).unwrap();
        prop_assert!(unbounded.exact);
        let bounded = frp::top_k(&inst, &SolveOptions::limited(budget)).unwrap();
        if bounded.exact {
            prop_assert_eq!(&bounded.value, &unbounded.value);
            prop_assert!(bounded.stats.packages_enumerated <= budget);
        } else {
            prop_assert!(bounded.stats.interrupted.is_some());
        }
        // A budget at least the unbounded run's step count always
        // finishes exactly.
        let enough = frp::top_k(
            &inst,
            &SolveOptions::limited(unbounded.stats.packages_enumerated),
        )
        .unwrap();
        prop_assert!(enough.exact);
        prop_assert_eq!(enough.value, unbounded.value);
    }

    /// Budget monotonicity: more steps never shrink what the anytime
    /// counter has seen — the partial CPP count is non-decreasing in
    /// the budget and always a lower bound on the exact count.
    #[test]
    fn cpp_partial_counts_are_monotone(
        scores in scores_strategy(),
        with_qc in any::<bool>(),
        b1 in 1u64..20,
        extra in 0u64..20,
    ) {
        let inst = instance(scores, with_qc, 1);
        let bound = Ext::Finite(0.0);
        let exact = cpp::count_valid(&inst, bound, &SolveOptions::default()).unwrap();
        prop_assert!(exact.exact);
        // Pinned to the sequential engine: which prefix a step budget
        // covers is engine-dependent, so budget monotonicity is only a
        // contract of the jobs=1 walk.
        let small =
            cpp::count_valid(&inst, bound, &SolveOptions::limited(b1).with_jobs(1)).unwrap();
        let large =
            cpp::count_valid(&inst, bound, &SolveOptions::limited(b1 + extra).with_jobs(1))
                .unwrap();
        prop_assert!(small.value <= large.value);
        prop_assert!(large.value <= exact.value);
        prop_assert!(small.stats.packages_enumerated <= large.stats.packages_enumerated);
    }

    /// The item fast path equals the Section 2 embedding into packages.
    #[test]
    fn items_match_package_embedding(scores in scores_strategy(), k in 1usize..4) {
        let schema = RelationSchema::new(
            "item",
            [("id", AttrType::Int), ("grp", AttrType::Int), ("score", AttrType::Int)],
        ).expect("valid schema");
        let rel = Relation::from_tuples(
            schema,
            scores.iter().enumerate().map(|(i, &(g, s))| tuple![i as i64, g, s]),
        ).expect("schema-conformant");
        let mut db = Database::new();
        db.add_relation(rel).expect("fresh db");
        let item_inst = ItemInstance::new(
            db,
            Query::Cq(ConjunctiveQuery::identity("item", 3)),
            ItemUtility::new("score", |t| t[2].as_numeric().unwrap_or(0) as f64),
            k,
        );
        let fast = item_inst.top_k_items().unwrap();
        let slow = frp::top_k(&item_inst.as_package_instance(), &SolveOptions::default())
            .unwrap()
            .value;
        match (fast, slow) {
            (None, None) => {}
            (Some(f), Some(s)) => {
                let s_items: Vec<Tuple> = s
                    .iter()
                    .map(|p| p.iter().next().expect("singleton").clone())
                    .collect();
                prop_assert_eq!(f, s_items);
            }
            (f, s) => prop_assert!(false, "fast {:?} vs slow {:?}", f, s),
        }
    }
}
