//! `pkgrec` — run package recommendation problems from the command
//! line, no Rust required.
//!
//! ```text
//! pkgrec eval  <db-file> <query>                  evaluate Q(D)
//! pkgrec topk  <db-file> <query> [options]        FRP: top-k packages
//! pkgrec bound <db-file> <query> [options]        MBP: maximum rating bound
//! pkgrec count <db-file> <query> --min-val B ...  CPP: count valid packages
//! pkgrec items <db-file> <query> --val sum:COL --k K    top-k items
//!
//! options:
//!   --k N              number of packages/items (default 1)
//!   --budget C         cost budget (default unbounded)
//!   --cost SPEC        count | sum:COL            (default count)
//!   --val SPEC         count | sum:COL | negsum:COL (default count)
//!   --min-val B        rating bound for `count`
//!   --max-size N       constant package-size bound (default |D|)
//!   --steps N          search budget: stop after N enumeration steps
//!   --timeout-ms T     search budget: stop after T milliseconds
//! ```
//!
//! With `--steps`/`--timeout-ms`, `topk`, `bound` and `count` are
//! *anytime*: when the budget runs out they print the best result found
//! so far, marked as a partial (lower-bound) answer.
//!
//! The database file uses the `pkgrec::data::text` format; the query is
//! inline text (rule form `q(x) :- r(x, y).` or FO form
//! `q(x) = exists y. r(x, y)`) or `@path` to read it from a file.

use std::process::ExitCode;

use pkgrec::core::{
    problems::cpp, problems::frp, problems::mbp, Budget, Ext, PackageFn, RecInstance,
    SizeBound, SolveOptions,
};
use pkgrec::data::text::parse_database;
use pkgrec::data::Database;
use pkgrec::query::parser::{parse_fo, parse_query};
use pkgrec::query::Query;

fn main() -> ExitCode {
    match run(std::env::args().skip(1).collect()) {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("pkgrec: {msg}");
            ExitCode::FAILURE
        }
    }
}

struct Options {
    k: usize,
    budget: Ext,
    cost: PackageFn,
    val: PackageFn,
    min_val: Option<f64>,
    max_size: Option<usize>,
    steps: Option<u64>,
    timeout_ms: Option<u64>,
}

fn parse_fn_spec(spec: &str) -> Result<PackageFn, String> {
    if spec == "count" {
        return Ok(PackageFn::cardinality());
    }
    if let Some(col) = spec.strip_prefix("sum:") {
        let col: usize = col.parse().map_err(|_| format!("bad column in `{spec}`"))?;
        return Ok(PackageFn::sum_col(col, true));
    }
    if let Some(col) = spec.strip_prefix("negsum:") {
        let col: usize = col.parse().map_err(|_| format!("bad column in `{spec}`"))?;
        return Ok(PackageFn::neg_sum_col(col));
    }
    Err(format!(
        "unknown function spec `{spec}` (expected count, sum:COL or negsum:COL)"
    ))
}

fn parse_options(args: &[String]) -> Result<Options, String> {
    let mut opts = Options {
        k: 1,
        budget: Ext::PosInf,
        cost: PackageFn::count(),
        val: PackageFn::cardinality(),
        min_val: None,
        max_size: None,
        steps: None,
        timeout_ms: None,
    };
    let mut i = 0;
    while i < args.len() {
        let flag = &args[i];
        let value = args
            .get(i + 1)
            .ok_or_else(|| format!("flag `{flag}` needs a value"))?;
        match flag.as_str() {
            "--k" => opts.k = value.parse().map_err(|_| "bad --k value".to_string())?,
            "--budget" => {
                opts.budget = Ext::Finite(
                    value.parse().map_err(|_| "bad --budget value".to_string())?,
                )
            }
            "--cost" => opts.cost = parse_fn_spec(value)?,
            "--val" => opts.val = parse_fn_spec(value)?,
            "--min-val" => {
                opts.min_val =
                    Some(value.parse().map_err(|_| "bad --min-val value".to_string())?)
            }
            "--max-size" => {
                opts.max_size =
                    Some(value.parse().map_err(|_| "bad --max-size value".to_string())?)
            }
            "--steps" => {
                opts.steps =
                    Some(value.parse().map_err(|_| "bad --steps value".to_string())?)
            }
            "--timeout-ms" => {
                opts.timeout_ms = Some(
                    value
                        .parse()
                        .map_err(|_| "bad --timeout-ms value".to_string())?,
                )
            }
            other => return Err(format!("unknown flag `{other}`")),
        }
        i += 2;
    }
    Ok(opts)
}

fn load_db(path: &str) -> Result<Database, String> {
    let src =
        std::fs::read_to_string(path).map_err(|e| format!("cannot read `{path}`: {e}"))?;
    parse_database(&src).map_err(|e| format!("in `{path}`: {e}"))
}

fn load_query(arg: &str) -> Result<Query, String> {
    let text = match arg.strip_prefix('@') {
        Some(path) => {
            std::fs::read_to_string(path).map_err(|e| format!("cannot read `{path}`: {e}"))?
        }
        None => arg.to_string(),
    };
    // Rule form first, FO form second; report the rule-form error when
    // both fail and the text looks like a rule.
    match parse_query(&text) {
        Ok(q) => Ok(q),
        Err(rule_err) => match parse_fo(&text) {
            Ok(q) => Ok(q),
            Err(fo_err) => Err(if text.contains(":-") {
                format!("query parse error: {rule_err}")
            } else {
                format!("query parse error: {fo_err}")
            }),
        },
    }
}

fn build_instance(db: Database, query: Query, opts: &Options) -> RecInstance {
    let mut inst = RecInstance::new(db, query)
        .with_cost(opts.cost.clone())
        .with_val(opts.val.clone())
        .with_budget(opts.budget)
        .with_k(opts.k);
    if let Some(n) = opts.max_size {
        inst = inst.with_size_bound(SizeBound::Constant(n));
    }
    inst
}

fn run(args: Vec<String>) -> Result<(), String> {
    let usage = "usage: pkgrec <eval|topk|bound|count|items> <db-file> <query> [options] \
                 (see --help in the source header)";
    let mut it = args.iter();
    let cmd = it.next().ok_or(usage)?.as_str();
    if cmd == "--help" || cmd == "-h" {
        println!("{usage}");
        return Ok(());
    }
    let db_path = it.next().ok_or(usage)?;
    let query_arg = it.next().ok_or(usage)?;
    let rest: Vec<String> = it.cloned().collect();
    let opts = parse_options(&rest)?;

    let db = load_db(db_path)?;
    let query = load_query(query_arg)?;
    let mut budget = Budget::unlimited();
    if let Some(n) = opts.steps {
        budget = budget.steps(n);
    }
    if let Some(ms) = opts.timeout_ms {
        budget = budget.timeout(std::time::Duration::from_millis(ms));
    }
    let solver_opts = SolveOptions::with_budget(budget);

    match cmd {
        "eval" => {
            let answers = query.eval(&db).map_err(|e| e.to_string())?;
            println!("{} answers [{}]", answers.len(), query.language());
            for t in &answers {
                println!("{t}");
            }
        }
        "topk" => {
            let inst = build_instance(db, query, &opts);
            let out = frp::top_k(&inst, &solver_opts).map_err(|e| e.to_string())?;
            if let Some(cut) = out.interrupted {
                println!("partial result ({cut}):");
            }
            match out.value {
                None => println!("no top-{} selection exists", opts.k),
                Some(sel) => {
                    for (rank, pkg) in sel.iter().enumerate() {
                        println!(
                            "#{} val={} cost={} {}",
                            rank + 1,
                            inst.val.eval(pkg),
                            inst.cost.eval(pkg),
                            pkg
                        );
                    }
                }
            }
        }
        "bound" => {
            let inst = build_instance(db, query, &opts);
            let out = mbp::maximum_bound(&inst, &solver_opts).map_err(|e| e.to_string())?;
            let qualifier = if out.exact { "" } else { " (lower bound; budget ran out)" };
            match out.value {
                None => println!("no top-{} selection exists", opts.k),
                Some(b) => println!("maximum bound: {b}{qualifier}"),
            }
        }
        "count" => {
            let bound = Ext::Finite(
                opts.min_val
                    .ok_or("`count` requires --min-val B".to_string())?,
            );
            let inst = build_instance(db, query, &opts);
            let out =
                cpp::count_valid(&inst, bound, &solver_opts).map_err(|e| e.to_string())?;
            let prefix = if out.exact { "" } else { "at least " };
            let suffix = if out.exact { "" } else { " (budget ran out)" };
            println!("{prefix}{} valid packages with val >= {bound}{suffix}", out.value);
        }
        "items" => {
            let inst = build_instance(db, query, &opts)
                .with_cost(PackageFn::count())
                .with_budget(1.0)
                .with_size_bound(SizeBound::Constant(1));
            let out = frp::top_k(&inst, &solver_opts).map_err(|e| e.to_string())?;
            if let Some(cut) = out.interrupted {
                println!("partial result ({cut}):");
            }
            match out.value {
                None => println!("fewer than {} items", opts.k),
                Some(sel) => {
                    for (rank, pkg) in sel.iter().enumerate() {
                        let t = pkg.iter().next().expect("singleton");
                        println!("#{} val={} {}", rank + 1, inst.val.eval(pkg), t);
                    }
                }
            }
        }
        other => return Err(format!("unknown command `{other}`; {usage}")),
    }
    Ok(())
}
