//! `pkgrec` — run package recommendation problems from the command
//! line, no Rust required.
//!
//! ```text
//! pkgrec eval  <db-file> <query>                  evaluate Q(D)
//! pkgrec topk  <db-file> <query> [options]        FRP: top-k packages
//! pkgrec bound <db-file> <query> [options]        MBP: maximum rating bound
//! pkgrec count <db-file> <query> --min-val B ...  CPP: count valid packages
//! pkgrec items <db-file> <query> --val sum:COL --k K    top-k items
//! pkgrec explain <db-file> <query> [--json]       show the compiled query plan
//! pkgrec profile <db-file> <query> [options]      profile a topk solve
//! pkgrec chaos-sites                              list PKGREC_CHAOS fault sites
//! pkgrec qbf   <qdimacs-file> [options]           check Theorem 4.1 encodings
//! pkgrec serve --db NAME=PATH [...]               resident solve service
//!
//! options:
//!   --k N              number of packages/items (default 1)
//!   --budget C         cost budget (default unbounded)
//!   --cost SPEC        count | sum:COL            (default count)
//!   --val SPEC         count | sum:COL | negsum:COL (default count)
//!   --min-val B        rating bound for `count`
//!   --max-size N       constant package-size bound (default |D|)
//!   --steps N          search budget: stop after N enumeration steps
//!   --timeout-ms T     search budget: stop after T milliseconds
//!   --jobs N           worker threads for the package search
//!                      (default 1; 0 = $PKGREC_JOBS or 1)
//!   --trace[=human|json]   collect solver metrics; print them after the
//!                      answer (human) or as one JSONL record (json)
//!   --trace-out PATH   append the JSONL trace record to PATH instead
//!                      of stdout (implies --trace=json)
//!   --flight-out PATH  keep a flight recorder (bounded ring of
//!                      structured search events) during the solve and
//!                      write it to PATH as JSONL — on completion *and*
//!                      on interruption, so a budget cut comes with its
//!                      last-N-events black box
//!   --progress         print a throttled live progress line (percent,
//!                      units, ETA) to stderr while the search runs
//!   --approx           solve `topk`/`bound` with the SketchRefine
//!                      approximate engine (partition, sketch over
//!                      representatives, refine): scales to item pools
//!                      the exact search cannot touch, but the answer
//!                      is never certified optimal and is printed with
//!                      an explicit `approximate` marker
//!
//! profile options (plus all solve options above):
//!   --chrome-out PATH  also write the solve's profile timeline as a
//!                      Chrome Trace Event Format JSON file (open in
//!                      Perfetto / chrome://tracing): one duration
//!                      track per worker, one per phase, counter tracks
//!
//! `profile` runs a `topk` solve (`--approx` for the sketch engine)
//! with tracing, the flight recorder and the profile timeline all
//! forced on, then prints an attribution report: wall time per phase,
//! per-worker utilization (busy time, units, steps), per-span-path
//! share of the wall, and the plan-probe and sketch/refine counter
//! breakdowns.
//!
//! serve options:
//!   --listen ADDR         bind address (default 127.0.0.1:7878; port 0
//!                         picks an ephemeral port, printed on startup)
//!   --db NAME=PATH        load PATH (text format) as resident db NAME;
//!                         repeatable, at least one required
//!   --workers N           request worker threads (default 4)
//!   --queue N             connection-queue capacity; beyond it requests
//!                         are shed with HTTP 503 `overloaded` (default 64)
//!   --max-deadline-ms T   hard per-request wall-clock cap (default 10000);
//!                         requests can tighten it, never exceed it
//!   --max-jobs N          cap on per-request solver threads (default 4)
//!   --access-log PATH     append one JSONL record per request to PATH
//!                         (bounded + lossy: logging never blocks workers;
//!                         drops are counted in /metrics)
//!   --flight-dir DIR      with the flight recorder enabled
//!                         (PKGREC_FLIGHT=1), export each request's
//!                         recording to DIR/<request-id>.flight.jsonl
//!   --slow-threshold-ms T requests slower than T land in the
//!                         GET /debug/slow ring (default 250)
//!   --profile-slow-ms T   tail-sampling profiler: every request records
//!                         a profile timeline, kept only when the request
//!                         took at least T ms or failed — a summary in
//!                         the GET /debug/profile ring (last 32) and,
//!                         with --flight-dir, a Chrome-trace
//!                         DIR/<request-id>.profile.json. 0 keeps every
//!                         request; off when the flag is absent
//! ```
//!
//! `serve` keeps databases resident, caches compiled plans per
//! `(db, query, parameters)` key, and answers `POST /solve`
//! (JSON), `GET /metrics` (add `?format=prometheus` for exposition
//! text), `GET /debug/slow`, `GET /debug/profile`, `GET|POST /explain`
//! and `GET /health` until killed. Every response carries an `x-pkgrec-request-id`
//! header that correlates the access-log record, the `/debug/slow`
//! entry and the flight export for the same request. Deadlines
//! that trip mid-search return the best-so-far partial answer
//! (`"exact": false`), overload is shed with a typed `overloaded`
//! error plus `Retry-After`, and panicking requests are contained
//! per-request. Set `PKGREC_CHAOS` (see `pkgrec::trace::chaos`) to
//! inject deterministic faults for robustness testing; `chaos-sites`
//! lists the valid site names.
//!
//! With `--steps`/`--timeout-ms`, `topk`, `bound` and `count` are
//! *anytime*: when the budget runs out they print the best result found
//! so far, marked as a partial (lower-bound) answer.
//!
//! The database file uses the `pkgrec::data::text` format; the query is
//! inline text (rule form `q(x) :- r(x, y).` or FO form
//! `q(x) = exists y. r(x, y)`) or `@path` to read it from a file.
//!
//! `qbf` reads a QDIMACS file (`p cnf V C`, `e`/`a` quantifier lines,
//! DIMACS clauses), evaluates the sentence with the QBF solver, then
//! machine-checks the paper's Theorem 4.1 membership encodings against
//! it: the DATALOGnr and FO rewritings evaluated by the query engine,
//! and the RPP top-1 wrapping decided by the package enumerator. With
//! `--trace` this exercises — and meters — all three solver layers.

use std::process::ExitCode;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use pkgrec::core::{
    problems::cpp, problems::frp, problems::mbp, problems::rpp, Budget, Ext, Method, PackageFn,
    Progress, RecInstance, SizeBound, SketchParams, SolveOptions,
};
use pkgrec::data::text::parse_database;
use pkgrec::data::{tuple, Database};
use pkgrec::logic::{parse_qdimacs, QbfFormula};
use pkgrec::query::parser::{parse_fo, parse_query};
use pkgrec::query::Query;
use pkgrec::reductions::membership;

fn main() -> ExitCode {
    match run(std::env::args().skip(1).collect()) {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("pkgrec: {msg}");
            ExitCode::FAILURE
        }
    }
}

struct Options {
    k: usize,
    budget: Ext,
    cost: PackageFn,
    val: PackageFn,
    min_val: Option<f64>,
    max_size: Option<usize>,
    steps: Option<u64>,
    timeout_ms: Option<u64>,
    jobs: Option<usize>,
    trace: Option<TraceFormat>,
    trace_out: Option<String>,
    flight_out: Option<String>,
    progress: bool,
    approx: bool,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum TraceFormat {
    Human,
    Json,
}

fn parse_fn_spec(spec: &str) -> Result<PackageFn, String> {
    if spec == "count" {
        return Ok(PackageFn::cardinality());
    }
    if let Some(col) = spec.strip_prefix("sum:") {
        let col: usize = col.parse().map_err(|_| format!("bad column in `{spec}`"))?;
        return Ok(PackageFn::sum_col(col, true));
    }
    if let Some(col) = spec.strip_prefix("negsum:") {
        let col: usize = col.parse().map_err(|_| format!("bad column in `{spec}`"))?;
        return Ok(PackageFn::neg_sum_col(col));
    }
    Err(format!(
        "unknown function spec `{spec}` (expected count, sum:COL or negsum:COL)"
    ))
}

fn parse_options(args: &[String]) -> Result<Options, String> {
    let mut opts = Options {
        k: 1,
        budget: Ext::PosInf,
        cost: PackageFn::count(),
        val: PackageFn::cardinality(),
        min_val: None,
        max_size: None,
        steps: None,
        timeout_ms: None,
        jobs: None,
        trace: None,
        trace_out: None,
        flight_out: None,
        progress: false,
        approx: false,
    };
    let mut i = 0;
    while i < args.len() {
        let flag = &args[i];
        // `--trace` variants are single-token flags (no separate value).
        if flag == "--trace" || flag == "--trace=human" {
            opts.trace = Some(TraceFormat::Human);
            i += 1;
            continue;
        }
        if flag == "--trace=json" {
            opts.trace = Some(TraceFormat::Json);
            i += 1;
            continue;
        }
        if flag == "--progress" {
            opts.progress = true;
            i += 1;
            continue;
        }
        if flag == "--approx" {
            opts.approx = true;
            i += 1;
            continue;
        }
        let value = args
            .get(i + 1)
            .ok_or_else(|| format!("flag `{flag}` needs a value"))?;
        match flag.as_str() {
            "--k" => opts.k = value.parse().map_err(|_| "bad --k value".to_string())?,
            "--budget" => {
                opts.budget = Ext::Finite(
                    value.parse().map_err(|_| "bad --budget value".to_string())?,
                )
            }
            "--cost" => opts.cost = parse_fn_spec(value)?,
            "--val" => opts.val = parse_fn_spec(value)?,
            "--min-val" => {
                opts.min_val =
                    Some(value.parse().map_err(|_| "bad --min-val value".to_string())?)
            }
            "--max-size" => {
                opts.max_size =
                    Some(value.parse().map_err(|_| "bad --max-size value".to_string())?)
            }
            "--steps" => {
                opts.steps =
                    Some(value.parse().map_err(|_| "bad --steps value".to_string())?)
            }
            "--timeout-ms" => {
                opts.timeout_ms = Some(
                    value
                        .parse()
                        .map_err(|_| "bad --timeout-ms value".to_string())?,
                )
            }
            "--jobs" => {
                opts.jobs = Some(value.parse().map_err(|_| "bad --jobs value".to_string())?)
            }
            "--trace-out" => {
                opts.trace_out = Some(value.clone());
                // Writing to a file only makes sense as JSONL; a prior
                // explicit `--trace=human` still prints to stdout too.
                opts.trace.get_or_insert(TraceFormat::Json);
            }
            "--flight-out" => opts.flight_out = Some(value.clone()),
            other => return Err(format!("unknown flag `{other}`")),
        }
        i += 2;
    }
    Ok(opts)
}

fn load_db(path: &str) -> Result<Database, String> {
    let src =
        std::fs::read_to_string(path).map_err(|e| format!("cannot read `{path}`: {e}"))?;
    parse_database(&src).map_err(|e| format!("in `{path}`: {e}"))
}

fn load_query(arg: &str) -> Result<Query, String> {
    let text = match arg.strip_prefix('@') {
        Some(path) => {
            std::fs::read_to_string(path).map_err(|e| format!("cannot read `{path}`: {e}"))?
        }
        None => arg.to_string(),
    };
    // Rule form first, FO form second; report the rule-form error when
    // both fail and the text looks like a rule.
    match parse_query(&text) {
        Ok(q) => Ok(q),
        Err(rule_err) => match parse_fo(&text) {
            Ok(q) => Ok(q),
            Err(fo_err) => Err(if text.contains(":-") {
                format!("query parse error: {rule_err}")
            } else {
                format!("query parse error: {fo_err}")
            }),
        },
    }
}

fn build_instance(db: Database, query: Query, opts: &Options) -> RecInstance {
    let mut inst = RecInstance::new(db, query)
        .with_cost(opts.cost.clone())
        .with_val(opts.val.clone())
        .with_budget(opts.budget)
        .with_k(opts.k);
    if let Some(n) = opts.max_size {
        inst = inst.with_size_bound(SizeBound::Constant(n));
    }
    inst
}

/// Load a QDIMACS file via [`pkgrec::logic::parse_qdimacs`], prefixing
/// errors with the path (and line, for syntax errors).
fn load_qbf(path: &str) -> Result<QbfFormula, String> {
    let src =
        std::fs::read_to_string(path).map_err(|e| format!("cannot read `{path}`: {e}"))?;
    parse_qdimacs(&src).map_err(|e| format!("{path}:{e}"))
}

/// The `qbf` command: evaluate a closed QBF sentence directly, then
/// machine-check the Theorem 4.1 membership encodings against it —
/// DATALOGnr and FO via the query engine, RPP top-1 membership via the
/// package enumerator. Exercises the logic, query and core layers in
/// one run, so `--trace` surfaces counters from all three.
fn cmd_qbf(qbf_path: &str, opts: &Options, solver_opts: &SolveOptions) -> Result<(), String> {
    let qbf = load_qbf(qbf_path)?;
    let mut budget = Budget::unlimited();
    if let Some(n) = opts.steps {
        budget = budget.steps(n);
    }
    if let Some(ms) = opts.timeout_ms {
        budget = budget.timeout(std::time::Duration::from_millis(ms));
    }
    let direct = qbf
        .is_true_budgeted(&budget.meter())
        .map_err(|e| e.to_string())?;
    println!(
        "qbf: {} vars, {} clauses: {}",
        qbf.matrix.num_vars,
        qbf.matrix.clauses.len(),
        if direct { "TRUE" } else { "FALSE" }
    );

    let (db, q) = membership::qbf_to_datalognr(&qbf);
    let via_datalog = !q.eval(&db).map_err(|e| e.to_string())?.is_empty();
    let (db, q) = membership::qbf_to_fo(&qbf);
    let via_fo = !q.eval(&db).map_err(|e| e.to_string())?.is_empty();
    // Wrap the FO encoding as an RPP instance: {()} is a top-1
    // selection iff the empty tuple is an answer, i.e. iff the QBF
    // holds.
    let (inst, sel) = membership::rpp_from_membership(db, q, tuple![]);
    let via_rpp = rpp::is_top_k(&inst, &sel, solver_opts).map_err(|e| e.to_string())?;

    for (name, got) in [
        ("datalognr", via_datalog),
        ("fo", via_fo),
        ("rpp top-1 membership", via_rpp),
    ] {
        if got != direct {
            return Err(format!(
                "{name} encoding disagrees with the QBF solver \
                 ({got} vs {direct}) — reduction bug"
            ));
        }
    }
    println!("encodings agree: datalognr, fo, rpp top-1 membership");
    Ok(())
}

/// Emit the collected trace report per `--trace`/`--trace-out`.
fn emit_trace(opts: &Options) -> Result<(), String> {
    let Some(format) = opts.trace else {
        return Ok(());
    };
    let report = pkgrec_trace::take();
    match format {
        TraceFormat::Human => print!("{}", report.render_human()),
        TraceFormat::Json => {
            if opts.trace_out.is_none() {
                println!("{}", report.to_json());
            }
        }
    }
    if let Some(path) = &opts.trace_out {
        use std::io::Write as _;
        let mut file = std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(path)
            .map_err(|e| format!("cannot open `{path}`: {e}"))?;
        writeln!(file, "{}", report.to_json())
            .map_err(|e| format!("cannot write `{path}`: {e}"))?;
    }
    Ok(())
}

/// Write the flight recording to `--flight-out` as JSONL. Called on
/// success *and* error paths so an interrupted or failed solve still
/// leaves its black box behind.
fn emit_flight(opts: &Options) -> Result<(), String> {
    let Some(path) = &opts.flight_out else {
        return Ok(());
    };
    let recording = pkgrec_trace::flight::take_recording();
    std::fs::write(path, recording.to_jsonl())
        .map_err(|e| format!("cannot write `{path}`: {e}"))
}

/// Live reporting for `--progress`: a monitor thread polls the shared
/// [`Progress`] estimate the enumeration engines feed and prints a
/// throttled stderr line with percent, unit counts and an ETA
/// extrapolated from the elapsed wall time.
struct ProgressMonitor {
    progress: Arc<Progress>,
    stop: Arc<AtomicBool>,
    started: Instant,
    handle: Option<std::thread::JoinHandle<()>>,
}

impl ProgressMonitor {
    const PRINT_EVERY: Duration = Duration::from_millis(200);

    fn spawn(progress: Arc<Progress>) -> Self {
        let stop = Arc::new(AtomicBool::new(false));
        let started = Instant::now();
        let handle = {
            let (progress, stop) = (Arc::clone(&progress), Arc::clone(&stop));
            std::thread::spawn(move || {
                let mut last_print = Instant::now();
                while !stop.load(Ordering::Relaxed) {
                    std::thread::sleep(Duration::from_millis(25));
                    if last_print.elapsed() < Self::PRINT_EVERY {
                        continue;
                    }
                    last_print = Instant::now();
                    Self::print_line(&progress, started);
                }
            })
        };
        ProgressMonitor { progress, stop, started, handle: Some(handle) }
    }

    /// One throttled stderr line; silent until a search announces its
    /// unit count (so `eval` runs print nothing).
    fn print_line(progress: &Progress, started: Instant) {
        let (done, total) = progress.units();
        if total == 0 {
            return;
        }
        let f = progress.fraction();
        let elapsed = started.elapsed().as_secs_f64();
        if f > 0.0 && f < 1.0 {
            let eta = elapsed * (1.0 - f) / f;
            eprintln!(
                "progress: {:5.1}%  {done}/{total} units  elapsed {elapsed:.1}s  eta {eta:.1}s",
                f * 100.0
            );
        } else {
            eprintln!("progress: {:5.1}%  {done}/{total} units  elapsed {elapsed:.1}s", f * 100.0);
        }
    }

    /// Stop the monitor and print the final state — short runs that
    /// never crossed a print interval still get one line.
    fn finish(mut self) {
        self.stop.store(true, Ordering::Relaxed);
        if let Some(handle) = self.handle.take() {
            let _ = handle.join();
        }
        Self::print_line(&self.progress, self.started);
    }
}

/// `pkgrec serve`: load the named databases, start the resident
/// service, print the bound address, and serve until the process is
/// killed. All solve-side limits are clamps — requests can tighten
/// them but never exceed them.
fn cmd_serve(args: &[String]) -> Result<(), String> {
    use pkgrec::serve::{self, ServerConfig, Service, ServiceConfig};

    let mut server_cfg = ServerConfig {
        listen: "127.0.0.1:7878".to_string(),
        ..ServerConfig::default()
    };
    let mut service_cfg = ServiceConfig::default();
    let mut dbs: Vec<(String, String)> = Vec::new();
    let mut access_log: Option<String> = None;
    let mut flight_dir: Option<String> = None;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        let mut value = |name: &str| {
            it.next()
                .cloned()
                .ok_or_else(|| format!("{name} needs a value"))
        };
        match arg.as_str() {
            "--listen" => server_cfg.listen = value("--listen")?,
            "--db" => {
                let spec = value("--db")?;
                let (name, path) = spec
                    .split_once('=')
                    .ok_or_else(|| format!("--db expects NAME=PATH, got `{spec}`"))?;
                dbs.push((name.to_string(), path.to_string()));
            }
            "--workers" => {
                server_cfg.workers = value("--workers")?
                    .parse::<usize>()
                    .ok()
                    .filter(|&n| n >= 1)
                    .ok_or("--workers must be a positive integer")?;
            }
            "--queue" => {
                server_cfg.queue_cap = value("--queue")?
                    .parse::<usize>()
                    .ok()
                    .filter(|&n| n >= 1)
                    .ok_or("--queue must be a positive integer")?;
            }
            "--max-deadline-ms" => {
                service_cfg.max_deadline_ms = value("--max-deadline-ms")?
                    .parse::<u64>()
                    .ok()
                    .filter(|&n| n >= 1)
                    .ok_or("--max-deadline-ms must be a positive integer")?;
            }
            "--max-jobs" => {
                service_cfg.max_jobs = value("--max-jobs")?
                    .parse::<usize>()
                    .ok()
                    .filter(|&n| n >= 1)
                    .ok_or("--max-jobs must be a positive integer")?;
            }
            "--access-log" => access_log = Some(value("--access-log")?),
            "--flight-dir" => flight_dir = Some(value("--flight-dir")?),
            "--slow-threshold-ms" => {
                service_cfg.slow_threshold_ms = value("--slow-threshold-ms")?
                    .parse::<u64>()
                    .map_err(|_| "--slow-threshold-ms must be an integer")?;
            }
            "--profile-slow-ms" => {
                service_cfg.profile_slow_ms = Some(
                    value("--profile-slow-ms")?
                        .parse::<u64>()
                        .map_err(|_| "--profile-slow-ms must be an integer")?,
                );
            }
            other => return Err(format!("unknown serve option `{other}`")),
        }
    }
    if dbs.is_empty() {
        return Err("serve needs at least one --db NAME=PATH".to_string());
    }
    let mut service = Service::new(service_cfg);
    for (name, path) in dbs {
        service.add_db(name, load_db(&path)?);
    }
    if let Some(path) = access_log {
        let log = pkgrec::serve::AccessLog::open(std::path::Path::new(&path))
            .map_err(|e| format!("cannot open access log `{path}`: {e}"))?;
        service.set_access_log(log);
    }
    if let Some(dir) = flight_dir {
        std::fs::create_dir_all(&dir)
            .map_err(|e| format!("cannot create flight dir `{dir}`: {e}"))?;
        service.set_flight_dir(&dir);
    }
    let names = service.db_names().join(", ");
    let handle = serve::start(server_cfg, service).map_err(|e| format!("cannot bind: {e}"))?;
    // The address line goes out first and flushed so wrappers (CI
    // smoke scripts, tests) can scrape the ephemeral port.
    println!("pkgrec serve: listening on {} (dbs: {names})", handle.addr());
    use std::io::Write as _;
    let _ = std::io::stdout().flush();
    loop {
        std::thread::park();
    }
}

/// `pkgrec explain`: compile the query against the database and print
/// the plan's static story — join orders, cardinalities, index probes,
/// builtin schedule — human-readable or as JSON with `--json`.
fn cmd_explain(db_path: &str, query_arg: &str, json: bool) -> Result<(), String> {
    let db = Arc::new(load_db(db_path)?);
    let query = load_query(query_arg)?;
    let plan = query.compile(&db).map_err(|e| e.to_string())?;
    let report = plan.explain();
    if json {
        println!("{}", report.to_json());
    } else {
        print!("{}", report.render_human());
    }
    Ok(())
}

/// Adaptive duration formatting for the profile report (mirrors the
/// trace crate's human rendering).
fn fmt_ns(ns: u64) -> String {
    if ns < 1_000 {
        format!("{ns}ns")
    } else if ns < 1_000_000 {
        format!("{:.1}µs", ns as f64 / 1_000.0)
    } else if ns < 1_000_000_000 {
        format!("{:.1}ms", ns as f64 / 1_000_000.0)
    } else {
        format!("{:.2}s", ns as f64 / 1_000_000_000.0)
    }
}

/// `pkgrec profile`: run one `topk` solve with tracing, the flight
/// recorder and the profile timeline all forced on, then print the
/// attribution report — where the wall time went by phase, worker,
/// and span path, plus the plan-probe and sketch/refine breakdowns.
/// `--chrome-out PATH` additionally writes the timeline as a Chrome
/// Trace Event Format file for Perfetto / `chrome://tracing`.
fn cmd_profile(db_path: &str, query_arg: &str, rest: &[String]) -> Result<(), String> {
    use pkgrec_trace::timeline;

    // `--chrome-out` is profile-specific; everything else is the
    // shared solve-option vocabulary.
    let mut chrome_out: Option<String> = None;
    let mut args: Vec<String> = Vec::new();
    let mut i = 0;
    while i < rest.len() {
        if rest[i] == "--chrome-out" {
            chrome_out = Some(
                rest.get(i + 1)
                    .ok_or("--chrome-out needs a value")?
                    .clone(),
            );
            i += 2;
        } else {
            args.push(rest[i].clone());
            i += 1;
        }
    }
    let opts = parse_options(&args)?;
    let db = load_db(db_path)?;
    let query = load_query(query_arg)?;
    let mut budget = Budget::unlimited();
    if let Some(n) = opts.steps {
        budget = budget.steps(n);
    }
    if let Some(ms) = opts.timeout_ms {
        budget = budget.timeout(Duration::from_millis(ms));
    }
    let solver_opts = SolveOptions::with_budget(budget).with_jobs(opts.jobs.unwrap_or(1));
    let solver_opts = approx_opts(&solver_opts, &opts);

    // Force every observability channel on: spans/counters (trace),
    // the event black box (flight), and the stamp timeline (profile).
    pkgrec_trace::reset();
    let _tracing = pkgrec_trace::scoped();
    pkgrec_trace::flight::reset();
    let _flight = pkgrec_trace::flight::scoped();
    let _profiling = timeline::scoped();
    let scope = timeline::begin_scope();

    let inst = build_instance(db, query, &opts);
    let started = Instant::now();
    let out = frp::top_k(&inst, &solver_opts).map_err(|e| e.to_string())?;
    let wall = started.elapsed();

    let tl = timeline::take_scope(scope.id());
    let report = pkgrec_trace::take();

    if out.method == Method::Sketch {
        println!("approximate result (sketch engine; not certified optimal):");
    }
    if let Some(cut) = out.interrupted {
        println!("partial result ({cut}):");
    }
    match &out.value {
        None => println!("no top-{} selection exists", opts.k),
        Some(sel) => {
            for (rank, pkg) in sel.iter().enumerate() {
                println!(
                    "#{} val={} cost={} {}",
                    rank + 1,
                    inst.val.eval(pkg),
                    inst.cost.eval(pkg),
                    pkg
                );
            }
        }
    }
    println!();

    if let Some(path) = &chrome_out {
        std::fs::write(path, tl.to_chrome_json())
            .map_err(|e| format!("cannot write `{path}`: {e}"))?;
        println!("chrome trace written to {path}");
    }

    print!("{}", tl.summarize().render_human());

    // Span paths as a share of the solve wall time. Span totals are
    // per-path (self+children wall), so shares can legitimately sum
    // past 100% — the table reads per row, not as a partition.
    let wall_ns = u64::try_from(wall.as_nanos()).unwrap_or(u64::MAX);
    if !report.spans.is_empty() {
        println!("spans (path, calls, total, % of wall, steps):");
        for (path, stat) in &report.spans {
            let pct = if wall_ns == 0 {
                0.0
            } else {
                stat.total_ns as f64 * 100.0 / wall_ns as f64
            };
            println!(
                "  {:<44} {:>5}  {:>9}  {:>5.1}%  steps={}",
                path,
                stat.count,
                fmt_ns(stat.total_ns),
                pct,
                stat.steps
            );
        }
    }
    let c = |name: &str| report.counters.get(name).copied().unwrap_or(0);
    println!(
        "plan: {} compiles, {} probes, {} index builds",
        c("query.plan_compiles"),
        c("query.plan_probes"),
        c("query.index_builds")
    );
    if out.method == Method::Sketch {
        println!(
            "sketch: {} partition builds, {} sub-solves, {} refines \
             ({} improved, {} no gain), {} partitions pruned",
            c("sketch.partition_builds"),
            c("sketch.sub_solves"),
            c("sketch.refines"),
            c("sketch.refines.improved"),
            c("sketch.refines.no_gain"),
            c("sketch.partitions_pruned")
        );
    }
    Ok(())
}

/// `pkgrec chaos-sites`: enumerate the valid `PKGREC_CHAOS` fault-site
/// names (every trace counter plus the extra serve-loop sites), so
/// directives are discoverable instead of guessed.
fn cmd_chaos_sites() {
    println!("{:<28} {:<10} description", "site", "layer");
    for info in pkgrec_trace::COUNTER_REGISTRY
        .iter()
        .chain(pkgrec_trace::EXTRA_FAULT_SITES)
    {
        println!("{:<28} {:<10} {}", info.name, info.layer, info.help);
    }
}

fn run(args: Vec<String>) -> Result<(), String> {
    let usage = "usage: pkgrec <eval|topk|bound|count|items> <db-file> <query> [options] \
                 | pkgrec explain <db-file> <query> [--json] \
                 | pkgrec profile <db-file> <query> [options] [--chrome-out PATH] \
                 | pkgrec chaos-sites \
                 | pkgrec qbf <qdimacs-file> [options] \
                 | pkgrec serve --db NAME=PATH [options] \
                 (see --help in the source header)";
    let mut it = args.iter();
    let cmd = it.next().ok_or(usage)?.as_str();
    if cmd == "--help" || cmd == "-h" {
        println!("{usage}");
        return Ok(());
    }
    if cmd == "serve" {
        let rest: Vec<String> = it.cloned().collect();
        return cmd_serve(&rest);
    }
    if cmd == "chaos-sites" {
        cmd_chaos_sites();
        return Ok(());
    }
    if cmd == "profile" {
        let db_path = it.next().ok_or(usage)?;
        let query_arg = it.next().ok_or(usage)?;
        let rest: Vec<String> = it.cloned().collect();
        return cmd_profile(db_path, query_arg, &rest);
    }
    if cmd == "explain" {
        let db_path = it.next().ok_or(usage)?;
        let query_arg = it.next().ok_or(usage)?;
        let rest: Vec<String> = it.cloned().collect();
        let json = match rest.as_slice() {
            [] => false,
            [flag] if flag == "--json" => true,
            other => return Err(format!("unknown explain option `{}`", other[0])),
        };
        return cmd_explain(db_path, query_arg, json);
    }
    if cmd == "qbf" {
        let qbf_path = it.next().ok_or(usage)?;
        let rest: Vec<String> = it.cloned().collect();
        let opts = parse_options(&rest)?;
        if opts.approx {
            return Err("--approx is only supported for `topk` and `bound`".to_string());
        }
        let mut budget = Budget::unlimited();
        if let Some(n) = opts.steps {
            budget = budget.steps(n);
        }
        if let Some(ms) = opts.timeout_ms {
            budget = budget.timeout(std::time::Duration::from_millis(ms));
        }
        // Default 1 (not env) so traced runs stay reproducible unless
        // the user opts in with --jobs 0.
        let mut solver_opts =
            SolveOptions::with_budget(budget).with_jobs(opts.jobs.unwrap_or(1));
        let monitor = if opts.progress {
            let progress = Arc::new(Progress::new());
            solver_opts = solver_opts.with_progress(Arc::clone(&progress));
            Some(ProgressMonitor::spawn(progress))
        } else {
            None
        };
        let _tracing = opts.trace.map(|_| {
            pkgrec_trace::reset();
            pkgrec_trace::scoped()
        });
        let _flight = opts.flight_out.as_ref().map(|_| {
            pkgrec_trace::flight::reset();
            pkgrec_trace::flight::scoped()
        });
        let result = cmd_qbf(qbf_path, &opts, &solver_opts);
        if let Some(monitor) = monitor {
            monitor.finish();
        }
        emit_flight(&opts)?;
        result?;
        return emit_trace(&opts);
    }
    let db_path = it.next().ok_or(usage)?;
    let query_arg = it.next().ok_or(usage)?;
    let rest: Vec<String> = it.cloned().collect();
    let opts = parse_options(&rest)?;

    let db = load_db(db_path)?;
    let query = load_query(query_arg)?;
    let mut budget = Budget::unlimited();
    if let Some(n) = opts.steps {
        budget = budget.steps(n);
    }
    if let Some(ms) = opts.timeout_ms {
        budget = budget.timeout(std::time::Duration::from_millis(ms));
    }
    let mut solver_opts = SolveOptions::with_budget(budget).with_jobs(opts.jobs.unwrap_or(1));
    let monitor = if opts.progress {
        let progress = Arc::new(Progress::new());
        solver_opts = solver_opts.with_progress(Arc::clone(&progress));
        Some(ProgressMonitor::spawn(progress))
    } else {
        None
    };

    // Collect solver metrics for this solve when asked to.
    let _tracing = opts.trace.map(|_| {
        pkgrec_trace::reset();
        pkgrec_trace::scoped()
    });
    let _flight = opts.flight_out.as_ref().map(|_| {
        pkgrec_trace::flight::reset();
        pkgrec_trace::flight::scoped()
    });

    let result = run_command(cmd, db, query, &opts, &solver_opts, usage);
    if let Some(monitor) = monitor {
        monitor.finish();
    }
    emit_flight(&opts)?;
    result?;
    emit_trace(&opts)
}

/// Dispatch the non-qbf commands. Split out of [`run`] so the flight
/// recording can be dumped on both the success and the error path.
/// The solver options for one command, with the SketchRefine engine
/// switched on when `--approx` was passed.
fn approx_opts(solver_opts: &SolveOptions, opts: &Options) -> SolveOptions {
    let mut solver_opts = solver_opts.clone();
    if opts.approx {
        solver_opts = solver_opts.with_approx(SketchParams::default());
    }
    solver_opts
}

fn run_command(
    cmd: &str,
    db: Database,
    query: Query,
    opts: &Options,
    solver_opts: &SolveOptions,
    usage: &str,
) -> Result<(), String> {
    if opts.approx && !matches!(cmd, "topk" | "bound") {
        return Err(format!(
            "--approx is only supported for `topk` and `bound`, not `{cmd}`"
        ));
    }
    match cmd {
        "eval" => {
            let answers = query.eval(&db).map_err(|e| e.to_string())?;
            println!("{} answers [{}]", answers.len(), query.language());
            for t in &answers {
                println!("{t}");
            }
        }
        "topk" => {
            let inst = build_instance(db, query, opts);
            let solver_opts = approx_opts(solver_opts, opts);
            let out = frp::top_k(&inst, &solver_opts).map_err(|e| e.to_string())?;
            if out.method == Method::Sketch {
                println!("approximate result (sketch engine; not certified optimal):");
            }
            if let Some(cut) = out.interrupted {
                println!("partial result ({cut}):");
            }
            match out.value {
                None => println!("no top-{} selection exists", opts.k),
                Some(sel) => {
                    for (rank, pkg) in sel.iter().enumerate() {
                        println!(
                            "#{} val={} cost={} {}",
                            rank + 1,
                            inst.val.eval(pkg),
                            inst.cost.eval(pkg),
                            pkg
                        );
                    }
                }
            }
        }
        "bound" => {
            let inst = build_instance(db, query, opts);
            let solver_opts = approx_opts(solver_opts, opts);
            let out = mbp::maximum_bound(&inst, &solver_opts).map_err(|e| e.to_string())?;
            let qualifier = match (out.method, out.exact, out.interrupted) {
                (Method::Exact, true, _) => "",
                (Method::Exact, false, _) => " (lower bound; budget ran out)",
                (Method::Sketch, _, None) => " (approximate; sketch engine)",
                (Method::Sketch, _, Some(_)) => {
                    " (approximate; sketch engine, budget ran out)"
                }
            };
            match out.value {
                None => println!("no top-{} selection exists", opts.k),
                Some(b) => println!("maximum bound: {b}{qualifier}"),
            }
        }
        "count" => {
            let bound = Ext::Finite(
                opts.min_val
                    .ok_or("`count` requires --min-val B".to_string())?,
            );
            let inst = build_instance(db, query, opts);
            let out =
                cpp::count_valid(&inst, bound, solver_opts).map_err(|e| e.to_string())?;
            let prefix = if out.exact { "" } else { "at least " };
            let suffix = if out.exact { "" } else { " (budget ran out)" };
            println!("{prefix}{} valid packages with val >= {bound}{suffix}", out.value);
        }
        "items" => {
            let inst = build_instance(db, query, opts)
                .with_cost(PackageFn::count())
                .with_budget(1.0)
                .with_size_bound(SizeBound::Constant(1));
            let out = frp::top_k(&inst, solver_opts).map_err(|e| e.to_string())?;
            if let Some(cut) = out.interrupted {
                println!("partial result ({cut}):");
            }
            match out.value {
                None => println!("fewer than {} items", opts.k),
                Some(sel) => {
                    for (rank, pkg) in sel.iter().enumerate() {
                        let t = pkg.iter().next().expect("singleton");
                        println!("#{} val={} {}", rank + 1, inst.val.eval(pkg), t);
                    }
                }
            }
        }
        other => return Err(format!("unknown command `{other}`; {usage}")),
    }
    Ok(())
}
