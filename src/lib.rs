//! # pkgrec — package recommendation problems
//!
//! A from-scratch Rust implementation of the model, problems,
//! algorithms and lower-bound constructions of
//!
//! > Ting Deng, Wenfei Fan, Floris Geerts.
//! > *On the Complexity of Package Recommendation Problems.*
//! > PODS 2012; SIAM J. Comput. 42(5), 2013.
//!
//! This crate is a facade re-exporting the workspace:
//!
//! * [`data`] — relational substrate (values, tuples, relations,
//!   databases);
//! * [`query`] — the paper's query languages SP ⊂ CQ ⊂ UCQ ⊂ ∃FO⁺ ⊂
//!   {DATALOGnr, FO} ⊂ DATALOG, with evaluators and classification;
//! * [`core`] — packages, cost/val functions, compatibility
//!   constraints, and exact solvers for RPP, FRP, MBP, CPP and item
//!   recommendations;
//! * [`relax`] — query relaxation recommendations (QRPP, Section 7);
//! * [`adjust`] — adjustment recommendations (ARPP, Section 8);
//! * [`logic`] — SAT/#SAT/MaxSAT/QBF solvers used to machine-check the
//!   reductions;
//! * [`reductions`] — every lower-bound proof as an executable
//!   instance generator;
//! * [`workloads`] — travel/course/team domain generators and
//!   benchmark sweeps.
//!
//! ## Quickstart
//!
//! ```
//! use pkgrec::core::{problems::frp, RecInstance, PackageFn, SolveOptions};
//! use pkgrec::data::{tuple, AttrType, Database, Relation, RelationSchema};
//! use pkgrec::query::{ConjunctiveQuery, Query};
//!
//! // A tiny item table and the identity selection query.
//! let schema = RelationSchema::new("item", [("id", AttrType::Int)]).unwrap();
//! let rel = Relation::from_tuples(schema, [tuple![1], tuple![2], tuple![3]]).unwrap();
//! let mut db = Database::new();
//! db.add_relation(rel).unwrap();
//!
//! // Top-1 package of at most two items, maximizing the id sum.
//! let inst = RecInstance::new(db, Query::Cq(ConjunctiveQuery::identity("item", 1)))
//!     .with_budget(2.0)
//!     .with_val(PackageFn::sum_col(0, true));
//! let out = frp::top_k(&inst, &SolveOptions::default()).unwrap();
//! assert!(out.exact); // no budget was set, so the answer is exact
//! let top = out.value.unwrap();
//! assert_eq!(top[0].len(), 2); // items {2, 3}
//! ```
//!
//! ## Resource budgets
//!
//! Every solver accepts a [`core::SolveOptions`] carrying a
//! [`core::Budget`] — a step bound, wall-clock deadline, and/or
//! cancellation flag. Decision solvers (RPP, MBP's `is_*`, QRPP, ARPP)
//! are *strict*: they either certify an answer or report the exhausted
//! resource as an error. Function/counting solvers (FRP, MBP, CPP) are
//! *anytime*: they return a [`core::Outcome`] whose `value` is the
//! best result found so far and whose `exact` flag says whether the
//! search completed.
//!
//! ```
//! use pkgrec::core::{problems::frp, RecInstance, PackageFn, SolveOptions};
//! # use pkgrec::data::{tuple, AttrType, Database, Relation, RelationSchema};
//! # use pkgrec::query::{ConjunctiveQuery, Query};
//! # let schema = RelationSchema::new("item", [("id", AttrType::Int)]).unwrap();
//! # let rel = Relation::from_tuples(schema, [tuple![1], tuple![2], tuple![3]]).unwrap();
//! # let mut db = Database::new();
//! # db.add_relation(rel).unwrap();
//! # let inst = RecInstance::new(db, Query::Cq(ConjunctiveQuery::identity("item", 1)))
//! #     .with_budget(2.0)
//! #     .with_val(PackageFn::sum_col(0, true));
//! // Give the search only 3 enumeration steps: it returns its best
//! // package so far instead of hanging or erroring.
//! let partial = frp::top_k(&inst, &SolveOptions::limited(3)).unwrap();
//! assert!(!partial.exact);
//! assert!(partial.value.is_some());
//! ```

pub use pkgrec_adjust as adjust;
pub use pkgrec_core as core;
pub use pkgrec_data as data;
pub use pkgrec_logic as logic;
pub use pkgrec_query as query;
pub use pkgrec_reductions as reductions;
pub use pkgrec_relax as relax;
pub use pkgrec_serve as serve;
pub use pkgrec_trace as trace;
pub use pkgrec_workloads as workloads;
